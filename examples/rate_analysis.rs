//! Rate analysis on top of the estimation results (§6): take the
//! vocoder's per-process estimated execution times, treat each stage as a
//! periodic task activated once per 20 ms speech frame, and check
//! schedulability on one CPU with the Liu–Layland test and exact
//! response-time analysis.
//!
//! Run with `cargo run --release --example rate_analysis`.

use scperf::prelude::workloads::{calibration, vocoder};
use scperf::prelude::*;

fn main() -> Result<(), SimError> {
    let nframes = 8;
    // Calibrate the cost table against the reference ISS (the automated
    // version of the paper's "weights obtained analyzing assembler code").
    println!("calibrating cost table from the probe set...");
    let cal = calibration::calibrate();
    println!("  R^2 = {:.4}\n", cal.r_squared);
    // Estimate the five stages' execution times on the target CPU.
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), cal.table, 150.0);
    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::EstimateOnly)
        .build();
    {
        let (sim, model) = session.parts_mut();
        let _ = vocoder::pipeline::build(
            sim,
            model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            nframes,
        );
    }
    session.run()?;
    let report = session.report();

    // One GSM frame = 160 samples at 8 kHz = 20 ms.
    let frame_period = Time::ms(20);
    let tasks: Vec<rate::Task> = vocoder::pipeline::STAGE_NAMES
        .iter()
        .map(|name| {
            let p = report.process(name).expect("stage reported");
            // Per activation: total over the run divided by frames, plus
            // the RTOS share.
            let per_frame = (p.total_time + p.rtos_time) / nframes as u64;
            rate::Task {
                name: p.name.clone(),
                wcet: per_frame,
                period: frame_period,
            }
        })
        .collect();

    println!("vocoder stages as periodic tasks (period = one 20 ms frame):");
    for t in &tasks {
        println!(
            "  {:<12} C = {:>12}  U = {:.4}",
            t.name,
            t.wcet.to_string(),
            t.utilization()
        );
    }
    let u = rate::utilization(&tasks);
    println!(
        "\ntotal utilization U = {:.4}  (Liu–Layland bound for n = {}: {:.4})",
        u,
        tasks.len(),
        rate::rm_utilization_bound(tasks.len())
    );
    match rate::rm_utilization_test(&tasks) {
        Some(true) => println!("utilization test: schedulable"),
        Some(false) => println!("utilization test: NOT schedulable (U > 1)"),
        None => println!("utilization test: inconclusive — running exact analysis"),
    }

    println!("\nexact worst-case response times (rate-monotonic):");
    for (t, r) in tasks.iter().zip(rate::response_times(&tasks)) {
        match r {
            Some(r) => println!(
                "  {:<12} R = {:>12}  (deadline {})",
                t.name,
                r.to_string(),
                t.period
            ),
            None => println!("  {:<12} MISSES its {} deadline", t.name, t.period),
        }
    }
    println!(
        "\nverdict: {}",
        if rate::rm_schedulable(&tasks) {
            "the all-SW mapping meets the 20 ms frame deadline"
        } else {
            "the all-SW mapping cannot sustain real time on this CPU — \
             offload a stage (see the hw_sw_tradeoff example)"
        }
    );
    Ok(())
}
