//! Observability tour: tracing, metrics, profiling and sink export on a
//! small strict-timed model.
//!
//! Demonstrates the full `scperf::obs` surface:
//!
//! 1. enable compact in-memory tracing (interned symbols, no `String`
//!    per record) through the `SimConfig` builder and read the trace
//!    back as raw events,
//! 2. snapshot kernel + estimator metrics at end of simulation,
//! 3. profile host-time scheduler phases with `profile::span`,
//! 4. export a Chrome `trace_event` JSON document loadable in Perfetto
//!    (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Run with `cargo run --release --example observability`. Writes
//! `observability_trace.json` into the working directory.

use scperf::prelude::obs::chrome::ChromeTrace;
use scperf::prelude::obs::profile;
use scperf::prelude::*;

fn main() -> Result<(), SimError> {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 150.0);

    // 1. Tracing: a bounded ring keeps the most recent window, so a
    //    long simulation cannot exhaust memory. Use
    //    `TraceMode::Unbounded` for a complete buffer. The config also
    //    turns on per-segment samples, which feed the Chrome spans.
    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::StrictTimed)
        .tracing(TraceMode::Ring(10_000))
        .record_instantaneous()
        .build();

    // 3. Profiling: host-time spans around the scheduler phases (and
    //    any user code wrapped in `profile::span("...")`).
    profile::reset();
    profile::set_enabled(true);

    let ch = session.fifo::<i64>("dots", 4);

    let tx = ch.clone();
    session.spawn("producer", cpu, move |ctx| {
        for v in 0..40i64 {
            let mut acc = g_i64(0);
            for i in 0..32i64 {
                acc.assign(acc + G::raw(v * 32 + i) * G::raw(i % 7));
            }
            tx.write(ctx, acc.get());
        }
    });
    let rx = ch;
    session.spawn("consumer", cpu, move |ctx| {
        let mut total = g_i64(0);
        for _ in 0..40 {
            total.assign(total + g_i64(rx.read(ctx)));
        }
        ctx.emit_trace("total", total.get().to_string());
    });

    let summary = session.run()?;
    profile::set_enabled(false);
    println!(
        "simulated end: {} ({} deltas)\n",
        summary.end_time, summary.deltas
    );

    // 2. Metrics: kernel internals and estimator internals merge into
    //    one ordered snapshot (also JSON-renderable via `to_json()`).
    let metrics = session.metrics();
    println!("metrics snapshot:\n{metrics}");

    // 1b. The trace as compact events.
    let table = session.take_events();
    println!(
        "trace: {} compact events, {} interned strings, {} dropped by the ring",
        table.len(),
        table.strings.len(),
        table.dropped
    );
    for ev in table.events.iter().take(5) {
        println!(
            "  t={:<12} δ{:<3} {:<10} {:<12} {}",
            Time::ps(ev.time_ps).to_string(),
            ev.delta,
            table.process_name(ev),
            table.resolve(ev.label),
            ev.payload
        );
    }

    // 4. Chrome trace export: kernel events as per-process instant
    //    tracks plus the estimator's per-segment spans.
    let mut chrome = ChromeTrace::from_table(&table);
    chrome.merge(session.model().chrome_trace());
    chrome
        .write_to("observability_trace.json")
        .expect("write trace json");
    println!(
        "\nwrote observability_trace.json ({} events) — load it in Perfetto",
        chrome.len()
    );

    // 3b. Host-time profile report.
    println!("\nhost-time spans:");
    for (name, stats) in profile::report() {
        println!(
            "  {name:<16} total {:?} over {} calls",
            stats.total, stats.count
        );
    }
    Ok(())
}
