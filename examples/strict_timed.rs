//! Untimed vs strict-timed simulation (the paper's Figure 5) and the §6
//! non-determinism check.
//!
//! The same three-process model is simulated twice: untimed (pure
//! delta-cycle order) and strict-timed (back-annotated segment times, with
//! P2 and P3 serialized on a shared CPU while P1 runs on HW). Then
//! `determinism::check` verifies the model's outcome does not depend on
//! the scheduling change.
//!
//! Run with `cargo run --release --example strict_timed`.

use scperf::prelude::*;

const CLOCK: Time = Time::ns(10);

/// A dependent add chain of `n` operations: `n` cycles of critical path on
/// HW, `n` add-costs on a CPU.
fn burn(n: u64) {
    let mut x = G::raw(0_i64);
    for _ in 0..n {
        x = x + G::raw(1);
    }
    let _ = x;
}

fn platform() -> (Platform, ResourceId, ResourceId) {
    let mut p = Platform::new();
    let hw = p.parallel("res1 (HW)", CLOCK, CostTable::asic_hw(), 1.0);
    let cpu = p.sequential("res0 (SW)", CLOCK, CostTable::risc_sw(), 100.0);
    (p, hw, cpu)
}

fn build(sim: &mut Simulator, model: &PerfModel, hw: ResourceId, cpu: ResourceId) {
    let s1 = model.signal(sim, "s1", 0_i32);
    let s2 = model.signal(sim, "s2", 0_i32);
    let s3 = model.signal(sim, "s3", 0_i32);
    model.spawn(sim, "P1", hw, move |ctx| {
        for i in 1..=3 {
            burn(400); // sg4
            s1.write(ctx, i);
            timed_wait(ctx, Time::ZERO);
        }
    });
    model.spawn(sim, "P2", cpu, move |ctx| {
        for i in 1..=3 {
            burn(300); // sg1
            s2.write(ctx, i);
            timed_wait(ctx, Time::ZERO);
        }
    });
    model.spawn(sim, "P3", cpu, move |ctx| {
        for i in 1..=3 {
            burn(500); // sg2
            s3.write(ctx, i);
            timed_wait(ctx, Time::ZERO);
        }
    });
}

fn run(mode: Mode) -> Vec<TraceRecord> {
    let (p, hw, cpu) = platform();
    let mut session = SimConfig::new()
        .platform(p)
        .mode(mode)
        .tracing(TraceMode::Unbounded)
        .build();
    {
        let (sim, model) = session.parts_mut();
        build(sim, model, hw, cpu);
    }
    session.run().expect("model runs");
    session.sim().take_trace()
}

fn main() {
    println!("--- untimed (delta-cycle) simulation ---");
    for r in run(Mode::EstimateOnly) {
        println!("{r}");
    }
    println!();
    println!("--- strict-timed simulation (P1 on HW; P2, P3 share the CPU) ---");
    for r in run(Mode::StrictTimed) {
        println!("{r}");
    }

    println!();
    let (p, hw, cpu) = platform();
    let outcome = determinism::check(&p, move |sim, model| build(sim, model, hw, cpu))
        .expect("both runs complete");
    if outcome.deterministic {
        println!("determinism check: PASS — the mapping changed only timing, not behaviour");
    } else {
        println!(
            "determinism check: FAIL — processes with diverging behaviour: {:?}",
            outcome.differing
        );
    }
}
