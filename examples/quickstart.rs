//! Quickstart: estimate a two-process producer/consumer model.
//!
//! Shows the complete workflow of the paper's methodology:
//!
//! 1. declare a platform (one CPU),
//! 2. build the system-level model through a `PerfModel` (processes +
//!    channels),
//! 3. write the computation against the annotated `G` types,
//! 4. run the strict-timed simulation and read the report.
//!
//! Run with `cargo run --release --example quickstart`.

use scperf::core::{g_for, g_i64, CostTable, Mode, PerfModel, Platform, ProcessGraph, G};
use scperf::kernel::{Simulator, Time};

fn main() -> Result<(), scperf::kernel::SimError> {
    // 1. Platform: a 100 MHz processor with the default RISC cost table
    //    and 150 cycles of RTOS overhead per channel access.
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 150.0);

    // 2. The model: a producer computing dot products, a consumer
    //    averaging them, connected by a FIFO.
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let ch = model.fifo::<i64>(&mut sim, "dots", 4);

    const VECTORS: usize = 50;
    const DIM: usize = 64;

    let tx = ch.clone();
    model.spawn(&mut sim, "producer", cpu, move |ctx| {
        for v in 0..VECTORS {
            // 3. Annotated computation: every operator charges its cost.
            let mut acc = g_i64(0);
            g_for!(i in 0..DIM => {
                let a = G::raw((v * DIM + i) as i64 % 93);
                let b = G::raw((i * 7) as i64 % 31);
                acc.assign(acc + a * b);
            });
            tx.write(ctx, acc.get()); // segment boundary (channel node)
        }
    });

    let rx = ch.clone();
    model.spawn(&mut sim, "consumer", cpu, move |ctx| {
        let mut total = g_i64(0);
        for _ in 0..VECTORS {
            let v = g_i64(rx.read(ctx));
            total.assign(total + v);
        }
        let avg = total / G::raw(VECTORS as i64);
        ctx.emit_trace("average", avg.get().to_string());
    });

    // 4. Run and report.
    let summary = sim.run()?;
    println!("simulated end-to-end time: {}", summary.end_time);
    println!();

    let report = model.report();
    print!("{report}");
    println!();

    let producer = report.process("producer").expect("producer reported");
    println!(
        "producer: {:.0} estimated cycles over {} segments (mean {:.1} cycles/segment)",
        producer.total_cycles,
        producer.segment_executions,
        producer.mean_segment_cycles()
    );
    println!();
    println!("process graph of 'producer' (Graphviz DOT):");
    println!("{}", ProcessGraph::from_report(producer).to_dot());
    Ok(())
}
