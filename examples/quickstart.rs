//! Quickstart: estimate a two-process producer/consumer model.
//!
//! Shows the complete workflow of the paper's methodology:
//!
//! 1. declare a platform (one CPU),
//! 2. configure and build a simulation `Session` (processes + channels),
//! 3. write the computation against the annotated `G` types,
//! 4. run the strict-timed simulation and read the report.
//!
//! Run with `cargo run --release --example quickstart`.

use scperf::prelude::*;

fn main() -> Result<(), SimError> {
    // 1. Platform: a 100 MHz processor with the default RISC cost table
    //    and 150 cycles of RTOS overhead per channel access.
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 150.0);

    // 2. The model: a producer computing dot products, a consumer
    //    averaging them, connected by a FIFO — all owned by one session.
    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::StrictTimed)
        .build();
    let ch = session.fifo::<i64>("dots", 4);

    const VECTORS: usize = 50;
    const DIM: usize = 64;

    let tx = ch.clone();
    session.spawn("producer", cpu, move |ctx| {
        for v in 0..VECTORS {
            // 3. Annotated computation: every operator charges its cost.
            let mut acc = g_i64(0);
            g_for!(i in 0..DIM => {
                let a = G::raw((v * DIM + i) as i64 % 93);
                let b = G::raw((i * 7) as i64 % 31);
                acc.assign(acc + a * b);
            });
            tx.write(ctx, acc.get()); // segment boundary (channel node)
        }
    });

    let rx = ch.clone();
    session.spawn("consumer", cpu, move |ctx| {
        let mut total = g_i64(0);
        for _ in 0..VECTORS {
            let v = g_i64(rx.read(ctx));
            total.assign(total + v);
        }
        let avg = total / G::raw(VECTORS as i64);
        ctx.emit_trace("average", avg.get().to_string());
    });

    // 4. Run and report.
    let summary = session.run()?;
    println!("simulated end-to-end time: {}", summary.end_time);
    println!();

    let report = session.report();
    print!("{report}");
    println!();

    let producer = report.process("producer").expect("producer reported");
    println!(
        "producer: {:.0} estimated cycles over {} segments (mean {:.1} cycles/segment)",
        producer.total_cycles,
        producer.segment_executions,
        producer.mean_segment_cycles()
    );
    println!();
    println!("process graph of 'producer' (Graphviz DOT):");
    println!("{}", ProcessGraph::from_report(producer).to_dot());
    Ok(())
}
