//! HW/SW design-space exploration for the FIR kernel: compare the same
//! computation mapped to a CPU versus a hardware block, sweep the HW
//! time/area weight `k` (§3), and cross-check the estimate against the
//! behavioral-synthesis scheduler's solution space (Figure 4).
//!
//! Run with `cargo run --release --example hw_sw_tradeoff`.

use scperf::prelude::workloads::fir;
use scperf::prelude::*;

const CLOCK: Time = Time::ns(10);

/// Runs the one-sample FIR kernel on the given platform mapping and
/// returns the simulated segment time.
fn simulate(platform: Platform, hw: ResourceId) -> Time {
    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::StrictTimed)
        .build();
    session.spawn("fir", hw, |_ctx| {
        let _ = fir::annotated_one_sample(7);
    });
    session.run().expect("simulation runs").end_time
}

fn main() {
    // --- Software mapping.
    let mut sw_platform = Platform::new();
    let cpu = sw_platform.sequential("cpu0", CLOCK, CostTable::risc_sw(), 0.0);
    let sw_time = simulate(sw_platform, cpu);
    println!("FIR sample on SW (100 MHz CPU): {sw_time}");

    // --- Hardware mapping, k sweep.
    println!("\nFIR sample on HW, k sweep (T = T_min + (T_max - T_min) * k):");
    for i in 0..=10 {
        let k = i as f64 / 10.0;
        let mut platform = Platform::new();
        let hw = platform.parallel("fir_asic", CLOCK, CostTable::asic_hw(), k);
        let t = simulate(platform, hw);
        println!("  k = {k:.1}  ->  {t}");
    }

    // --- The scheduler's view of the same segment (Figure 4).
    let mut platform = Platform::new();
    let hw = platform.parallel("fir_asic", CLOCK, CostTable::asic_hw(), 0.0);
    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::EstimateOnly)
        .record_dfgs()
        .build();
    session.spawn("fir", hw, |_ctx| {
        let _ = fir::annotated_one_sample(7);
    });
    session.run().expect("recording run");
    let report = session.report();
    let seg = &report.process("fir").expect("fir reported").segments[0];
    let (t_min, t_max) = (seg.stats.last_t_min, seg.stats.last_t_max);
    let dfg = session
        .model()
        .dfgs("fir")
        .into_iter()
        .next()
        .map(|(_, d)| d)
        .expect("dfg recorded");

    println!(
        "\nestimator extremes: T_min = {:.0} cycles, T_max = {:.0} cycles \
         (k = 0.5 -> {:.0} cycles)",
        t_min,
        t_max,
        weighted_hw_cycles(t_min, t_max, 0.5)
    );
    println!(
        "recorded DFG: {} operations, critical path {} cycles",
        dfg.len(),
        dfg.critical_path()
    );

    println!("\nbehavioral-synthesis solution space (ALUs, time, area):");
    for p in hls::explore::tradeoff_curve(&dfg) {
        let label = if p.alus == 0 {
            "seq".to_owned()
        } else {
            p.alus.to_string()
        };
        println!(
            "  {label:>4} ALU(s): {:>8} cycles, area {:>6.1}",
            p.cycles, p.area
        );
    }

    // A peek at what the 2-ALU schedule actually does with the first
    // operations of the kernel.
    let alloc = hls::Allocation::unlimited().with(hls::FuKind::Alu, 2);
    let schedule = hls::schedule_list(&dfg, &alloc);
    println!("\n2-ALU schedule, first operations (Gantt):");
    print!("{}", hls::gantt::render(&dfg, &schedule, 14, 48));
}
