//! The GSM-like vocoder case study (the paper's §5 concurrent example):
//! five analyzed processes on one CPU, with capture points on the frame
//! boundary for rate analysis.
//!
//! Run with `cargo run --release --example vocoder [nframes]`.

use scperf::prelude::workloads::vocoder;
use scperf::prelude::*;

fn main() -> Result<(), SimError> {
    let nframes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);

    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 150.0);

    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::StrictTimed)
        .build();
    let handles = {
        let (sim, model) = session.parts_mut();
        vocoder::pipeline::build(
            sim,
            model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            nframes,
        )
    };

    // A capture point on every decoded frame: its event list gives the
    // output frame rate (the paper's §4 "response times, throughputs,
    // input and output rates").
    let frame_tick = session.capture_point("frame_out");
    // Hook it through a monitor process watching the output channel is not
    // needed — the sink is in build(); instead we capture from a light
    // observer on simulated time.
    let cp = frame_tick.clone();
    session.spawn_untimed("rate_probe", move |ctx| {
        // Sample simulated time once per millisecond of simulated time.
        for _ in 0..200 {
            ctx.wait(Time::ms(1));
            cp.capture_value(ctx, ctx.now().as_us_f64());
        }
    });

    let summary = session.run()?;
    let reference = vocoder::run_reference(nframes);
    let out = handles.output.lock().expect("sink finished");
    assert_eq!(
        out, reference.checksums[4],
        "output must match the reference"
    );

    println!(
        "vocoder: {nframes} frames decoded correctly, simulated time {}",
        summary.end_time
    );
    println!();
    let report = session.report();
    print!("{report}");

    println!();
    println!("per-process estimated times:");
    for name in vocoder::pipeline::STAGE_NAMES {
        let p = report.process(name).expect("stage reported");
        println!(
            "  {:<12} {:>12.0} cycles  {:>12}  (+ RTOS {})",
            p.name,
            p.total_cycles,
            p.total_time.to_string(),
            p.rtos_time
        );
    }

    let captures = session.captures();
    let ticks = &captures[0];
    println!();
    println!(
        "capture point '{}': {} events, mean interval {:?}",
        ticks.name,
        ticks.events.len(),
        ticks.mean_interval()
    );
    println!("Matlab export of the first events:");
    let head = CaptureList {
        name: ticks.name.clone(),
        events: ticks.events.iter().take(8).copied().collect(),
    };
    print!("{}", head.to_matlab());
    Ok(())
}
