//! Public-API snapshot: the `scperf::prelude` export list is the
//! workspace's API contract. This test parses the `pub use` statements
//! of `src/prelude.rs` and asserts the exported item names against the
//! checked-in `tests/prelude_api.snapshot`, so an accidental surface
//! change (a dropped re-export, a renamed type) fails CI instead of
//! slipping into a release.
//!
//! Entirely offline and source-based: no cargo-semver-checks, no
//! network, no rustdoc JSON — just the two files compiled into the
//! test binary with `include_str!`.

const PRELUDE_SRC: &str = include_str!("../src/prelude.rs");
const SNAPSHOT: &str = include_str!("prelude_api.snapshot");

/// Extracts the leaf name a `use` item binds: the alias after `as`, or
/// the last path segment.
fn leaf(item: &str) -> Option<String> {
    let item = item.trim();
    if item.is_empty() {
        return None;
    }
    let name = match item.split(" as ").nth(1) {
        Some(alias) => alias.trim(),
        None => item.rsplit("::").next().unwrap_or(item).trim(),
    };
    Some(name.to_string())
}

/// Parses every `pub use …;` statement of the prelude source and
/// returns the sorted list of names it exports.
fn exported_names(src: &str) -> Vec<String> {
    // Strip comments (doc and inline) so only code is scanned, then
    // flatten so multi-line `pub use {…};` statements parse.
    let code: String = src
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join(" ");
    let mut names = Vec::new();
    let mut rest = code.as_str();
    while let Some(start) = rest.find("pub use ") {
        let after = &rest[start + "pub use ".len()..];
        let end = after
            .find(';')
            .expect("every `pub use` statement ends with `;`");
        let stmt = &after[..end];
        rest = &after[end + 1..];
        match stmt.find('{') {
            Some(brace) => {
                let inner = stmt[brace + 1..].trim_end().trim_end_matches('}');
                names.extend(inner.split(',').filter_map(leaf));
            }
            None => names.extend(leaf(stmt)),
        }
    }
    names.sort();
    names
}

fn snapshot_names(snapshot: &str) -> Vec<String> {
    snapshot
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[test]
fn prelude_exports_match_the_snapshot() {
    let actual = exported_names(PRELUDE_SRC);
    assert!(
        !actual.is_empty(),
        "parsed no exports from src/prelude.rs — parser broken?"
    );
    let expected = snapshot_names(SNAPSHOT);
    let added: Vec<&String> = actual.iter().filter(|n| !expected.contains(n)).collect();
    let removed: Vec<&String> = expected.iter().filter(|n| !actual.contains(n)).collect();
    assert!(
        added.is_empty() && removed.is_empty(),
        "scperf::prelude drifted from tests/prelude_api.snapshot\n\
         added (not in snapshot):   {added:?}\n\
         removed (still in snapshot): {removed:?}\n\
         If the change is intentional, update the snapshot to:\n{}",
        actual.join("\n")
    );
    // Exact order too: the snapshot is kept sorted so diffs are stable.
    assert_eq!(actual, expected, "snapshot entries must be sorted");
}

#[test]
fn prelude_has_no_duplicate_exports() {
    let names = exported_names(PRELUDE_SRC);
    let mut deduped = names.clone();
    deduped.dedup();
    assert_eq!(names, deduped, "duplicate names exported from the prelude");
}

#[test]
fn the_blessed_core_surface_is_present() {
    // The contract of the 0.4.0 redesign: these names must stay
    // importable from the prelude regardless of other churn.
    let names = exported_names(PRELUDE_SRC);
    for required in [
        "SimConfig",
        "Session",
        "Time",
        "PerfModel",
        "Recorder",
        "Replay",
        "Report",
        "ProcessReport",
        "ResourceReport",
        "SegmentReport",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "blessed name {required:?} missing from scperf::prelude"
        );
    }
}
