//! Cross-crate integration tests exercising the full stack through the
//! `scperf` facade: kernel + estimation library + workloads + ISS + HLS.

use scperf::core::{
    determinism, g_i64, timed_wait, CostTable, Mode, PerfModel, Platform, ResourceKind, G,
};
use scperf::kernel::{Simulator, Time};
use scperf::workloads::{table1_cases, vocoder};

const CLOCK: Time = Time::ns(10);

#[test]
fn every_table1_benchmark_agrees_across_all_three_forms() {
    for case in table1_cases() {
        let plain = (case.plain)();
        let annotated = (case.annotated)();
        let (iss, stats) = case.run_iss();
        assert_eq!(plain, annotated, "{}: annotated diverges", case.name);
        assert_eq!(plain, iss, "{}: ISS diverges", case.name);
        assert!(stats.cycles > stats.instructions, "{}", case.name);
    }
}

#[test]
fn estimation_error_stays_single_digit_with_default_table() {
    // Even the *uncalibrated* default table must stay within the right
    // order of magnitude (the calibrated run in scperf-bench tightens this
    // to single-digit percent).
    for case in table1_cases() {
        let mut sim = Simulator::new();
        let mut platform = Platform::new();
        let cpu = platform.sequential("cpu", CLOCK, CostTable::risc_sw(), 0.0);
        let model = PerfModel::new(platform, Mode::EstimateOnly);
        let body = case.annotated;
        model.spawn(&mut sim, "b", cpu, move |_ctx| {
            let _ = body();
        });
        sim.run().unwrap();
        let est = model.report().process("b").unwrap().total_cycles;
        let (_, stats) = case.run_iss();
        let ratio = est / stats.cycles as f64;
        assert!(
            (0.2..5.0).contains(&ratio),
            "{}: default-table ratio {ratio:.2} is implausible",
            case.name
        );
    }
}

#[test]
fn strict_timed_vocoder_runs_and_serializes_on_one_cpu() {
    let nframes = 4;
    let reference = vocoder::run_reference(nframes);
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", CLOCK, CostTable::risc_sw(), 150.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let handles = vocoder::pipeline::build(
        &mut sim,
        &model,
        vocoder::pipeline::VocoderMapping::all_on(cpu),
        nframes,
    );
    let summary = sim.run().unwrap();
    assert_eq!(handles.output.lock().unwrap(), reference.checksums[4]);
    // One shared CPU: end-to-end time ≥ sum of all computation (full
    // serialization), and the CPU is never over-committed.
    let report = model.report();
    let total: Time = report
        .processes
        .iter()
        .map(|p| p.total_time + p.rtos_time)
        .sum();
    assert!(summary.end_time >= total);
    assert!(report.resources[0].busy_time <= summary.end_time);
}

#[test]
fn hw_mapping_shortens_the_pipeline() {
    let nframes = 3;
    let run = |mapping: vocoder::pipeline::VocoderMapping, platform: Platform| -> Time {
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let _ = vocoder::pipeline::build(&mut sim, &model, mapping, nframes);
        sim.run().unwrap().end_time
    };
    let mut p1 = Platform::new();
    let cpu1 = p1.sequential("cpu0", CLOCK, CostTable::risc_sw(), 150.0);
    let all_sw = run(vocoder::pipeline::VocoderMapping::all_on(cpu1), p1);

    let mut p2 = Platform::new();
    let cpu2 = p2.sequential("cpu0", CLOCK, CostTable::risc_sw(), 150.0);
    let hw = p2.parallel("acb_asic", CLOCK, CostTable::asic_hw(), 0.0);
    let mut mapping = vocoder::pipeline::VocoderMapping::all_on(cpu2);
    mapping.acb = hw; // offload the dominant stage
    let accelerated = run(mapping, p2);
    assert!(
        accelerated < all_sw,
        "offloading ACB must shorten the simulation: {accelerated} vs {all_sw}"
    );
}

#[test]
fn vocoder_model_is_deterministic_under_mapping_changes() {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", CLOCK, CostTable::risc_sw(), 150.0);
    let outcome = determinism::check(&platform, move |sim, model| {
        let _ = vocoder::pipeline::build(
            sim,
            model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            3,
        );
    })
    .unwrap();
    assert!(
        outcome.deterministic,
        "vocoder must be scheduling-independent; differs: {:?}",
        outcome.differing
    );
}

#[test]
fn recorded_dfg_matches_hls_references() {
    // The estimator's T_min/T_max must equal the scheduler's view of the
    // same graph under the same integer latencies.
    let mut platform = Platform::new();
    let hw = platform.parallel("hw", CLOCK, CostTable::asic_hw(), 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::EstimateOnly);
    model.record_dfgs();
    model.spawn(&mut sim, "fir", hw, |_ctx| {
        let _ = scperf::workloads::fir::annotated_one_sample(3);
    });
    sim.run().unwrap();
    let report = model.report();
    let seg = &report.process("fir").unwrap().segments[0];
    let dfg = model.dfgs("fir").into_iter().next().unwrap().1;
    assert_eq!(dfg.critical_path() as f64, seg.stats.last_t_min);
    assert_eq!(dfg.sequential_cycles() as f64, seg.stats.last_t_max);
    assert_eq!(
        scperf::hls::schedule_asap(&dfg).makespan,
        dfg.critical_path()
    );
    assert_eq!(
        scperf::hls::schedule_sequential(&dfg).makespan,
        dfg.sequential_cycles()
    );
}

#[test]
fn mixed_platform_report_accounts_every_resource_kind() {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu", CLOCK, CostTable::risc_sw(), 50.0);
    let hw = platform.parallel("asic", CLOCK, CostTable::asic_hw(), 0.5);
    let env = platform.environment("testbench");
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let burn = || {
        let mut x = g_i64(0);
        for i in 0..500 {
            x = x + G::raw(i);
        }
        let _ = x;
    };
    model.spawn(&mut sim, "sw", cpu, move |ctx| {
        burn();
        timed_wait(ctx, Time::ZERO);
    });
    model.spawn(&mut sim, "hwp", hw, move |ctx| {
        burn();
        timed_wait(ctx, Time::ZERO);
    });
    model.spawn(&mut sim, "tb", env, move |_ctx| {
        burn();
    });
    sim.run().unwrap();
    let report = model.report();
    assert_eq!(report.processes.len(), 3);
    let sw = report.process("sw").unwrap();
    let hwp = report.process("hwp").unwrap();
    let tb = report.process("tb").unwrap();
    assert_eq!(sw.kind, ResourceKind::Sequential);
    assert!(sw.total_cycles > 0.0 && sw.rtos_time > Time::ZERO);
    assert_eq!(hwp.kind, ResourceKind::Parallel);
    assert!(hwp.total_cycles > 0.0);
    assert_eq!(hwp.rtos_time, Time::ZERO, "HW charges no RTOS");
    assert_eq!(tb.total_cycles, 0.0, "environment is not analyzed");
    // HW with k=0.5 lies between the extremes for a dependent chain.
    let seg = &hwp.segments[0];
    assert!(seg.stats.last_t_min <= seg.stats.total_cycles);
    assert!(seg.stats.total_cycles <= seg.stats.last_t_max.max(seg.stats.last_t_min));
}

#[test]
fn minic_compiled_probes_run_on_both_iss_models() {
    for p in scperf::workloads::probes::probes().into_iter().take(4) {
        let compiled = scperf::iss::minic::compile(&p.minic).unwrap();
        let mut m1 = scperf::iss::Machine::new(1 << 22);
        m1.load(&compiled.program);
        let s1 = m1.run(1_000_000_000).unwrap();
        let mut m2 = scperf::iss::Machine::new(1 << 22);
        m2.load(&compiled.program);
        let s2 = m2.run_pipelined(8_000_000_000).unwrap();
        assert_eq!(
            m1.read_word(compiled.global("result")),
            m2.read_word(compiled.global("result")),
            "{}",
            p.name
        );
        assert_eq!(s1.instructions, s2.instructions, "{}", p.name);
    }
}
