//! Property-based tests of the estimation library's invariants, driven
//! by randomized annotated programs.

use proptest::collection::vec;
use proptest::prelude::*;
use scperf::core::{charge_op, timed_wait, CostTable, Mode, Op, PerfModel, Platform, ResourceKind};
use scperf::kernel::{Simulator, Time};

const CLOCK: Time = Time::ns(10);

/// A randomized straight-line "program": a list of (op, count) bursts
/// separated by waits.
fn run_bursts(
    kind: ResourceKind,
    mode: Mode,
    k: f64,
    rtos: f64,
    bursts: Vec<(u8, u16)>,
) -> (scperf::core::Report, Time) {
    let mut platform = Platform::new();
    let table = CostTable::risc_sw();
    let r = match kind {
        ResourceKind::Sequential => platform.sequential("cpu", CLOCK, table, rtos),
        ResourceKind::Parallel => platform.parallel("hw", CLOCK, table, k),
        ResourceKind::Environment => platform.environment("env"),
    };
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, mode);
    model.spawn(&mut sim, "p", r, move |ctx| {
        for (op_idx, n) in bursts {
            let op = scperf::core::ALL_OPS[op_idx as usize % scperf::core::OP_COUNT];
            for _ in 0..n {
                charge_op(op);
            }
            timed_wait(ctx, Time::ZERO);
        }
    });
    let summary = sim.run().expect("burst program runs");
    (model.report(), summary.end_time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The process total equals the sum over its segments, and segment
    /// min/max bracket the mean.
    #[test]
    fn totals_are_sums_of_segments(bursts in vec((any::<u8>(), 0_u16..200), 1..12)) {
        let (report, _) =
            run_bursts(ResourceKind::Sequential, Mode::EstimateOnly, 0.0, 0.0, bursts);
        let p = report.process("p").unwrap();
        let seg_sum: f64 = p.segments.iter().map(|s| s.stats.total_cycles).sum();
        prop_assert!((seg_sum - p.total_cycles).abs() < 1e-6);
        for s in &p.segments {
            let mean = s.stats.total_cycles / s.stats.count as f64;
            prop_assert!(s.stats.min_cycles <= mean + 1e-9);
            prop_assert!(mean <= s.stats.max_cycles + 1e-9);
        }
    }

    /// Strict-timed simulated end time equals computation + RTOS for a
    /// single sequential process (no contention).
    #[test]
    fn single_process_end_time_is_exact(bursts in vec((any::<u8>(), 0_u16..200), 1..10)) {
        let (report, end) =
            run_bursts(ResourceKind::Sequential, Mode::StrictTimed, 0.0, 150.0, bursts);
        let p = report.process("p").unwrap();
        let expect = p.total_time + p.rtos_time;
        // Rounding: each segment is rounded to ps independently.
        let slack = Time::ps(p.segment_executions);
        prop_assert!(end >= expect.saturating_sub(slack) && end <= expect.saturating_add(slack),
            "end {end} vs expected {expect}");
    }

    /// The estimate is invariant to the simulation mode: timed and untimed
    /// runs report identical cycles.
    #[test]
    fn estimates_are_mode_invariant(bursts in vec((any::<u8>(), 0_u16..150), 1..8)) {
        let (a, _) = run_bursts(
            ResourceKind::Sequential, Mode::EstimateOnly, 0.0, 100.0, bursts.clone());
        let (b, _) = run_bursts(
            ResourceKind::Sequential, Mode::StrictTimed, 0.0, 100.0, bursts);
        prop_assert_eq!(
            a.process("p").unwrap().total_cycles,
            b.process("p").unwrap().total_cycles
        );
    }

    /// On parallel resources, the annotated time is monotone in k and
    /// bracketed by the T_min / T_max extremes.
    #[test]
    fn hw_k_is_monotone(bursts in vec((any::<u8>(), 1_u16..100), 1..6)) {
        let mut prev = 0.0_f64;
        for i in 0..=4 {
            let k = i as f64 / 4.0;
            let (report, _) = run_bursts(
                ResourceKind::Parallel, Mode::EstimateOnly, k, 0.0, bursts.clone());
            let total = report.process("p").unwrap().total_cycles;
            prop_assert!(total + 1e-9 >= prev, "k={k}: {total} < {prev}");
            prev = total;
        }
    }

    /// Environment processes never accumulate cycles, in any mode.
    #[test]
    fn environment_is_free(bursts in vec((any::<u8>(), 0_u16..300), 1..8)) {
        for mode in [Mode::EstimateOnly, Mode::StrictTimed] {
            let (report, end) =
                run_bursts(ResourceKind::Environment, mode, 0.0, 0.0, bursts.clone());
            prop_assert_eq!(report.process("p").unwrap().total_cycles, 0.0);
            prop_assert_eq!(end, Time::ZERO);
        }
    }

    /// Two identical processes sharing one CPU finish in exactly twice the
    /// single-process computation time (plus RTOS), regardless of the
    /// workload.
    #[test]
    fn shared_cpu_doubles_the_makespan(n in 1_u16..2000) {
        let run = |procs: usize| -> Time {
            let mut platform = Platform::new();
            let cpu = platform.sequential("cpu", CLOCK, CostTable::risc_sw(), 0.0);
            let mut sim = Simulator::new();
            let model = PerfModel::new(platform, Mode::StrictTimed);
            for i in 0..procs {
                model.spawn(&mut sim, format!("p{i}"), cpu, move |_ctx| {
                    for _ in 0..n {
                        charge_op(Op::Add);
                    }
                });
            }
            sim.run().unwrap().end_time
        };
        let one = run(1);
        let two = run(2);
        prop_assert_eq!(two.as_ps(), one.as_ps() * 2);
    }
}
