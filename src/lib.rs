//! # scperf — system-level performance analysis in a SystemC-like kernel
//!
//! A from-scratch Rust reproduction of *Posadas, Herrera, Sánchez, Villar,
//! Blasco: "System-Level Performance Analysis in SystemC" (DATE 2004)*:
//! dynamic timing estimation of system-level models during simulation,
//! turning an untimed delta-cycle simulation into a strict-timed one with
//! no change to the model's structure.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`kernel`] | `scperf-kernel` | SystemC-like discrete-event simulation kernel |
//! | [`core`] | `scperf-core` | the paper's estimation library (annotated types, segments, platform model, back-annotation, capture points) |
//! | [`iss`] | `scperf-iss` | cycle-accurate reference RISC ISS + `minic` compiler + calibration |
//! | [`hls`] | `scperf-hls` | behavioral-synthesis scheduling baseline (ASAP/ALAP/list, area model) |
//! | [`workloads`] | `scperf-workloads` | the paper's benchmarks in three matched forms, incl. the GSM-like vocoder |
//! | [`obs`] | `scperf-obs` | observability layer: compact tracing, metrics snapshots, host-time profiling, Chrome-trace export |
//! | [`dse`] | `scperf-dse` | parallel design-space exploration: mapping sweeps, segment-cost memoization, Pareto frontiers |
//! | [`serve`] | `scperf-serve` | concurrent simulation service: JSON-lines scenario evaluation over stdio/TCP with batching, deadlines, backpressure |
//!
//! The experiment harness (`scperf-bench`) regenerates every table and
//! figure of the paper's evaluation; see the repository README and
//! EXPERIMENTS.md.
//!
//! Downstream code imports from [`prelude`] — the blessed, snapshot-
//! tested surface — rather than reaching into individual crates:
//!
//! # Example
//!
//! ```
//! use scperf::prelude::*;
//!
//! let mut platform = Platform::new();
//! let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
//!
//! let mut session = SimConfig::new().platform(platform).build();
//! session.spawn("worker", cpu, |_ctx| {
//!     let mut acc = g_i32(0);
//!     for i in 0..100 {
//!         acc = acc + G::raw(i);
//!     }
//!     assert_eq!(acc.get(), 4950);
//! });
//! let summary = session.run()?;
//! assert!(summary.end_time > Time::ZERO); // the model became timed
//! # Ok::<(), SimError>(())
//! ```

#![warn(missing_docs)]

pub mod prelude;

pub use scperf_core as core;
pub use scperf_dse as dse;
pub use scperf_hls as hls;
pub use scperf_iss as iss;
pub use scperf_kernel as kernel;
pub use scperf_obs as obs;
pub use scperf_serve as serve;
pub use scperf_workloads as workloads;

/// Compiles every Rust fragment of the repository README as a doctest,
/// so the documented examples can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
