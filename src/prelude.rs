//! The blessed single-import surface of the workspace.
//!
//! `use scperf::prelude::*;` brings in everything a typical model,
//! example or benchmark needs — the [`SimConfig`]/[`Session`] front
//! door, the annotated [`G`] types and macros, platform declaration,
//! channels, reporting, and handles to the specialised sub-crates
//! (`hls`, `workloads`, `obs`, `dse`, `iss`, `serve`) — without
//! reaching into individual crates.
//!
//! This module is the *public API contract* of the workspace: the
//! `api_snapshot` test asserts its exact export list against
//! `tests/prelude_api.snapshot`, so additions and removals are
//! deliberate, reviewed events rather than accidents.
//!
//! ```
//! use scperf::prelude::*;
//!
//! let mut platform = Platform::new();
//! let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
//! let mut session = SimConfig::new().platform(platform).build();
//! session.spawn("worker", cpu, |_ctx| {
//!     let mut acc = g_i64(0);
//!     for i in 0..8 {
//!         acc = acc + g_i64(i);
//!     }
//! });
//! let summary = session.run()?;
//! assert!(summary.end_time > Time::ZERO);
//! # Ok::<(), SimError>(())
//! ```

// --- The session front door: configuration, lifecycle, record/replay.
pub use scperf_core::{Recorder, Replay, Session, SimConfig};

// --- Session pooling and snapshot/fork (serving hot path).
pub use scperf_core::{
    InstanceLimits, LimitExceeded, PoolExhausted, PoolStats, PooledSession, SessionPool, Snapshot,
};

// --- Annotated value types and control-flow macros (§3 of the paper).
pub use scperf_core::{g_call, g_for, g_if, g_loop, g_site, g_while};
pub use scperf_core::{
    g_f32, g_f64, g_i16, g_i32, g_i64, g_u16, g_u32, g_u64, g_u8, g_usize, GArr, G,
};

// --- Segment-site memoization (estimator hot path).
pub use scperf_core::{site_enter, MemoMode, SegmentSite, SiteGuard};

// --- Platform declaration and the estimation model.
pub use scperf_core::{CostTable, Mode, PerfModel, Platform, Resource, ResourceId, ResourceKind};

// --- Channels and waits (segment boundaries, §2).
pub use scperf_core::{timed_wait, timed_wait_labeled, PFifo, PRendezvous, PSignal};

// --- HW estimation helpers (§3).
pub use scperf_core::weighted_hw_cycles;

// --- Reporting and capture points (§4).
pub use scperf_core::{
    CaptureEvent, CaptureList, CapturePoint, ProcessGraph, ProcessReport, Report, ResourceReport,
    SegmentReport,
};

// --- Analysis passes on top of the estimates (§6).
pub use scperf_core::{determinism, rate};

// --- Kernel: simulation time, lifecycle, process context, options.
pub use scperf_kernel::{
    HandoffKind, ProcCtx, ProcId, SimError, SimOptions, SimSummary, Simulator, StopReason, Time,
    TraceMode, TraceRecord,
};

// --- Observability results surfaced by `Session`.
pub use scperf_obs::{MetricsSnapshot, TraceSink, TraceTable};

// --- Sub-crate handles for the specialised layers.
pub use scperf_dse as dse;
pub use scperf_hls as hls;
pub use scperf_iss as iss;
pub use scperf_obs as obs;
pub use scperf_serve as serve;
pub use scperf_workloads as workloads;
