//! Property tests: scheduling invariants over random DFGs.

use proptest::prelude::*;
use scperf_core::{Dfg, Op, NO_NODE};
use scperf_hls::{explore, schedule_asap, schedule_list, schedule_sequential, Allocation, FuKind};

/// Strategy: a random DAG of up to `n` nodes. Each node picks its
/// predecessors from earlier nodes, so the graph is acyclic by
/// construction (like real recorded DFGs).
fn arb_dfg(max_nodes: usize) -> impl Strategy<Value = Dfg> {
    prop::collection::vec((0_u8..6, any::<u16>(), any::<u16>()), 1..max_nodes).prop_map(|spec| {
        let mut g = Dfg::new();
        for (i, (opk, pa, pb)) in spec.into_iter().enumerate() {
            let (op, lat) = match opk {
                0 => (Op::Add, 1),
                1 => (Op::Mul, 2),
                2 => (Op::Div, 8),
                3 => (Op::Index, 1),
                4 => (Op::Cmp, 1),
                _ => (Op::Shift, 1),
            };
            let a = if i == 0 {
                NO_NODE
            } else {
                (pa as u32 % (i as u32 + 1)).min(i as u32) // 0 = NO_NODE or an earlier id
            };
            let b = if i == 0 {
                NO_NODE
            } else {
                (pb as u32 % (i as u32 + 1)).min(i as u32)
            };
            g.push(op, lat, a, b);
        }
        g
    })
}

proptest! {
    /// ASAP ≤ list ≤ sequential for any allocation: resources only slow
    /// things down, and full serialization is the worst case.
    #[test]
    fn makespans_are_ordered(dfg in arb_dfg(24), alus in 1_u32..4) {
        let asap = schedule_asap(&dfg).makespan;
        let alloc = Allocation::uniform(alus);
        let list = schedule_list(&dfg, &alloc).makespan;
        let seq = schedule_sequential(&dfg).makespan;
        prop_assert!(asap <= list, "asap {asap} > list {list}");
        prop_assert!(list <= seq, "list {list} > seq {seq}");
        prop_assert_eq!(asap, dfg.critical_path());
        prop_assert_eq!(seq, dfg.sequential_cycles());
    }

    /// Every produced schedule is valid: dependences respected and the
    /// allocation never over-subscribed.
    #[test]
    fn schedules_validate(dfg in arb_dfg(24), alus in 1_u32..4) {
        let alloc = Allocation::uniform(alus);
        schedule_asap(&dfg).validate(&dfg, None).map_err(TestCaseError::fail)?;
        schedule_list(&dfg, &alloc)
            .validate(&dfg, Some(&alloc))
            .map_err(TestCaseError::fail)?;
        schedule_sequential(&dfg)
            .validate(&dfg, Some(&Allocation::single()))
            .map_err(TestCaseError::fail)?;
    }

    /// More ALUs never increase the list-schedule makespan.
    #[test]
    fn alus_are_monotone(dfg in arb_dfg(20)) {
        let mut prev = u64::MAX;
        for alus in 1..=4 {
            let alloc = Allocation::unlimited().with(FuKind::Alu, alus);
            let m = schedule_list(&dfg, &alloc).makespan;
            prop_assert!(m <= prev);
            prev = m;
        }
    }

    /// The trade-off curve is bracketed by the two §3 extremes and the
    /// Pareto filter returns a subset.
    #[test]
    fn tradeoff_curve_brackets(dfg in arb_dfg(20)) {
        let pts = explore::tradeoff_curve(&dfg);
        prop_assert!(!pts.is_empty());
        prop_assert_eq!(pts.first().unwrap().cycles, dfg.sequential_cycles());
        prop_assert_eq!(pts.last().unwrap().cycles, dfg.critical_path());
        let pareto = explore::pareto(&pts);
        prop_assert!(pareto.len() <= pts.len());
        for p in &pareto {
            prop_assert!(pts.iter().any(|q| q.cycles == p.cycles && q.area == p.area));
        }
    }
}
