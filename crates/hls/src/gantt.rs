//! Textual Gantt rendering of schedules — a quick way to inspect what the
//! list scheduler did with a segment's DFG.

use scperf_core::Dfg;

use crate::fu::FuKind;
use crate::sched::Schedule;

/// Renders `schedule` as a per-operation text Gantt chart.
///
/// One row per operation (creation order), one column per cycle; `#` marks
/// occupancy. Rendering is capped at `max_cycles` columns and `max_rows`
/// rows to stay readable for large graphs (a truncation note is appended
/// when the cap bites).
pub fn render(dfg: &Dfg, schedule: &Schedule, max_rows: usize, max_cycles: u64) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let span = schedule.makespan.min(max_cycles);
    let _ = writeln!(
        out,
        "makespan {} cycles ({} operations){}",
        schedule.makespan,
        dfg.len(),
        if schedule.makespan > max_cycles || dfg.len() > max_rows {
            "  [truncated view]"
        } else {
            ""
        }
    );
    // Cycle ruler, every 5 cycles.
    let _ = write!(out, "{:>16} |", "cycle");
    for c in 0..span {
        let _ = write!(out, "{}", if c % 5 == 0 { '\'' } else { ' ' });
    }
    out.push('\n');
    for (i, node) in dfg.nodes().iter().enumerate().take(max_rows) {
        let start = schedule.start[i];
        let _ = write!(
            out,
            "{:>3} {:<5} {:<6} |",
            i + 1,
            node.op.to_string(),
            format!("{:?}", FuKind::for_op(node.op)).to_lowercase()
        );
        for c in 0..span {
            let busy = c >= start && c < start + node.latency;
            out.push(if busy { '#' } else { '.' });
        }
        out.push('\n');
    }
    if dfg.len() > max_rows {
        let _ = writeln!(out, "... {} more operations", dfg.len() - max_rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{schedule_asap, schedule_sequential};
    use scperf_core::{Op, NO_NODE};

    fn small_dfg() -> Dfg {
        let mut g = Dfg::new();
        let a = g.push(Op::Add, 1, NO_NODE, NO_NODE);
        let b = g.push(Op::Mul, 2, a, NO_NODE);
        g.push(Op::Add, 1, b, NO_NODE);
        g
    }

    #[test]
    fn gantt_shows_occupancy_in_order() {
        let g = small_dfg();
        let s = schedule_asap(&g);
        let text = render(&g, &s, 10, 32);
        assert!(text.contains("makespan 4 cycles"));
        // Row 1: add at cycle 0.
        assert!(text.contains("  1 +"));
        let lines: Vec<&str> = text.lines().collect();
        // Row for the multiply occupies cycles 1-2: ".##."
        let mul_line = lines.iter().find(|l| l.contains("2 *")).unwrap();
        assert!(mul_line.ends_with(".##."), "got {mul_line}");
    }

    #[test]
    fn truncation_is_flagged() {
        let mut g = Dfg::new();
        for _ in 0..20 {
            g.push(Op::Add, 1, NO_NODE, NO_NODE);
        }
        let s = schedule_sequential(&g);
        let text = render(&g, &s, 5, 8);
        assert!(text.contains("[truncated view]"));
        assert!(text.contains("... 15 more operations"));
    }
}
