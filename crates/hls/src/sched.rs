//! DFG scheduling: ASAP, ALAP, resource-constrained list scheduling and
//! the fully sequential (single-ALU) schedule.

use scperf_core::Dfg;

use crate::fu::{Allocation, FuKind, FU_KINDS};

/// A computed schedule of one dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Start cycle of each node (creation order).
    pub start: Vec<u64>,
    /// Total cycles (finish time of the last operation).
    pub makespan: u64,
    /// Maximum number of simultaneously busy units, per FU kind.
    pub fu_used: [u32; FU_KINDS],
}

impl Schedule {
    /// Total area of the functional units this schedule actually needs.
    pub fn area(&self, alloc: &Allocation) -> f64 {
        alloc.area(&self.fu_used)
    }

    /// Checks that `self` respects data dependences and (optionally) a
    /// resource allocation. Used by tests and property checks.
    pub fn validate(&self, dfg: &Dfg, alloc: Option<&Allocation>) -> Result<(), String> {
        let nodes = dfg.nodes();
        if self.start.len() != nodes.len() {
            return Err("schedule length mismatch".into());
        }
        for (i, n) in nodes.iter().enumerate() {
            for &p in n.preds() {
                let pi = (p - 1) as usize;
                let p_finish = self.start[pi] + nodes[pi].latency;
                if self.start[i] < p_finish {
                    return Err(format!(
                        "node {} starts at {} before predecessor {} finishes at {}",
                        i + 1,
                        self.start[i],
                        p,
                        p_finish
                    ));
                }
            }
        }
        if let Some(alloc) = alloc {
            // Check per-cycle FU occupancy.
            for kind in crate::fu::ALL_FU_KINDS {
                let limit = alloc.count(kind) as usize;
                let mut intervals: Vec<(u64, u64)> = nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| FuKind::for_op(n.op) == kind && n.latency > 0)
                    .map(|(i, n)| (self.start[i], self.start[i] + n.latency))
                    .collect();
                intervals.sort_unstable();
                // Sweep: at any instant, overlapping intervals <= limit.
                let mut events: Vec<(u64, i64)> = Vec::new();
                for (s, e) in intervals {
                    events.push((s, 1));
                    events.push((e, -1));
                }
                events.sort_unstable_by_key(|&(t, d)| (t, d));
                let mut level = 0_i64;
                for (_, d) in events {
                    level += d;
                    if level > limit as i64 {
                        return Err(format!("{kind:?} over-subscribed: {level} > {limit}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// ASAP schedule (unlimited resources): every operation starts the cycle
/// all its operands are ready. Its makespan is the critical path — the
/// paper's HW best case and the output of *time-constrained* behavioral
/// synthesis with no resource limits.
pub fn schedule_asap(dfg: &Dfg) -> Schedule {
    let nodes = dfg.nodes();
    let mut start = vec![0_u64; nodes.len()];
    let mut finish = vec![0_u64; nodes.len() + 1];
    let mut makespan = 0;
    for (i, n) in nodes.iter().enumerate() {
        let s = n
            .preds()
            .iter()
            .map(|&p| finish[p as usize])
            .max()
            .unwrap_or(0);
        start[i] = s;
        finish[i + 1] = s + n.latency;
        makespan = makespan.max(finish[i + 1]);
    }
    Schedule {
        fu_used: peak_usage(dfg, &start),
        start,
        makespan,
    }
}

/// ALAP schedule for deadline `deadline` (must be ≥ the critical path):
/// every operation starts as late as its consumers allow.
///
/// # Panics
///
/// Panics if `deadline` is smaller than the critical path.
pub fn schedule_alap(dfg: &Dfg, deadline: u64) -> Schedule {
    assert!(
        deadline >= dfg.critical_path(),
        "deadline {deadline} below critical path {}",
        dfg.critical_path()
    );
    let nodes = dfg.nodes();
    let n = nodes.len();
    // latest finish for each node, computed in reverse topological order.
    let mut latest_finish = vec![deadline; n];
    for (i, node) in nodes.iter().enumerate().rev() {
        let start_i = latest_finish[i] - node.latency;
        for &p in node.preds() {
            let pi = (p - 1) as usize;
            latest_finish[pi] = latest_finish[pi].min(start_i);
        }
    }
    let start: Vec<u64> = latest_finish
        .iter()
        .zip(nodes)
        .map(|(&f, n)| f - n.latency)
        .collect();
    Schedule {
        fu_used: peak_usage(dfg, &start),
        start,
        makespan: deadline,
    }
}

/// Resource-constrained list scheduling: ready operations are issued in
/// priority order (longest path to the sink first) whenever a unit of
/// their kind is free. This is the classic core of behavioral-synthesis
/// scheduling under an area budget.
pub fn schedule_list(dfg: &Dfg, alloc: &Allocation) -> Schedule {
    let nodes = dfg.nodes();
    let n = nodes.len();
    let priority = path_to_sink(dfg);
    let mut remaining_preds: Vec<usize> = nodes.iter().map(|nd| nd.preds().len()).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, nd) in nodes.iter().enumerate() {
        for &p in nd.preds() {
            succs[(p - 1) as usize].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut start = vec![u64::MAX; n];
    let mut finish_events: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    let mut busy = [0_u32; FU_KINDS];
    let mut now = 0_u64;
    let mut scheduled = 0_usize;
    let mut makespan = 0_u64;
    while scheduled < n {
        // Retire operations finishing at `now`.
        while let Some(&std::cmp::Reverse((t, i))) = finish_events.peek() {
            if t > now {
                break;
            }
            finish_events.pop();
            busy[FuKind::for_op(nodes[i].op).index()] -= 1;
            for &s in &succs[i] {
                remaining_preds[s] -= 1;
                if remaining_preds[s] == 0 {
                    ready.push(s);
                }
            }
        }
        // Issue ready ops in priority order while units are free.
        ready.sort_unstable_by_key(|&i| (std::cmp::Reverse(priority[i]), i));
        let mut still_ready = Vec::new();
        for &i in &ready {
            let kind = FuKind::for_op(nodes[i].op);
            if busy[kind.index()] < alloc.count(kind) {
                busy[kind.index()] += 1;
                start[i] = now;
                let f = now + nodes[i].latency;
                makespan = makespan.max(f);
                finish_events.push(std::cmp::Reverse((f, i)));
                scheduled += 1;
            } else {
                still_ready.push(i);
            }
        }
        ready = still_ready;
        // Advance to the next finish event.
        if scheduled < n {
            let Some(&std::cmp::Reverse((t, _))) = finish_events.peek() else {
                unreachable!("ready ops exist but nothing is in flight");
            };
            now = t;
        }
    }
    Schedule {
        fu_used: peak_usage(dfg, &start),
        start,
        makespan,
    }
}

/// The paper's HW worst case: all operations strictly one after the other
/// ("only one ALU is used and all the operations are executed
/// sequentially"). Makespan = Σ latencies.
pub fn schedule_sequential(dfg: &Dfg) -> Schedule {
    let nodes = dfg.nodes();
    // Execute in topological (creation) order, one at a time.
    let mut start = vec![0_u64; nodes.len()];
    let mut now = 0_u64;
    for (i, n) in nodes.iter().enumerate() {
        start[i] = now;
        now += n.latency;
    }
    Schedule {
        fu_used: peak_usage(dfg, &start),
        start,
        makespan: now,
    }
}

/// Continuous-time (chained) critical path: the longest dependence path
/// through the graph using the *raw fractional* operation delays from
/// `costs`, in cycles. This models a synthesis tool with operation
/// chaining under a time constraint — the Tables 2/4 best-case reference.
pub fn chained_critical_path(dfg: &Dfg, costs: &scperf_core::CostTable) -> f64 {
    let nodes = dfg.nodes();
    let mut finish = vec![0.0_f64; nodes.len() + 1];
    let mut best = 0.0_f64;
    for (i, n) in nodes.iter().enumerate() {
        let start = n
            .preds()
            .iter()
            .map(|&p| finish[p as usize])
            .fold(0.0_f64, f64::max);
        finish[i + 1] = start + costs[n.op];
        best = best.max(finish[i + 1]);
    }
    best
}

/// Continuous-time (chained) fully sequential execution: the sum of the
/// raw fractional operation delays — a single chained ALU datapath, the
/// Tables 2/4 worst-case (resource-constrained) reference.
pub fn chained_sequential(dfg: &Dfg, costs: &scperf_core::CostTable) -> f64 {
    dfg.nodes().iter().map(|n| costs[n.op]).sum()
}

/// Longest path (in cycles) from each node to any sink, inclusive of the
/// node's own latency — the list-scheduling priority function.
fn path_to_sink(dfg: &Dfg) -> Vec<u64> {
    let nodes = dfg.nodes();
    let n = nodes.len();
    let mut dist = vec![0_u64; n];
    for i in (0..n).rev() {
        dist[i] += nodes[i].latency;
        for &p in nodes[i].preds() {
            let pi = (p - 1) as usize;
            dist[pi] = dist[pi].max(dist[i]);
        }
    }
    dist
}

/// Peak concurrent usage per FU kind for a given start-time vector.
fn peak_usage(dfg: &Dfg, start: &[u64]) -> [u32; FU_KINDS] {
    let nodes = dfg.nodes();
    let mut used = [0_u32; FU_KINDS];
    for kind in crate::fu::ALL_FU_KINDS {
        let mut events: Vec<(u64, i32)> = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            if FuKind::for_op(n.op) == kind && n.latency > 0 {
                events.push((start[i], 1));
                events.push((start[i] + n.latency, -1));
            }
        }
        events.sort_unstable_by_key(|&(t, d)| (t, d));
        let mut level = 0_i32;
        let mut peak = 0_i32;
        for (_, d) in events {
            level += d;
            peak = peak.max(level);
        }
        used[kind.index()] = peak as u32;
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_core::{Op, NO_NODE};

    /// add(1) feeding two muls(2 each) feeding an add(1).
    fn diamond() -> Dfg {
        let mut g = Dfg::new();
        let a = g.push(Op::Add, 1, NO_NODE, NO_NODE);
        let b = g.push(Op::Mul, 2, a, NO_NODE);
        let c = g.push(Op::Mul, 2, a, NO_NODE);
        g.push(Op::Add, 1, b, c);
        g
    }

    #[test]
    fn asap_matches_critical_path() {
        let g = diamond();
        let s = schedule_asap(&g);
        assert_eq!(s.makespan, g.critical_path());
        assert_eq!(s.makespan, 4);
        s.validate(&g, None).unwrap();
        // The two muls run concurrently: 2 multipliers needed.
        assert_eq!(s.fu_used[FuKind::Mul.index()], 2);
    }

    #[test]
    fn alap_pushes_ops_late() {
        let g = diamond();
        let s = schedule_alap(&g, 6);
        assert_eq!(s.makespan, 6);
        s.validate(&g, None).unwrap();
        // Final add starts at 5; muls finish by then.
        assert_eq!(s.start[3], 5);
    }

    #[test]
    #[should_panic(expected = "below critical path")]
    fn alap_rejects_tight_deadline() {
        let _ = schedule_alap(&diamond(), 3);
    }

    #[test]
    fn list_schedule_respects_single_multiplier() {
        let g = diamond();
        let alloc = Allocation::unlimited().with(FuKind::Mul, 1);
        let s = schedule_list(&g, &alloc);
        s.validate(&g, Some(&alloc)).unwrap();
        // Muls serialize: 1 + 2 + 2 + 1 = 6.
        assert_eq!(s.makespan, 6);
        assert_eq!(s.fu_used[FuKind::Mul.index()], 1);
    }

    #[test]
    fn list_schedule_with_unlimited_resources_is_asap() {
        let g = diamond();
        let s = schedule_list(&g, &Allocation::unlimited());
        assert_eq!(s.makespan, schedule_asap(&g).makespan);
    }

    #[test]
    fn sequential_is_sum_of_latencies() {
        let g = diamond();
        let s = schedule_sequential(&g);
        assert_eq!(s.makespan, g.sequential_cycles());
        assert_eq!(s.makespan, 6);
        s.validate(&g, Some(&Allocation::single())).unwrap();
        // Fully serialized: never more than one unit of any kind busy.
        assert!(s.fu_used.iter().all(|&u| u <= 1));
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let g = Dfg::new();
        assert_eq!(schedule_asap(&g).makespan, 0);
        assert_eq!(schedule_list(&g, &Allocation::single()).makespan, 0);
        assert_eq!(schedule_sequential(&g).makespan, 0);
    }

    #[test]
    fn priorities_prefer_critical_ops() {
        // Two independent chains: long (3 adds) and short (1 add), one ALU.
        let mut g = Dfg::new();
        let a1 = g.push(Op::Add, 1, NO_NODE, NO_NODE);
        let a2 = g.push(Op::Add, 1, a1, NO_NODE);
        g.push(Op::Add, 1, a2, NO_NODE);
        g.push(Op::Add, 1, NO_NODE, NO_NODE); // short chain
        let alloc = Allocation::unlimited().with(FuKind::Alu, 1);
        let s = schedule_list(&g, &alloc);
        s.validate(&g, Some(&alloc)).unwrap();
        // Optimal: issue the long chain head first; the short op fills a
        // gap. Total 4 cycles (4 unit-latency ops on 1 ALU).
        assert_eq!(s.makespan, 4);
        assert_eq!(s.start[0], 0, "critical chain must start first");
    }

    #[test]
    fn schedule_area_uses_peak_usage() {
        let g = diamond();
        let s = schedule_asap(&g);
        // 1 ALU + 2 MULs = 1 + 8 = 9.
        assert_eq!(s.area(&Allocation::unlimited()), 1.0 + 2.0 * 4.0);
        let seq = schedule_sequential(&g);
        // 1 ALU + 1 MUL = 5.
        assert_eq!(seq.area(&Allocation::single()), 5.0);
    }
}
