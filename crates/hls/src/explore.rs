//! Design-space exploration over the time/area trade-off (Figure 4).
//!
//! The paper's Figure 4 sketches the implementation-solution space of a HW
//! segment: area versus execution time, bounded by the critical-path point
//! (fastest, largest) and the single-ALU point (slowest, smallest). This
//! module regenerates that curve by list-scheduling the segment's DFG under
//! a sweep of ALU budgets.

use scperf_core::Dfg;

use crate::fu::{Allocation, FuKind};
use crate::sched::{schedule_asap, schedule_list, schedule_sequential};

/// One point of the time/area trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// ALU budget that produced this point (`0` marks the fully sequential
    /// single-ALU reference).
    pub alus: u32,
    /// Schedule length in cycles.
    pub cycles: u64,
    /// Functional-unit area of the schedule.
    pub area: f64,
}

/// Sweeps the ALU budget from 1 towards the DFG's peak parallelism
/// (doubling each step so wide graphs stay manageable) and returns the
/// resulting (time, area) points, bracketed by the paper's two extremes:
/// the single-ALU sequential schedule first and the critical-path (ASAP)
/// schedule last.
pub fn tradeoff_curve(dfg: &Dfg) -> Vec<TradeoffPoint> {
    let mut points = Vec::new();
    // Worst case: everything on one ALU-equivalent, fully sequential.
    let seq = schedule_sequential(dfg);
    points.push(TradeoffPoint {
        alus: 0,
        cycles: seq.makespan,
        area: seq.area(&Allocation::single()),
    });
    let asap = schedule_asap(dfg);
    let max_alus = asap.fu_used[FuKind::Alu.index()].max(1);
    let mut alus = 1;
    loop {
        let alloc = Allocation::unlimited().with(FuKind::Alu, alus);
        let s = schedule_list(dfg, &alloc);
        points.push(TradeoffPoint {
            alus,
            cycles: s.makespan,
            area: s.area(&alloc),
        });
        if alus >= max_alus {
            break;
        }
        alus = (alus * 2).min(max_alus);
    }
    // Best case: critical path.
    points.push(TradeoffPoint {
        alus: max_alus,
        cycles: asap.makespan,
        area: asap.area(&Allocation::unlimited()),
    });
    points
}

/// Keeps only Pareto-optimal points (no other point is both faster and
/// smaller).
pub fn pareto(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut result: Vec<TradeoffPoint> = Vec::new();
    for &p in points {
        if points.iter().any(|q| {
            (q.cycles < p.cycles && q.area <= p.area) || (q.cycles <= p.cycles && q.area < p.area)
        }) {
            continue;
        }
        if !result
            .iter()
            .any(|r| r.cycles == p.cycles && r.area == p.area)
        {
            result.push(p);
        }
    }
    result.sort_by(|a, b| a.cycles.cmp(&b.cycles).then(a.area.total_cmp(&b.area)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_core::{Op, NO_NODE};

    /// Eight independent adds: maximal parallelism 8.
    fn wide() -> Dfg {
        let mut g = Dfg::new();
        for _ in 0..8 {
            g.push(Op::Add, 1, NO_NODE, NO_NODE);
        }
        g
    }

    #[test]
    fn curve_brackets_the_extremes() {
        let g = wide();
        let pts = tradeoff_curve(&g);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert_eq!(first.cycles, g.sequential_cycles()); // WC time
        assert_eq!(last.cycles, g.critical_path()); // BC time
        assert!(first.area <= last.area);
    }

    #[test]
    fn curve_is_monotone_in_alus() {
        let pts = tradeoff_curve(&wide());
        for w in pts.windows(2) {
            assert!(w[1].cycles <= w[0].cycles, "more ALUs never slow down");
        }
    }

    #[test]
    fn pareto_filters_dominated_points() {
        let pts = vec![
            TradeoffPoint {
                alus: 1,
                cycles: 8,
                area: 1.0,
            },
            TradeoffPoint {
                alus: 2,
                cycles: 4,
                area: 2.0,
            },
            TradeoffPoint {
                alus: 3,
                cycles: 4,
                area: 3.0,
            }, // dominated by the 2-ALU point
        ];
        let p = pareto(&pts);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|pt| pt.alus != 3));
    }

    #[test]
    fn single_op_graph_has_flat_curve() {
        let mut g = Dfg::new();
        g.push(Op::Mul, 2, NO_NODE, NO_NODE);
        let pts = tradeoff_curve(&g);
        assert!(pts.iter().all(|p| p.cycles == 2));
    }
}
