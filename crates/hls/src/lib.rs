//! # scperf-hls — a behavioral-synthesis scheduling baseline
//!
//! The paper validates its HW estimates (Tables 2 and 4) against "real
//! execution times under resource-constrained and time-constrained
//! scheduling … obtained by using the Concentric behavioral synthesis tool
//! from Synopsys". This crate is the open substitute: the textbook
//! scheduling cores of behavioral synthesis, operating directly on the
//! dataflow graphs the estimation library records
//! ([`scperf_core::PerfModel::record_dfgs`]).
//!
//! * [`schedule_asap`] — unlimited resources; its makespan is the critical
//!   path, the *time-constrained* / best-case reference.
//! * [`schedule_sequential`] — everything serialized on a single ALU, the
//!   *resource-constrained* / worst-case reference.
//! * [`schedule_list`] — priority list scheduling under an arbitrary
//!   functional-unit [`Allocation`], filling the space between the two.
//! * [`schedule_alap`] + slack, and [`explore::tradeoff_curve`] for the
//!   Figure 4 area/time solution space.
//!
//! # Examples
//!
//! ```
//! use scperf_core::{Dfg, Op, NO_NODE};
//! use scperf_hls::{schedule_asap, schedule_list, schedule_sequential, Allocation, FuKind};
//!
//! // (a+b) * (c+d)
//! let mut dfg = Dfg::new();
//! let s1 = dfg.push(Op::Add, 1, NO_NODE, NO_NODE);
//! let s2 = dfg.push(Op::Add, 1, NO_NODE, NO_NODE);
//! dfg.push(Op::Mul, 2, s1, s2);
//!
//! let best = schedule_asap(&dfg);
//! let worst = schedule_sequential(&dfg);
//! assert_eq!(best.makespan, 3);  // adds in parallel, then the multiply
//! assert_eq!(worst.makespan, 4); // 1 + 1 + 2
//!
//! let one_alu = Allocation::unlimited().with(FuKind::Alu, 1);
//! assert_eq!(schedule_list(&dfg, &one_alu).makespan, 4);
//! ```

#![warn(missing_docs)]

pub mod explore;
mod fu;
pub mod gantt;
mod sched;

pub use fu::{Allocation, FuKind, ALL_FU_KINDS, FU_KINDS};
pub use sched::{
    chained_critical_path, chained_sequential, schedule_alap, schedule_asap, schedule_list,
    schedule_sequential, Schedule,
};
