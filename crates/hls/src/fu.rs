//! Functional-unit classes and the area model.

use scperf_core::Op;

/// The functional-unit classes operations are bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuKind {
    /// Integer ALU: add/sub, compares, logic, shifts, moves, muxes.
    Alu,
    /// Integer multiplier.
    Mul,
    /// Integer divider.
    Div,
    /// Memory port (array accesses).
    Mem,
    /// Floating-point unit.
    Fpu,
}

/// Number of functional-unit classes.
pub const FU_KINDS: usize = 5;

/// All functional-unit classes.
pub const ALL_FU_KINDS: [FuKind; FU_KINDS] = [
    FuKind::Alu,
    FuKind::Mul,
    FuKind::Div,
    FuKind::Mem,
    FuKind::Fpu,
];

impl FuKind {
    /// Dense index of this kind.
    pub const fn index(self) -> usize {
        match self {
            FuKind::Alu => 0,
            FuKind::Mul => 1,
            FuKind::Div => 2,
            FuKind::Mem => 3,
            FuKind::Fpu => 4,
        }
    }

    /// The unit an operation class executes on.
    pub const fn for_op(op: Op) -> FuKind {
        match op {
            Op::Mul => FuKind::Mul,
            Op::Div => FuKind::Div,
            Op::Index => FuKind::Mem,
            Op::FAdd | Op::FMul | Op::FDiv => FuKind::Fpu,
            Op::Assign | Op::Add | Op::Cmp | Op::Logic | Op::Shift | Op::Branch | Op::Call => {
                FuKind::Alu
            }
        }
    }

    /// Relative silicon area of one unit of this kind (ALU = 1).
    pub const fn area(self) -> f64 {
        match self {
            FuKind::Alu => 1.0,
            FuKind::Mul => 4.0,
            FuKind::Div => 12.0,
            FuKind::Mem => 2.0,
            FuKind::Fpu => 9.0,
        }
    }
}

/// A per-kind functional-unit allocation (the resource constraint of
/// resource-constrained scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    counts: [u32; FU_KINDS],
}

impl Allocation {
    /// `n` units of every kind.
    pub const fn uniform(n: u32) -> Allocation {
        Allocation {
            counts: [n; FU_KINDS],
        }
    }

    /// The paper's worst-case reference: one unit of each kind, fully
    /// serializing same-kind operations (and, combined with a total-order
    /// schedule, all operations — see
    /// [`crate::schedule_sequential`]).
    pub const fn single() -> Allocation {
        Allocation::uniform(1)
    }

    /// Effectively unbounded units (time-constrained scheduling / ASAP).
    pub const fn unlimited() -> Allocation {
        Allocation::uniform(u32::MAX)
    }

    /// Sets the count for one kind.
    pub fn with(mut self, kind: FuKind, n: u32) -> Allocation {
        self.counts[kind.index()] = n;
        self
    }

    /// The count for one kind.
    pub fn count(&self, kind: FuKind) -> u32 {
        self.counts[kind.index()]
    }

    /// Total area of this allocation, counting only kinds actually used by
    /// at least one operation in `used` (unused allocated units cost
    /// nothing — synthesis would not instantiate them).
    pub fn area(&self, used: &[u32; FU_KINDS]) -> f64 {
        ALL_FU_KINDS
            .iter()
            .map(|k| {
                let n = used[k.index()].min(self.counts[k.index()]);
                n as f64 * k.area()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_binding_is_total() {
        for op in scperf_core::ALL_OPS {
            let _ = FuKind::for_op(op); // must not panic; exhaustive match
        }
        assert_eq!(FuKind::for_op(Op::Add), FuKind::Alu);
        assert_eq!(FuKind::for_op(Op::Mul), FuKind::Mul);
        assert_eq!(FuKind::for_op(Op::Index), FuKind::Mem);
        assert_eq!(FuKind::for_op(Op::FDiv), FuKind::Fpu);
    }

    #[test]
    fn indices_are_dense() {
        for (i, k) in ALL_FU_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn allocation_accessors() {
        let a = Allocation::uniform(2).with(FuKind::Div, 0);
        assert_eq!(a.count(FuKind::Alu), 2);
        assert_eq!(a.count(FuKind::Div), 0);
    }

    #[test]
    fn area_counts_only_used_units() {
        let a = Allocation::uniform(4);
        let mut used = [0_u32; FU_KINDS];
        used[FuKind::Alu.index()] = 2; // only 2 ALUs ever busy at once
        assert_eq!(a.area(&used), 2.0);
        used[FuKind::Mul.index()] = 8; // more used than allocated: clamp
        assert_eq!(a.area(&used), 2.0 + 4.0 * 4.0);
    }
}
