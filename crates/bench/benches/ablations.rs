//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * estimation accuracy vs calibration-set size (how many probes are
//!   needed before Table 1 errors stabilize),
//! * RTOS cost on/off (its share of the vocoder's simulated time),
//! * the `k` weight sweep on the HW FIR segment,
//! * ISS cache model on/off (the "unavoidable" cache error of §1),
//! * functional vs pipelined ISS timing model cost.
//!
//! These are wall-clock benches plus printed accuracy summaries; run with
//! `cargo bench -p scperf-bench --bench ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use scperf_bench::{calibration, harness};
use scperf_core::{Mode, PerfModel, Platform};
use scperf_kernel::{Simulator, Time};
use scperf_workloads::{probes::probes, table1_cases, vocoder};

/// Accuracy vs calibration-set size (printed once; benches the full fit).
fn ablation_calibration_size(c: &mut Criterion) {
    let all = probes();
    println!("\n[ablation] Table-1 max error vs number of calibration probes:");
    for n in [4, 6, 8, 10, all.len()] {
        let cal = calibration::calibrate_with(&all[..n]);
        let max_err = table1_cases()
            .into_iter()
            .map(|case| {
                let est = harness::estimate(&cal.table, case.annotated);
                let (_, stats) = case.run_iss();
                harness::pct_error(est.cycles, stats.cycles as f64)
            })
            .fold(0.0_f64, f64::max);
        println!("  {n:>2} probes -> max error {max_err:6.2}%  (R^2 {:.4})", cal.r_squared);
    }
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("full_calibration", |b| b.iter(calibration::calibrate));
    group.finish();
}

/// RTOS overhead share: vocoder simulated end time with and without the
/// per-node RTOS cost.
fn ablation_rtos(c: &mut Criterion) {
    let table = calibration::calibrate().table;
    let run = |rtos: f64| -> Time {
        let mut platform = Platform::new();
        let cpu = platform.sequential("cpu0", harness::CLOCK, table.clone(), rtos);
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let _ = vocoder::pipeline::build(
            &mut sim,
            &model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            4,
        );
        sim.run().expect("runs").end_time
    };
    let with_rtos = run(harness::RTOS_CYCLES);
    let without = run(0.0);
    println!(
        "\n[ablation] vocoder (4 frames): simulated end {} with RTOS cost, {} without \
         ({:.2}% RTOS share)",
        with_rtos,
        without,
        (with_rtos.as_ns_f64() - without.as_ns_f64()) / with_rtos.as_ns_f64() * 100.0
    );
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("vocoder_strict_timed_4f", |b| {
        b.iter(|| run(harness::RTOS_CYCLES))
    });
    group.finish();
}

/// ISS model ablation: functional cost model vs cycle-stepped pipeline,
/// caches on/off, on the FIR benchmark.
fn ablation_iss_models(c: &mut Criterion) {
    let case = &table1_cases()[0]; // FIR
    let compiled = scperf_iss::minic::compile(&case.minic).expect("compiles");
    {
        let mut plainm = scperf_iss::Machine::new(1 << 22);
        plainm.load(&compiled.program);
        let functional = plainm.run(1_000_000_000).expect("runs");
        let mut pipem = scperf_workloads::case::reference_machine();
        pipem.load(&compiled.program);
        let pipelined = pipem.run_pipelined(8_000_000_000).expect("runs");
        println!(
            "\n[ablation] FIR on the ISS: functional model {} cycles, pipelined+caches {} cycles \
             ({} icache / {} dcache misses)",
            functional.cycles, pipelined.cycles, pipelined.icache_misses, pipelined.dcache_misses
        );
    }
    let mut group = c.benchmark_group("iss_model");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("functional", |b| {
        b.iter(|| {
            let mut m = scperf_iss::Machine::new(1 << 22);
            m.load(&compiled.program);
            m.run(1_000_000_000).expect("runs").cycles
        })
    });
    group.bench_function("pipelined_cached", |b| {
        b.iter(|| {
            let mut m = scperf_workloads::case::reference_machine();
            m.load(&compiled.program);
            m.run_pipelined(8_000_000_000).expect("runs").cycles
        })
    });
    group.finish();
}

/// HLS scheduling cost on the recorded Post-Proc DFG (Table 4's segment).
fn ablation_hls(c: &mut Criterion) {
    let trace = vocoder::run_reference(2);
    let aq = trace.aq[0].clone();
    let exc = trace.exc[0].clone();
    let (dfg, _, _) = harness::record_hw_dfg(scperf_core::CostTable::asic_hw(), move || {
        use scperf_core::{GArr, G};
        let mut synth_hist = GArr::<i32>::zeroed(vocoder::ORDER);
        let mut deemph = G::raw(0_i32);
        let mut chk = G::raw(0_i32);
        let aq = GArr::from_vec(aq);
        let exc = GArr::from_vec(exc);
        let _ = vocoder::stages::post_annotated(&mut synth_hist, &mut deemph, &aq, &exc, &mut chk);
    });
    println!("\n[ablation] Post-Proc DFG: {} operation nodes", dfg.len());
    let mut group = c.benchmark_group("hls");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("list_schedule_postproc", |b| {
        b.iter(|| scperf_hls::schedule_list(&dfg, &scperf_hls::Allocation::uniform(2)).makespan)
    });
    group.bench_function("asap_postproc", |b| {
        b.iter(|| scperf_hls::schedule_asap(&dfg).makespan)
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_calibration_size,
    ablation_rtos,
    ablation_iss_models,
    ablation_hls
);
criterion_main!(benches);
