//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * estimation accuracy vs calibration-set size (how many probes are
//!   needed before Table 1 errors stabilize),
//! * RTOS cost on/off (its share of the vocoder's simulated time),
//! * ISS cache model on/off (the "unavoidable" cache error of §1),
//! * functional vs pipelined ISS timing model cost,
//! * HLS scheduling cost on the recorded Post-Proc DFG.
//!
//! These are wall-clock benches plus printed accuracy summaries; run with
//! `cargo bench -p scperf-bench --bench ablations`.

use scperf_bench::microbench::{run_group, Case};
use scperf_bench::{calibration, harness};
use scperf_core::{Mode, PerfModel, Platform};
use scperf_kernel::{Simulator, Time};
use scperf_workloads::{probes::probes, table1_cases, vocoder};

/// Accuracy vs calibration-set size (printed once; benches the full fit).
fn ablation_calibration_size() {
    let all = probes();
    println!("\n[ablation] Table-1 max error vs number of calibration probes:");
    for n in [4, 6, 8, 10, all.len()] {
        let cal = calibration::calibrate_with(&all[..n]);
        let max_err = table1_cases()
            .into_iter()
            .map(|case| {
                let est = harness::estimate(&cal.table, case.annotated);
                let (_, stats) = case.run_iss();
                harness::pct_error(est.cycles, stats.cycles as f64)
            })
            .fold(0.0_f64, f64::max);
        println!(
            "  {n:>2} probes -> max error {max_err:6.2}%  (R^2 {:.4})",
            cal.r_squared
        );
    }
    run_group(
        "ablation",
        &[Case::new("full_calibration", || {
            std::hint::black_box(calibration::calibrate());
        })],
    );
}

/// RTOS overhead share: vocoder simulated end time with and without the
/// per-node RTOS cost.
fn ablation_rtos() {
    let table = calibration::calibrate().table;
    let run = move |rtos: f64| -> Time {
        let mut platform = Platform::new();
        let cpu = platform.sequential("cpu0", harness::CLOCK, table.clone(), rtos);
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let _ = vocoder::pipeline::build(
            &mut sim,
            &model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            4,
        );
        sim.run().expect("runs").end_time
    };
    let with_rtos = run(harness::RTOS_CYCLES);
    let without = run(0.0);
    println!(
        "\n[ablation] vocoder (4 frames): simulated end {} with RTOS cost, {} without \
         ({:.2}% RTOS share)",
        with_rtos,
        without,
        (with_rtos.as_ns_f64() - without.as_ns_f64()) / with_rtos.as_ns_f64() * 100.0
    );
    run_group(
        "ablation",
        &[Case::new("vocoder_strict_timed_4f", move || {
            std::hint::black_box(run(harness::RTOS_CYCLES));
        })],
    );
}

/// ISS model ablation: functional cost model vs cycle-stepped pipeline,
/// caches on/off, on the FIR benchmark.
fn ablation_iss_models() {
    let case = &table1_cases()[0]; // FIR
    let compiled = scperf_iss::minic::compile(&case.minic).expect("compiles");
    {
        let mut plainm = scperf_iss::Machine::new(1 << 22);
        plainm.load(&compiled.program);
        let functional = plainm.run(1_000_000_000).expect("runs");
        let mut pipem = scperf_workloads::case::reference_machine();
        pipem.load(&compiled.program);
        let pipelined = pipem.run_pipelined(8_000_000_000).expect("runs");
        println!(
            "\n[ablation] FIR on the ISS: functional model {} cycles, pipelined+caches {} cycles \
             ({} icache / {} dcache misses)",
            functional.cycles, pipelined.cycles, pipelined.icache_misses, pipelined.dcache_misses
        );
    }
    let c1 = compiled.clone();
    let c2 = compiled;
    run_group(
        "iss_model",
        &[
            Case::new("functional", move || {
                let mut m = scperf_iss::Machine::new(1 << 22);
                m.load(&c1.program);
                std::hint::black_box(m.run(1_000_000_000).expect("runs").cycles);
            }),
            Case::new("pipelined_cached", move || {
                let mut m = scperf_workloads::case::reference_machine();
                m.load(&c2.program);
                std::hint::black_box(m.run_pipelined(8_000_000_000).expect("runs").cycles);
            }),
        ],
    );
}

/// HLS scheduling cost on the recorded Post-Proc DFG (Table 4's segment).
fn ablation_hls() {
    let trace = vocoder::run_reference(2);
    let aq = trace.aq[0].clone();
    let exc = trace.exc[0].clone();
    let (dfg, _, _) = harness::record_hw_dfg(scperf_core::CostTable::asic_hw(), move || {
        use scperf_core::{GArr, G};
        let mut synth_hist = GArr::<i32>::zeroed(vocoder::ORDER);
        let mut deemph = G::raw(0_i32);
        let mut chk = G::raw(0_i32);
        let aq = GArr::from_vec(aq);
        let exc = GArr::from_vec(exc);
        let _ = vocoder::stages::post_annotated(&mut synth_hist, &mut deemph, &aq, &exc, &mut chk);
    });
    println!("\n[ablation] Post-Proc DFG: {} operation nodes", dfg.len());
    let d1 = dfg.clone();
    let d2 = dfg;
    run_group(
        "hls",
        &[
            Case::new("list_schedule_postproc", move || {
                std::hint::black_box(
                    scperf_hls::schedule_list(&d1, &scperf_hls::Allocation::uniform(2)).makespan,
                );
            }),
            Case::new("asap_postproc", move || {
                std::hint::black_box(scperf_hls::schedule_asap(&d2).makespan);
            }),
        ],
    );
}

/// DSE segment-cost cache on/off: wall time of a mapping-sweep subset
/// with and without memoized traces, plus the cache hit rate.
fn ablation_dse_cache() {
    use scperf_bench::dse::sweep::{sweep, SweepConfig};
    let table = calibration::calibrate().table;
    let config = SweepConfig {
        table,
        nframes: 1,
        jobs: 1,
        kernel_jobs: 1,
        use_cache: true,
        limit: Some(27),
        legacy_charging: false,
        programs_in: None,
    };
    let cached = sweep(&config);
    let uncached = sweep(&SweepConfig {
        use_cache: false,
        ..config.clone()
    });
    assert_eq!(
        cached.points, uncached.points,
        "cache must not change results"
    );
    println!(
        "\n[ablation] DSE sweep ({} points): cache hit rate {:.1}% over {} lookups, \
         {} recorded traces; results identical with cache off",
        cached.points.len(),
        cached.cache.hit_rate() * 100.0,
        cached.cache.hits + cached.cache.misses,
        cached.cache.entries,
    );
    let c1 = config.clone();
    let c2 = SweepConfig {
        use_cache: false,
        ..config
    };
    run_group(
        "dse",
        &[
            Case::new("sweep27_cached", move || {
                std::hint::black_box(sweep(&c1).frontier.len());
            }),
            Case::new("sweep27_uncached", move || {
                std::hint::black_box(sweep(&c2).frontier.len());
            }),
        ],
    );
}

fn main() {
    ablation_calibration_size();
    ablation_rtos();
    ablation_iss_models();
    ablation_hls();
    ablation_dse_cache();
}
