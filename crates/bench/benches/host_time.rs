//! Criterion benches for the host-simulation-time columns of Tables 1
//! and 3: the same benchmark simulated (a) plain/untimed, (b) with the
//! estimation library in strict-timed mode, and (c) on the reference ISS.
//!
//! Run with `cargo bench -p scperf-bench --bench host_time`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scperf_bench::harness;
use scperf_core::{Mode, PerfModel};
use scperf_kernel::Simulator;
use scperf_workloads::{table1_cases, vocoder};

fn bench_table1_paths(c: &mut Criterion) {
    let table = scperf_bench::calibration::calibrate().table;
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for case in table1_cases() {
        let plain = case.plain;
        group.bench_with_input(BenchmarkId::new("plain_sim", case.name), &(), |b, ()| {
            b.iter(|| harness::time_plain(plain).1)
        });
        let annotated = case.annotated;
        let t = table.clone();
        group.bench_with_input(BenchmarkId::new("library_sim", case.name), &(), |b, ()| {
            b.iter(|| harness::time_strict_timed(&t, annotated).2)
        });
        // Compile once; bench only the ISS execution.
        let compiled = scperf_iss::minic::compile(&case.minic).expect("compiles");
        group.bench_with_input(BenchmarkId::new("iss", case.name), &(), |b, ()| {
            b.iter(|| {
                let mut m = scperf_workloads::case::reference_machine();
                m.load(&compiled.program);
                m.run_pipelined(8_000_000_000).expect("runs").cycles
            })
        });
    }
    group.finish();
}

fn bench_vocoder_paths(c: &mut Criterion) {
    let table = scperf_bench::calibration::calibrate().table;
    let nframes = 4;
    let mut group = c.benchmark_group("vocoder");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("plain_sim", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let out = vocoder::pipeline::build_plain(&mut sim, nframes);
            sim.run().expect("runs");
            let v = out.lock().expect("finished");
            v
        })
    });
    group.bench_function("library_sim_strict", |b| {
        b.iter(|| {
            let (platform, cpu) = harness::cpu_platform(table.clone());
            let mut sim = Simulator::new();
            let model = PerfModel::new(platform, Mode::StrictTimed);
            let handles = vocoder::pipeline::build(
                &mut sim,
                &model,
                vocoder::pipeline::VocoderMapping::all_on(cpu),
                nframes,
            );
            sim.run().expect("runs");
            let v = handles.output.lock().expect("finished");
            v
        })
    });
    group.bench_function("library_sim_untimed", |b| {
        b.iter(|| {
            let (platform, cpu) = harness::cpu_platform(table.clone());
            let mut sim = Simulator::new();
            let model = PerfModel::new(platform, Mode::EstimateOnly);
            let handles = vocoder::pipeline::build(
                &mut sim,
                &model,
                vocoder::pipeline::VocoderMapping::all_on(cpu),
                nframes,
            );
            sim.run().expect("runs");
            let v = handles.output.lock().expect("finished");
            v
        })
    });
    group.finish();
}

fn bench_kernel_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("fifo_10k_items", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let f = sim.fifo::<u64>("f", 16);
            let (tx, rx) = (f.clone(), f);
            sim.spawn("producer", move |ctx| {
                for i in 0..10_000_u64 {
                    tx.write(ctx, i);
                }
            });
            sim.spawn("consumer", move |ctx| {
                for _ in 0..10_000_u64 {
                    let _ = rx.read(ctx);
                }
            });
            sim.run().expect("runs").deltas
        })
    });
    group.bench_function("timed_waits_10k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            sim.spawn("p", |ctx| {
                for _ in 0..10_000 {
                    ctx.wait(scperf_kernel::Time::ns(5));
                }
            });
            sim.run().expect("runs").end_time
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_paths,
    bench_vocoder_paths,
    bench_kernel_primitives
);
criterion_main!(benches);
