//! Wall-clock benches for the host-simulation-time columns of Tables 1
//! and 3: the same benchmark simulated (a) plain/untimed, (b) with the
//! estimation library in strict-timed mode, and (c) on the reference ISS.
//!
//! Run with `cargo bench -p scperf-bench --bench host_time`.

use scperf_bench::harness;
use scperf_bench::microbench::{run_group, Case};
use scperf_core::{Mode, PerfModel};
use scperf_kernel::Simulator;
use scperf_workloads::{table1_cases, vocoder};

fn bench_table1_paths() {
    let table = scperf_bench::calibration::calibrate().table;
    for case in table1_cases() {
        let plain = case.plain;
        let annotated = case.annotated;
        let t = table.clone();
        // Compile once; bench only the ISS execution.
        let compiled = scperf_iss::minic::compile(&case.minic).expect("compiles");
        let cases = vec![
            Case::new("plain_sim", move || {
                std::hint::black_box(harness::time_plain(plain).1);
            }),
            Case::new("library_sim", move || {
                std::hint::black_box(harness::time_strict_timed(&t, annotated).2);
            }),
            Case::new("iss", move || {
                let mut m = scperf_workloads::case::reference_machine();
                m.load(&compiled.program);
                std::hint::black_box(m.run_pipelined(8_000_000_000).expect("runs").cycles);
            }),
        ];
        run_group(&format!("table1/{}", case.name), &cases);
    }
}

fn bench_vocoder_paths() {
    let table = scperf_bench::calibration::calibrate().table;
    let nframes = 4;
    let t1 = table.clone();
    let t2 = table;
    let cases = vec![
        Case::new("plain_sim", move || {
            let mut sim = Simulator::new();
            let out = vocoder::pipeline::build_plain(&mut sim, nframes);
            sim.run().expect("runs");
            let v = *out.lock();
            std::hint::black_box(v.expect("finished"));
        }),
        Case::new("library_sim_strict", move || {
            let (platform, cpu) = harness::cpu_platform(t1.clone());
            let mut sim = Simulator::new();
            let model = PerfModel::new(platform, Mode::StrictTimed);
            let handles = vocoder::pipeline::build(
                &mut sim,
                &model,
                vocoder::pipeline::VocoderMapping::all_on(cpu),
                nframes,
            );
            sim.run().expect("runs");
            let v = *handles.output.lock();
            std::hint::black_box(v.expect("finished"));
        }),
        Case::new("library_sim_untimed", move || {
            let (platform, cpu) = harness::cpu_platform(t2.clone());
            let mut sim = Simulator::new();
            let model = PerfModel::new(platform, Mode::EstimateOnly);
            let handles = vocoder::pipeline::build(
                &mut sim,
                &model,
                vocoder::pipeline::VocoderMapping::all_on(cpu),
                nframes,
            );
            sim.run().expect("runs");
            let v = *handles.output.lock();
            std::hint::black_box(v.expect("finished"));
        }),
    ];
    run_group(&format!("vocoder ({nframes} frames)"), &cases);
}

fn bench_kernel_primitives() {
    let cases = vec![
        Case::new("fifo_10k_items", || {
            let mut sim = Simulator::new();
            let f = sim.fifo::<u64>("f", 16);
            let (tx, rx) = (f.clone(), f);
            sim.spawn("producer", move |ctx| {
                for i in 0..10_000_u64 {
                    tx.write(ctx, i);
                }
            });
            sim.spawn("consumer", move |ctx| {
                for _ in 0..10_000_u64 {
                    let _ = rx.read(ctx);
                }
            });
            std::hint::black_box(sim.run().expect("runs").deltas);
        }),
        Case::new("timed_waits_10k", || {
            let mut sim = Simulator::new();
            sim.spawn("p", |ctx| {
                for _ in 0..10_000 {
                    ctx.wait(scperf_kernel::Time::ns(5));
                }
            });
            std::hint::black_box(sim.run().expect("runs").end_time);
        }),
    ];
    run_group("kernel", &cases);
}

fn main() {
    bench_table1_paths();
    bench_vocoder_paths();
    bench_kernel_primitives();
}
