//! Trace-overhead microbenchmark: what does observability cost?
//!
//! Runs the same FIFO producer/consumer workload in three configurations
//! and reports host time per simulated channel operation:
//!
//! 1. **off** — tracing disabled (the `AtomicBool` fast path; the record
//!    path must not allocate at all),
//! 2. **ring** — structured events into a bounded [`MemorySink`] ring,
//! 3. **legacy** — a sink that eagerly formats every event into the old
//!    `String`-per-field [`TraceRecord`] shape, emulating the pre-obs
//!    hot path for comparison.
//!
//! Run with `cargo bench -p scperf-bench --bench trace_overhead`.

use scperf_bench::microbench::{run_group, Case};
use scperf_kernel::{Simulator, Time, TraceRecord};
use scperf_obs::{Interner, Sym, TraceEvent, TraceSink};

const ITEMS: u32 = 10_000;

/// Emulates the legacy hot path: every record eagerly formats process,
/// label and detail into owned `String`s.
#[derive(Debug, Default)]
struct LegacyStringSink {
    records: Vec<TraceRecord>,
}

impl TraceSink for LegacyStringSink {
    fn record(&mut self, interner: &Interner, event: &TraceEvent) {
        // Build the same strings the old `record_trace` built. A real
        // process-name lookup is not available from the sink, so use the
        // pid's decimal form — same allocation profile.
        let detail = if event.chan == Sym::NONE {
            event.payload.to_string()
        } else {
            format!("{}={}", interner.resolve(event.chan), event.payload)
        };
        self.records.push(TraceRecord {
            time: Time::ps(event.time_ps),
            delta: event.delta,
            process: event.pid.to_string(),
            label: interner.resolve(event.label).to_string(),
            detail,
        });
    }

    fn flush(&mut self) {}
}

fn fifo_workload(configure: impl FnOnce(&mut Simulator)) -> u64 {
    let mut sim = Simulator::new();
    configure(&mut sim);
    let f = sim.fifo::<u32>("ch", 16);
    let (w, r) = (f.clone(), f);
    sim.spawn("producer", move |ctx| {
        for i in 0..ITEMS {
            w.write(ctx, i);
        }
    });
    sim.spawn("consumer", move |ctx| {
        let mut acc = 0_u64;
        for _ in 0..ITEMS {
            acc = acc.wrapping_add(u64::from(r.read(ctx)));
        }
        std::hint::black_box(acc);
    });
    let summary = sim.run().expect("simulation runs");
    summary.deltas
}

fn main() {
    let cases: Vec<Case> = vec![
        Case::new("tracing_off", || {
            std::hint::black_box(fifo_workload(|_| {}));
        }),
        Case::new("tracing_ring", || {
            std::hint::black_box(fifo_workload(|sim| {
                sim.enable_tracing_ring(4096);
            }));
        }),
        Case::new("tracing_unbounded", || {
            std::hint::black_box(fifo_workload(|sim| sim.enable_tracing()));
        }),
        Case::new("tracing_legacy_strings", || {
            std::hint::black_box(fifo_workload(|sim| {
                sim.set_trace_sink(Box::new(LegacyStringSink::default()));
            }));
        }),
    ];
    run_group(&format!("trace_overhead ({ITEMS} fifo items)"), &cases);

    // The workload above is dominated by thread handoffs (~µs each), so
    // the per-record cost drowns in scheduling noise. Measure the record
    // path itself too: 1M events straight into each sink.
    let mut interner = Interner::new();
    let label = interner.intern("fifo.write");
    let chan = interner.intern("ch");
    let ev = TraceEvent {
        time_ps: 1_000,
        delta: 1,
        pid: 0,
        label,
        chan,
        payload: scperf_obs::Payload::UInt(7),
    };
    const RECORDS: usize = 1_000_000;
    let (i1, e1) = (interner.clone(), ev.clone());
    let (i2, e2) = (interner, ev);
    let direct: Vec<Case> = vec![
        Case::new("memory_sink_compact", move || {
            let mut sink = scperf_obs::MemorySink::new();
            for _ in 0..RECORDS {
                sink.record(&i1, &e1);
            }
            std::hint::black_box(sink.len());
        }),
        Case::new("legacy_string_sink", move || {
            let mut sink = LegacyStringSink::default();
            for _ in 0..RECORDS {
                sink.record(&i2, &e2);
            }
            std::hint::black_box(sink.records.len());
        }),
    ];
    run_group(&format!("record path ({RECORDS} events)"), &direct);

    // Sanity: the ring sink actually bounds memory.
    let mut sim = Simulator::new();
    sim.enable_tracing_ring(1024);
    let f = sim.fifo::<u32>("ch", 16);
    let (w, r) = (f.clone(), f);
    sim.spawn("producer", move |ctx| {
        for i in 0..ITEMS {
            w.write(ctx, i);
        }
    });
    sim.spawn("consumer", move |ctx| {
        for _ in 0..ITEMS {
            std::hint::black_box(r.read(ctx));
        }
    });
    sim.run().expect("simulation runs");
    let table = sim.take_events();
    println!(
        "ring check: kept {} events, dropped {} (bound 1024)",
        table.len(),
        table.dropped
    );
}
