//! Shared experiment plumbing: the standard platform, single-process
//! estimation runs, host-time measurement and DFG recording.

use std::time::{Duration, Instant};

use scperf_core::{CostTable, Dfg, Mode, OpCounts, PerfModel, Platform, ResourceId};
use scperf_kernel::{Simulator, Time};

/// The experimental clock: 100 MHz, as a period.
pub const CLOCK: Time = Time::ns(10);

/// RTOS overhead per channel access / wait, in CPU cycles.
pub const RTOS_CYCLES: f64 = 150.0;

/// Builds the standard single-CPU platform with the given cost table.
pub fn cpu_platform(table: CostTable) -> (Platform, ResourceId) {
    let mut p = Platform::new();
    let cpu = p.sequential("cpu0", CLOCK, table, RTOS_CYCLES);
    (p, cpu)
}

/// Result of a single-process estimation run.
#[derive(Debug, Clone)]
pub struct EstimateRun {
    /// Estimated computation cycles (excluding RTOS overhead).
    pub cycles: f64,
    /// Estimated computation time on the target.
    pub time: Time,
    /// Source-level operation counts.
    pub counts: OpCounts,
    /// The function's return value (checksum).
    pub value: i32,
}

/// Runs `body` as the only analyzed process on a CPU with `table`,
/// collecting its estimate without back-annotation.
pub fn estimate(table: &CostTable, body: fn() -> i32) -> EstimateRun {
    let (platform, cpu) = cpu_platform(table.clone());
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::EstimateOnly);
    let value = std::sync::Arc::new(scperf_sync::Mutex::new(0_i32));
    {
        let value = std::sync::Arc::clone(&value);
        model.spawn(&mut sim, "bench", cpu, move |_ctx| {
            *value.lock() = body();
        });
    }
    sim.run().expect("estimation run");
    let report = model.report();
    let p = report.process("bench").expect("process reported");
    let result = *value.lock();
    EstimateRun {
        cycles: p.total_cycles,
        time: p.total_time,
        counts: p.counts,
        value: result,
    }
}

/// Host wall-clock time of a strict-timed single-process simulation of
/// `body` (the "library execution time" column of Table 1). Returns
/// `(host_time, simulated_end_time, value)`.
pub fn time_strict_timed(table: &CostTable, body: fn() -> i32) -> (Duration, Time, i32) {
    let (platform, cpu) = cpu_platform(table.clone());
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let value = std::sync::Arc::new(scperf_sync::Mutex::new(0_i32));
    {
        let value = std::sync::Arc::clone(&value);
        model.spawn(&mut sim, "bench", cpu, move |_ctx| {
            *value.lock() = body();
        });
    }
    let start = Instant::now();
    let summary = sim.run().expect("strict-timed run");
    let host = start.elapsed();
    let result = *value.lock();
    (host, summary.end_time, result)
}

/// Host wall-clock time of the plain, un-annotated simulation of `body`
/// (the "original SystemC specification" baseline). Returns
/// `(host_time, value)`.
pub fn time_plain(body: fn() -> i32) -> (Duration, i32) {
    let mut sim = Simulator::new();
    let value = std::sync::Arc::new(scperf_sync::Mutex::new(0_i32));
    {
        let value = std::sync::Arc::clone(&value);
        sim.spawn("bench", move |_ctx| {
            *value.lock() = body();
        });
    }
    let start = Instant::now();
    sim.run().expect("plain run");
    let host = start.elapsed();
    let result = *value.lock();
    (host, result)
}

/// Host wall-clock time of an execution on the reference ISS (the
/// cycle-stepped pipeline model with 4 KiB I/D caches). Compilation is not
/// timed. Returns `(host_time, cycles, checksum)`.
pub fn time_iss(minic_src: &str) -> (Duration, u64, i32) {
    let compiled = scperf_iss::minic::compile(minic_src).expect("benchmark compiles");
    let mut m = scperf_workloads::case::reference_machine();
    m.load(&compiled.program);
    let start = Instant::now();
    let stats = m.run_pipelined(8_000_000_000).expect("ISS run");
    let host = start.elapsed();
    (host, stats.cycles, m.read_word(compiled.global("result")))
}

/// Runs `body` as the only process on a parallel (HW) resource with DFG
/// recording and returns the recorded dataflow graph of its
/// entry-to-exit segment, plus the (T_min, T_max) the estimator tracked.
pub fn record_hw_dfg<F>(table: CostTable, body: F) -> (Dfg, f64, f64)
where
    F: FnOnce() + Send + 'static,
{
    let mut platform = Platform::new();
    let hw = platform.parallel("hw", CLOCK, table, 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::EstimateOnly);
    model.record_dfgs();
    model.spawn(&mut sim, "hw_seg", hw, move |_ctx| body());
    sim.run().expect("hw recording run");
    let report = model.report();
    let seg = &report.process("hw_seg").expect("hw process").segments[0];
    let (t_min, t_max) = (seg.stats.last_t_min, seg.stats.last_t_max);
    let dfgs = model.dfgs("hw_seg");
    let dfg = dfgs
        .into_iter()
        .next()
        .map(|(_, d)| d)
        .expect("dfg recorded");
    (dfg, t_min, t_max)
}

/// Repeats a host-time measurement and keeps the minimum (noise floor).
pub fn min_time<R>(reps: usize, mut f: impl FnMut() -> (Duration, R)) -> (Duration, R) {
    let (mut best, mut result) = f();
    for _ in 1..reps {
        let (t, r) = f();
        if t < best {
            best = t;
            result = r;
        }
    }
    (best, result)
}

/// Percentage error of `estimate` relative to `reference`.
pub fn pct_error(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (estimate - reference).abs() / reference * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> i32 {
        let mut s = scperf_core::g_i32(0);
        for i in 0..100 {
            s = s + scperf_core::G::raw(i);
        }
        s.get()
    }

    #[test]
    fn estimate_collects_cycles_and_value() {
        let run = estimate(&CostTable::risc_sw(), tiny_bench);
        assert_eq!(run.value, 4950);
        assert!(run.cycles > 0.0);
        assert_eq!(run.counts.get(scperf_core::Op::Add), 100);
    }

    #[test]
    fn strict_timed_advances_simulation() {
        let (host, end, value) = time_strict_timed(&CostTable::risc_sw(), tiny_bench);
        assert_eq!(value, 4950);
        assert!(end > Time::ZERO);
        assert!(host > Duration::ZERO);
    }

    #[test]
    fn plain_run_is_untimed() {
        let (_, value) = time_plain(tiny_bench);
        assert_eq!(value, 4950);
    }

    #[test]
    fn record_dfg_from_hw_body() {
        let (dfg, t_min, t_max) = record_hw_dfg(CostTable::asic_hw(), || {
            let a = scperf_core::G::raw(1_i64);
            let b = a + a;
            let _ = b * b;
        });
        assert_eq!(dfg.len(), 2);
        assert!(t_min <= t_max);
        assert_eq!(dfg.critical_path() as f64, t_min);
        assert_eq!(dfg.sequential_cycles() as f64, t_max);
    }

    #[test]
    fn pct_error_basics() {
        assert_eq!(pct_error(110.0, 100.0), 10.0);
        assert_eq!(pct_error(90.0, 100.0), 10.0);
        assert_eq!(pct_error(5.0, 0.0), 0.0);
    }
}
