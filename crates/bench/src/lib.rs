//! # scperf-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5).
//! Each artifact has a binary:
//!
//! | Artifact | Binary |
//! |----------|--------|
//! | Table 1 (SW benchmarks vs ISS)           | `cargo run -p scperf-bench --release --bin table1` |
//! | Table 2 (HW FIR/Euler vs synthesis)      | `cargo run -p scperf-bench --release --bin table2` |
//! | Table 3 (vocoder processes vs ISS)       | `cargo run -p scperf-bench --release --bin table3` |
//! | Table 4 (vocoder post-proc on HW)        | `cargo run -p scperf-bench --release --bin table4` |
//! | Figures 1 & 2 (segmentation + graph)     | `cargo run -p scperf-bench --release --bin fig1_2` |
//! | Figure 3 (worked delay calculation)      | `cargo run -p scperf-bench --release --bin fig3` |
//! | Figure 4 (area/time solution space)      | `cargo run -p scperf-bench --release --bin fig4` |
//! | Figure 5 (untimed vs strict-timed)       | `cargo run -p scperf-bench --release --bin fig5` |
//! | Everything                               | `cargo run -p scperf-bench --release --bin all_experiments` |
//! | Mapping design-space exploration (DSE)   | `cargo run -p scperf-bench --release --bin dse` |
//! | Observability dump (`BENCH_obs.json` + Chrome trace) | `cargo run -p scperf-bench --release --bin obs_bench` |
//!
//! Wall-clock benches for the host-time columns live in `benches/`
//! (plain `harness = false` mains on [`microbench`]): `host_time`,
//! `ablations` and `trace_overhead`.

#![warn(missing_docs)]

pub mod calibration;
pub mod figures;
pub mod harness;
pub mod microbench;
pub mod tables;

/// The design-space exploration engine, promoted to its own crate
/// (`scperf-dse`) in PR 2; re-exported here so the experiment binaries
/// and older call sites keep working.
pub use scperf_dse as dse;
