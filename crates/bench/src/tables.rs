//! The four experiment tables of §5.

use std::fmt;

use scperf_core::{CostTable, Dfg, Mode, PerfModel};
use scperf_hls::{chained_critical_path, chained_sequential};
use scperf_kernel::{Simulator, Time};
use scperf_workloads::vocoder;

use crate::calibration::Calibration;
use crate::harness::{self, CLOCK};

// ================================================================ Table 1 ==

/// One row of Table 1 (SW estimation results for sequential benchmarks).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Library-estimated target cycles.
    pub lib_cycles: f64,
    /// Library-estimated target time (µs).
    pub lib_us: f64,
    /// ISS reference cycles.
    pub iss_cycles: u64,
    /// ISS reference time (µs).
    pub iss_us: f64,
    /// Estimation error (%).
    pub err_pct: f64,
    /// Host time of the plain (untimed) simulation (ms).
    pub host_plain_ms: f64,
    /// Host time of the library (strict-timed) simulation (ms).
    pub host_lib_ms: f64,
    /// Host time of the ISS execution (ms).
    pub host_iss_ms: f64,
    /// Slowdown of the library simulation w.r.t. the plain one.
    pub overhead: f64,
    /// Speedup of the library simulation w.r.t. the ISS.
    pub gain: f64,
}

/// Table 1: runs the six sequential benchmarks through all three paths.
///
/// `reps` repeats each host-time measurement, keeping the minimum.
pub fn table1(cal: &Calibration, reps: usize) -> Vec<Table1Row> {
    scperf_workloads::table1_cases()
        .into_iter()
        .map(|case| {
            let est = harness::estimate(&cal.table, case.annotated);
            let (host_iss, (iss_cycles, iss_value)) = harness::min_time(reps, || {
                let (t, c, v) = harness::time_iss(&case.minic);
                (t, (c, v))
            });
            assert_eq!(est.value, iss_value, "{}: forms disagree", case.name);
            let (host_plain, plain_value) =
                harness::min_time(reps, || harness::time_plain(case.plain));
            assert_eq!(est.value, plain_value, "{}: plain disagrees", case.name);
            let (host_lib, _) = harness::min_time(reps, || {
                let (t, end, v) = harness::time_strict_timed(&cal.table, case.annotated);
                (t, (end, v))
            });
            let clock_us = CLOCK.as_ns_f64() / 1000.0;
            Table1Row {
                name: case.name,
                lib_cycles: est.cycles,
                lib_us: est.cycles * clock_us,
                iss_cycles,
                iss_us: iss_cycles as f64 * clock_us,
                err_pct: harness::pct_error(est.cycles, iss_cycles as f64),
                host_plain_ms: host_plain.as_secs_f64() * 1e3,
                host_lib_ms: host_lib.as_secs_f64() * 1e3,
                host_iss_ms: host_iss.as_secs_f64() * 1e3,
                overhead: host_lib.as_secs_f64() / host_plain.as_secs_f64().max(1e-9),
                gain: host_iss.as_secs_f64() / host_lib.as_secs_f64().max(1e-9),
            }
        })
        .collect()
}

/// Renders Table 1 in the paper's layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1. SW estimation results for sequential benchmarks (100 MHz target)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12} {:>7} | {:>10} {:>10} {:>10} {:>9} {:>9}",
        "Benchmark",
        "Lib est us",
        "ISS us",
        "ISS cyc",
        "Err %",
        "plain ms",
        "lib ms",
        "ISS ms",
        "overhead",
        "gain"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>12.2} {:>12.2} {:>12} {:>7.2} | {:>10.3} {:>10.3} {:>10.3} {:>8.1}x {:>8.1}x",
            r.name,
            r.lib_us,
            r.iss_us,
            r.iss_cycles,
            r.err_pct,
            r.host_plain_ms,
            r.host_lib_ms,
            r.host_iss_ms,
            r.overhead,
            r.gain
        );
    }
    out
}

// ================================================================ Table 2 ==

/// One row pair of Table 2 / Table 4 (HW estimation results).
#[derive(Debug, Clone)]
pub struct HwRow {
    /// Benchmark name.
    pub name: String,
    /// Real worst-case time from the synthesis scheduler (ns).
    pub wc_real_ns: f64,
    /// Estimated worst-case time (ns).
    pub wc_est_ns: f64,
    /// Worst-case error (%).
    pub wc_err_pct: f64,
    /// Real best-case time from the synthesis scheduler (ns).
    pub bc_real_ns: f64,
    /// Estimated best-case time (ns).
    pub bc_est_ns: f64,
    /// Best-case error (%).
    pub bc_err_pct: f64,
}

/// The "real" synthesis references, playing the role of the paper's
/// Concentric results. A behavioral synthesis tool *chains* operations —
/// several dependent operations share a clock cycle when their raw
/// combinational delays fit — whereas the library's model rounds every
/// operation up to a whole number of cycles (§3). The references therefore
/// schedule the same DFG in continuous time with the raw delay table:
/// worst case = fully sequential chained datapath, best case = chained
/// critical path (time-constrained synthesis).
pub fn hw_references(dfg: &Dfg) -> (u64, u64) {
    let raw = CostTable::asic_hw();
    let wc = chained_sequential(dfg, &raw).ceil() as u64;
    let bc = chained_critical_path(dfg, &raw).ceil() as u64;
    (wc, bc)
}

/// Builds one HW comparison row from a recorded DFG and the estimator's
/// (T_min, T_max).
pub fn hw_row(name: impl Into<String>, dfg: &Dfg, t_min: f64, t_max: f64) -> HwRow {
    let clock_ns = CLOCK.as_ns_f64();
    let (wc_real, bc_real) = hw_references(dfg);
    let wc_real_ns = wc_real as f64 * clock_ns;
    let bc_real_ns = bc_real as f64 * clock_ns;
    let wc_est_ns = t_max * clock_ns;
    let bc_est_ns = t_min * clock_ns;
    HwRow {
        name: name.into(),
        wc_real_ns,
        wc_est_ns,
        wc_err_pct: harness::pct_error(wc_est_ns, wc_real_ns),
        bc_real_ns,
        bc_est_ns,
        bc_err_pct: harness::pct_error(bc_est_ns, bc_real_ns),
    }
}

/// Table 2: HW estimation for the FIR sample kernel and the Euler step.
pub fn table2() -> Vec<HwRow> {
    let (fir_dfg, fir_tmin, fir_tmax) = harness::record_hw_dfg(CostTable::asic_hw(), || {
        let _ = scperf_workloads::fir::annotated_one_sample(7);
    });
    let (euler_dfg, eu_tmin, eu_tmax) = harness::record_hw_dfg(CostTable::asic_hw(), || {
        use scperf_core::G;
        let (x, v) =
            scperf_workloads::euler::step_annotated(G::raw(0.4), G::raw(-0.1), G::raw(2.25));
        let _ = (x, v);
    });
    vec![
        hw_row("FIR", &fir_dfg, fir_tmin, fir_tmax),
        hw_row("Euler", &euler_dfg, eu_tmin, eu_tmax),
    ]
}

/// Renders Table 2 / Table 4 in the paper's layout (one WC and one BC row
/// per benchmark).
pub fn format_hw_table(title: &str, rows: &[HwRow]) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<18} {:>16} {:>18} {:>8}",
        "Benchmark", "Real exec (ns)", "Estimated (ns)", "Err %"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>16.0} {:>18.0} {:>8.2}",
            format!("{} (WC)", r.name),
            r.wc_real_ns,
            r.wc_est_ns,
            r.wc_err_pct
        );
        let _ = writeln!(
            out,
            "{:<18} {:>16.0} {:>18.0} {:>8.2}",
            format!("{} (BC)", r.name),
            r.bc_real_ns,
            r.bc_est_ns,
            r.bc_err_pct
        );
    }
    out
}

// ================================================================ Table 3 ==

/// One row of Table 3 (vocoder process estimation).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Process name.
    pub name: &'static str,
    /// Library-estimated target cycles.
    pub lib_cycles: f64,
    /// Library-estimated target time (ms).
    pub lib_ms: f64,
    /// ISS reference cycles.
    pub iss_cycles: u64,
    /// ISS reference time (ms).
    pub iss_ms: f64,
    /// Estimation error (%).
    pub err_pct: f64,
}

/// The complete Table 3 result.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Per-process rows, in pipeline order.
    pub rows: Vec<Table3Row>,
    /// Frames simulated.
    pub nframes: usize,
    /// Host time of the plain pipeline simulation (ms).
    pub host_plain_ms: f64,
    /// Host time of the strict-timed pipeline simulation (ms).
    pub host_lib_ms: f64,
    /// Host time of the five ISS stage runs combined (ms).
    pub host_iss_ms: f64,
    /// Slowdown w.r.t. the plain simulation.
    pub overhead: f64,
    /// Speedup w.r.t. the ISS.
    pub gain: f64,
    /// End-to-end simulated time of the strict-timed run.
    pub sim_end: Time,
}

/// Table 3: the vocoder's five concurrent processes on one CPU.
pub fn table3(cal: &Calibration, nframes: usize) -> Table3 {
    let trace = vocoder::run_reference(nframes);

    // Strict-timed library run (also measures host time).
    let (platform, cpu) = harness::cpu_platform(cal.table.clone());
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let handles = vocoder::pipeline::build(
        &mut sim,
        &model,
        vocoder::pipeline::VocoderMapping::all_on(cpu),
        nframes,
    );
    let start = std::time::Instant::now();
    let summary = sim.run().expect("vocoder strict-timed run");
    let host_lib = start.elapsed();
    assert_eq!(
        handles.output.lock().expect("sink finished"),
        trace.checksums[4],
        "vocoder output mismatch"
    );
    let stage_chks = *handles.stages.lock();
    for (i, chk) in stage_chks.iter().enumerate() {
        assert_eq!(
            chk.expect("stage finished"),
            trace.checksums[i],
            "stage {i} checksum mismatch"
        );
    }
    let report = model.report();

    // Plain pipeline baseline.
    let mut plain_sim = Simulator::new();
    let plain_result = vocoder::pipeline::build_plain(&mut plain_sim, nframes);
    let start = std::time::Instant::now();
    plain_sim.run().expect("vocoder plain run");
    let host_plain = start.elapsed();
    assert_eq!(plain_result.lock().unwrap(), trace.checksums[4]);

    // Per-stage ISS references.
    let stage_programs = [
        vocoder::minic_gen::lsp(&trace),
        vocoder::minic_gen::lpc_int(&trace),
        vocoder::minic_gen::acb(&trace),
        vocoder::minic_gen::icb(&trace),
        vocoder::minic_gen::post(&trace),
    ];
    let clock_ms = CLOCK.as_ns_f64() / 1e6;
    let mut host_iss_total = std::time::Duration::ZERO;
    let mut rows = Vec::new();
    for (i, (name, src)) in vocoder::pipeline::STAGE_NAMES
        .iter()
        .zip(&stage_programs)
        .enumerate()
    {
        let (host, cycles, value) = harness::time_iss(src);
        assert_eq!(value, trace.checksums[i], "{name}: ISS checksum mismatch");
        host_iss_total += host;
        let p = report.process(name).expect("stage reported");
        rows.push(Table3Row {
            name,
            lib_cycles: p.total_cycles,
            lib_ms: p.total_cycles * clock_ms,
            iss_cycles: cycles,
            iss_ms: cycles as f64 * clock_ms,
            err_pct: harness::pct_error(p.total_cycles, cycles as f64),
        });
    }
    Table3 {
        rows,
        nframes,
        host_plain_ms: host_plain.as_secs_f64() * 1e3,
        host_lib_ms: host_lib.as_secs_f64() * 1e3,
        host_iss_ms: host_iss_total.as_secs_f64() * 1e3,
        overhead: host_lib.as_secs_f64() / host_plain.as_secs_f64().max(1e-9),
        gain: host_iss_total.as_secs_f64() / host_lib.as_secs_f64().max(1e-9),
        sim_end: summary.end_time,
    }
}

/// Renders Table 3 in the paper's layout.
pub fn format_table3(t: &Table3) -> String {
    use fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3. SW estimation results for the vocoder ({} frames, 100 MHz target)",
        t.nframes
    );
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12} {:>8}",
        "Process", "Lib est ms", "ISS ms", "ISS cyc", "Err %"
    );
    for r in &t.rows {
        let _ = writeln!(
            out,
            "{:<12} {:>12.3} {:>12.3} {:>12} {:>8.2}",
            r.name, r.lib_ms, r.iss_ms, r.iss_cycles, r.err_pct
        );
    }
    let _ = writeln!(
        out,
        "host: plain {:.2} ms, library {:.2} ms, ISS {:.2} ms — overhead {:.1}x, gain {:.1}x",
        t.host_plain_ms, t.host_lib_ms, t.host_iss_ms, t.overhead, t.gain
    );
    let _ = writeln!(out, "simulated end-to-end time: {}", t.sim_end);
    out
}

// ================================================================ Table 4 ==

/// Table 4: the vocoder post-processing function mapped to HW.
pub fn table4(nframes: usize) -> Vec<HwRow> {
    let trace = vocoder::run_reference(nframes);
    let aq = trace.aq[0].clone();
    let exc = trace.exc[0].clone();
    let (dfg, t_min, t_max) = harness::record_hw_dfg(CostTable::asic_hw(), move || {
        use scperf_core::{GArr, G};
        let mut synth_hist = GArr::<i32>::zeroed(vocoder::ORDER);
        let mut deemph = G::raw(0_i32);
        let mut chk = G::raw(0_i32);
        let aq = GArr::from_vec(aq);
        let exc = GArr::from_vec(exc);
        let _ = vocoder::stages::post_annotated(&mut synth_hist, &mut deemph, &aq, &exc, &mut chk);
    });
    vec![hw_row("Post Proc.", &dfg, t_min, t_max)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_have_expected_shape() {
        let rows = table2();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // WC is always slower than BC, in both real and estimated form.
            assert!(r.wc_real_ns >= r.bc_real_ns, "{}", r.name);
            assert!(r.wc_est_ns >= r.bc_est_ns, "{}", r.name);
            // Estimates bracket reality: T_max >= real WC is not guaranteed
            // in general, but errors must stay single/low-double digit.
            assert!(
                r.wc_err_pct < 20.0,
                "{} WC err {:.1}%",
                r.name,
                r.wc_err_pct
            );
            assert!(
                r.bc_err_pct < 20.0,
                "{} BC err {:.1}%",
                r.name,
                r.bc_err_pct
            );
        }
    }

    #[test]
    fn table4_postproc_hw_row() {
        let rows = table4(2);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.wc_real_ns > 0.0);
        assert!(r.wc_est_ns >= r.bc_est_ns);
        assert!(
            r.wc_err_pct < 20.0 && r.bc_err_pct < 20.0,
            "WC {:.1}% BC {:.1}%",
            r.wc_err_pct,
            r.bc_err_pct
        );
    }
}
