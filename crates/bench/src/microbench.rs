//! A minimal wall-clock microbenchmark harness (criterion-free).
//!
//! Each [`Case`] is a closure run `warmup + reps` times; the minimum
//! observed time is the headline number (host-time noise is strictly
//! additive, so the minimum is the best point estimate of the true
//! cost), with the mean printed alongside as a stability indicator.
//!
//! Set `SCPERF_BENCH_REPS` to change the repetition count (default 5).

use std::time::{Duration, Instant};

/// One named benchmark case.
pub struct Case {
    /// Display name.
    pub name: String,
    run: Box<dyn Fn()>,
}

impl Case {
    /// Wraps a closure as a named case.
    pub fn new(name: impl Into<String>, run: impl Fn() + 'static) -> Case {
        Case {
            name: name.into(),
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Case").field("name", &self.name).finish()
    }
}

/// The timing result of one case.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Case name.
    pub name: String,
    /// Minimum observed time.
    pub min: Duration,
    /// Mean over all measured repetitions.
    pub mean: Duration,
    /// Measured repetitions (excluding warmup).
    pub reps: usize,
}

/// Repetition count: `SCPERF_BENCH_REPS` or 5.
pub fn default_reps() -> usize {
    std::env::var("SCPERF_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Runs one case: one warmup iteration, then `reps` timed iterations.
pub fn measure(case: &Case, reps: usize) -> Measurement {
    (case.run)(); // warmup
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let start = Instant::now();
        (case.run)();
        let t = start.elapsed();
        min = min.min(t);
        total += t;
    }
    Measurement {
        name: case.name.clone(),
        min,
        mean: total / reps as u32,
        reps,
    }
}

/// Renders a duration with an auto-selected unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Runs every case in `cases`, printing an aligned table, and returns
/// the measurements in case order.
pub fn run_group(title: &str, cases: &[Case]) -> Vec<Measurement> {
    let reps = default_reps();
    println!("\n== {title} (min of {reps} reps) ==");
    let width = cases.iter().map(|c| c.name.len()).max().unwrap_or(0);
    let mut results = Vec::with_capacity(cases.len());
    for case in cases {
        let m = measure(case, reps);
        println!(
            "  {:<width$}  min {:>10}  mean {:>10}",
            m.name,
            fmt_duration(m.min),
            fmt_duration(m.mean),
        );
        results.push(m);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_min_and_mean() {
        let case = Case::new("spin", || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        let m = measure(&case, 3);
        assert_eq!(m.reps, 3);
        assert!(m.min <= m.mean);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with("s"));
    }
}
