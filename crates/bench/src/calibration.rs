//! Re-export of the probe-driven calibration that lives with the
//! workloads (see [`scperf_workloads::calibration`]); kept here so the
//! experiment binaries and benches keep their historical import path.

pub use scperf_workloads::calibration::{calibrate, calibrate_with, Calibration, ProbeRow};
