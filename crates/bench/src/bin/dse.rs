//! Exhaustive architectural-mapping exploration of the vocoder — the
//! design-space-exploration use case the paper's introduction motivates,
//! running on the parallel sweep engine of `scperf-dse`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p scperf-bench --release --bin dse -- \
//!     [--frames N] [--jobs N] [--no-cache] [--bench] \
//!     [--programs-in FILE] [--programs-out FILE]
//! ```
//!
//! * `--frames N`   frames per design point (default 2)
//! * `--jobs N`     worker threads; 1 = sequential oracle (default:
//!   available parallelism)
//! * `--no-cache`   disable segment-cost memoization
//! * `--bench`      additionally run the sequential no-cache oracle,
//!   verify the parallel frontier is bitwise identical, and write
//!   speedup + cache stats to `BENCH_dse.json`
//! * `--programs-in FILE`   warm-start segment-site cost programs from a
//!   blob written by an earlier run (another process, even another
//!   machine — the encoding is platform-independent)
//! * `--programs-out FILE`  write the compiled program blob after the
//!   sweep, for `--programs-in` of a later run

use std::time::Instant;

use scperf_bench::dse::sweep::{sweep, SweepConfig};
use scperf_obs::json::JsonWriter;

struct Args {
    frames: usize,
    jobs: usize,
    cache: bool,
    bench: bool,
    programs_in: Option<String>,
    programs_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 2,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cache: true,
        bench: false,
        programs_in: None,
        programs_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or_else(|| panic!("{name} expects a positive integer"))
        };
        match arg.as_str() {
            "--frames" => args.frames = num("--frames"),
            "--jobs" => args.jobs = num("--jobs"),
            "--no-cache" => args.cache = false,
            "--bench" => args.bench = true,
            "--programs-in" => {
                args.programs_in = Some(it.next().expect("--programs-in expects a path"))
            }
            "--programs-out" => {
                args.programs_out = Some(it.next().expect("--programs-out expects a path"))
            }
            // Positional frame count, kept for the pre-PR-2 interface.
            n if n.parse::<usize>().is_ok() => args.frames = n.parse().unwrap(),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cal = scperf_bench::calibration::calibrate();
    println!(
        "cost table calibrated (R^2 = {:.4}); exploring 243 mappings \
         ({} frames, {} jobs, cache {})...",
        cal.r_squared,
        args.frames,
        args.jobs,
        if args.cache { "on" } else { "off" }
    );

    let programs_in = args.programs_in.as_ref().map(|path| {
        let blob = std::fs::read(path).expect("read --programs-in blob");
        println!(
            "warm-starting cost programs from {path} ({} bytes)",
            blob.len()
        );
        blob
    });
    let config = SweepConfig {
        table: cal.table,
        nframes: args.frames,
        jobs: args.jobs,
        kernel_jobs: 1,
        use_cache: args.cache,
        limit: None,
        legacy_charging: false,
        programs_in,
    };
    let start = Instant::now();
    let result = sweep(&config);
    let elapsed = start.elapsed();
    println!(
        "{}",
        scperf_bench::dse::sweep::format_summary(&result, args.frames)
    );
    println!(
        "swept {} points in {:.2?} ({:.1} points/s)",
        result.points.len(),
        elapsed,
        result.points.len() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "cost programs: {} hits, {} misses, {} warm hits, {} imported, {} published",
        result.prog.hits,
        result.prog.misses,
        result.prog.warm_hits,
        result.prog.imported,
        result.cache.programs
    );
    if !config.table.is_integral() {
        println!(
            "  (calibrated table has fractional costs, so site memoization — \
             and with it program recording — stays off: replay is only \
             bit-exact for integer-valued tables)"
        );
    }
    if let Some(path) = &args.programs_out {
        std::fs::write(path, &result.programs_out).expect("write --programs-out blob");
        println!(
            "compiled programs -> {path} ({} bytes)",
            result.programs_out.len()
        );
    }

    if args.bench {
        println!("\nrunning sequential no-cache oracle for comparison...");
        let oracle_config = SweepConfig {
            jobs: 1,
            use_cache: false,
            ..config
        };
        let oracle_start = Instant::now();
        let oracle = sweep(&oracle_config);
        let oracle_elapsed = oracle_start.elapsed();
        let identical = oracle.points == result.points && oracle.frontier == result.frontier;
        assert!(identical, "parallel sweep diverged from sequential oracle");
        let speedup = oracle_elapsed.as_secs_f64() / elapsed.as_secs_f64();
        println!(
            "oracle {oracle_elapsed:.2?}, tuned {elapsed:.2?} -> speedup {speedup:.2}x, \
             frontier identical: {identical}"
        );

        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("frames");
        w.value_u64(args.frames as u64);
        w.key("points");
        w.value_u64(result.points.len() as u64);
        w.key("jobs");
        w.value_u64(args.jobs as u64);
        w.key("cache");
        w.value_bool(args.cache);
        w.key("seq_no_cache_seconds");
        w.value_f64(oracle_elapsed.as_secs_f64());
        w.key("tuned_seconds");
        w.value_f64(elapsed.as_secs_f64());
        w.key("speedup");
        w.value_f64(speedup);
        w.key("frontier_identical");
        w.value_bool(identical);
        w.key("frontier_size");
        w.value_u64(result.frontier.len() as u64);
        w.key("cache_hits");
        w.value_u64(result.cache.hits);
        w.key("cache_misses");
        w.value_u64(result.cache.misses);
        w.key("cache_entries");
        w.value_u64(result.cache.entries as u64);
        w.key("cache_hit_rate");
        w.value_f64(result.cache.hit_rate());
        w.key("cache_evictions");
        w.value_u64(result.cache.evictions);
        w.key("prog_hits");
        w.value_u64(result.prog.hits);
        w.key("prog_misses");
        w.value_u64(result.prog.misses);
        w.key("prog_warm_hits");
        w.value_u64(result.prog.warm_hits);
        w.key("pool_steals");
        w.value_u64(result.pool.steals);
        w.key("frontier");
        w.begin_array();
        for p in &result.frontier {
            w.begin_object();
            w.key("mapping");
            w.value_str(&p.mapping_label());
            w.key("latency_ns");
            w.value_f64(p.latency.as_ns_f64());
            w.key("cost");
            w.value_f64(p.cost);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let dir = std::env::var("SCPERF_OBS_DIR").unwrap_or_else(|_| ".".into());
        let path = format!("{dir}/BENCH_dse.json");
        std::fs::write(&path, w.finish()).expect("write BENCH_dse.json");
        println!("bench results -> {path}");
    }
}
