//! Exhaustive architectural-mapping exploration of the vocoder — the
//! design-space-exploration use case the paper's introduction motivates.
//!
//! Usage: `cargo run -p scperf-bench --release --bin dse [nframes]`

fn main() {
    let nframes = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let cal = scperf_bench::calibration::calibrate();
    println!(
        "cost table calibrated (R^2 = {:.4}); exploring...",
        cal.r_squared
    );
    let points = scperf_bench::dse::explore_all(&cal.table, nframes);
    println!("{}", scperf_bench::dse::format_summary(&points, nframes));
}
