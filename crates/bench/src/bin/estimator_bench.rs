//! Estimator hot-path microbenchmarks: flat-TLS charging, segment-site
//! memoization and the allocation-free DFG, measured against the legacy
//! `RefCell` charging path.
//!
//! Usage:
//!
//! ```text
//! cargo run -p scperf-bench --release --bin estimator_bench -- [--reps N] [--quick]
//! ```
//!
//! Four benches:
//!
//! * **charge** — one process charging a tight stream of `Op::Add`s;
//!   the purest fast-path-vs-legacy comparison.
//! * **plain_thread** — annotated `G` arithmetic on a thread with *no*
//!   installed estimation context: the absent-context path must be
//!   almost free (a single thread-local flag test per op).
//! * **fir** — the 64-tap/256-sample FIR workload, run legacy, live
//!   (fast path, no memoization) and memoized (segment sites replay).
//! * **vocoder** — the five-stage vocoder pipeline on one CPU, same
//!   three configurations.
//!
//! Every configuration must produce bit-identical simulated time and
//! checksums — the bench asserts this — so the reported speedups are
//! pure host-time ratios at identical estimates. Results go to
//! `BENCH_estimator.json`.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use scperf_core::{charge_op, CostTable, MemoMode, Op, Platform, ProgramSet, SimConfig, G};
use scperf_kernel::Time;
use scperf_obs::json::JsonWriter;
use scperf_workloads::fir;
use scperf_workloads::vocoder::pipeline::{self, VocoderMapping};

struct Args {
    reps: usize,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 5,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .expect("--reps expects a positive integer");
            }
            "--quick" => args.quick = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// How one session is configured: the legacy `RefCell` path, the flat
/// fast path with memoization off, or the fast path with segment-site
/// replay (the default).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    Legacy,
    Live,
    Memoized,
}

impl Config {
    const ALL: [Config; 3] = [Config::Legacy, Config::Live, Config::Memoized];

    fn apply(self, cfg: SimConfig) -> SimConfig {
        match self {
            Config::Legacy => cfg.legacy_charging(true).site_memo(MemoMode::Off),
            Config::Live => cfg.site_memo(MemoMode::Off),
            Config::Memoized => cfg.site_memo(MemoMode::Replay),
        }
    }
}

/// One measured run: the simulated end time and checksum (for the
/// bit-identity assertions) plus the host time it took.
struct Run {
    end_time_ps: u64,
    checksum: i64,
    elapsed: Duration,
    site_hits: u64,
    fast_charges: u64,
}

fn sw_platform() -> (Platform, scperf_core::ResourceId) {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
    (platform, cpu)
}

/// A tight stream of `ops` additions through the charging entry point.
/// With `attribution` the arbitration point additionally accounts
/// per-resource busy and contention time on every segment flush.
fn charge_stream(config: Config, ops: u64, attribution: bool) -> Run {
    let (platform, cpu) = sw_platform();
    let mut session = config
        .apply(SimConfig::new().platform(platform).attribution(attribution))
        .build();
    session.spawn("charger", cpu, move |_ctx| {
        for _ in 0..ops {
            charge_op(Op::Add);
        }
    });
    let start = Instant::now();
    let summary = session.run().expect("charge stream runs");
    let hot = session.model().hot_stats();
    Run {
        end_time_ps: summary.end_time.as_ps(),
        checksum: 0,
        elapsed: start.elapsed(),
        site_hits: hot.site_hits,
        fast_charges: hot.fast_charges,
    }
}

/// Annotated arithmetic on a thread with no installed context: every
/// charge must reduce to one thread-local flag test.
fn plain_thread(ops: u64) -> Duration {
    std::thread::spawn(move || {
        let mut x = G::raw(1_i64);
        let one = G::raw(1_i64);
        let start = Instant::now();
        for _ in 0..ops {
            x.assign(x + one);
        }
        std::hint::black_box(x.get());
        start.elapsed()
    })
    .join()
    .expect("plain thread")
}

/// `iters` full FIR passes in one process.
fn fir_run(config: Config, iters: usize) -> Run {
    let (platform, cpu) = sw_platform();
    let mut session = config.apply(SimConfig::new().platform(platform)).build();
    let out = Arc::new(Mutex::new(0_i64));
    let sink = Arc::clone(&out);
    session.spawn("fir", cpu, move |_ctx| {
        let mut acc = 0_i64;
        for _ in 0..iters {
            acc = acc.wrapping_add(fir::annotated() as i64);
        }
        *sink.lock().expect("sink") = acc;
    });
    let start = Instant::now();
    let summary = session.run().expect("fir runs");
    let hot = session.model().hot_stats();
    let checksum = *out.lock().expect("sink");
    Run {
        end_time_ps: summary.end_time.as_ps(),
        checksum,
        elapsed: start.elapsed(),
        site_hits: hot.site_hits,
        fast_charges: hot.fast_charges,
    }
}

/// The five-stage pipeline, all stages on one CPU, `nframes` frames.
fn vocoder_run(config: Config, nframes: usize) -> Run {
    let (platform, cpu) = sw_platform();
    let mut session = config.apply(SimConfig::new().platform(platform)).build();
    let handles = {
        let (sim, model) = session.parts_mut();
        pipeline::build(sim, model, VocoderMapping::all_on(cpu), nframes)
    };
    let start = Instant::now();
    let summary = session.run().expect("vocoder runs");
    let hot = session.model().hot_stats();
    let checksum = handles.output.lock().expect("pipeline finished") as i64;
    Run {
        end_time_ps: summary.end_time.as_ps(),
        checksum,
        elapsed: start.elapsed(),
        site_hits: hot.site_hits,
        fast_charges: hot.fast_charges,
    }
}

/// The memoized vocoder pipeline warm-started from a shared program
/// set: every site replays from the first frame on. Returns the run and
/// the number of programs fetched out of the warm set.
fn vocoder_warm_run(set: Arc<ProgramSet>, nframes: usize) -> (Run, u64) {
    let (platform, cpu) = sw_platform();
    let mut session = Config::Memoized
        .apply(SimConfig::new().platform(platform).program_set(set))
        .build();
    let handles = {
        let (sim, model) = session.parts_mut();
        pipeline::build(sim, model, VocoderMapping::all_on(cpu), nframes)
    };
    let start = Instant::now();
    let summary = session.run().expect("warm vocoder runs");
    let hot = session.model().hot_stats();
    let checksum = handles.output.lock().expect("pipeline finished") as i64;
    (
        Run {
            end_time_ps: summary.end_time.as_ps(),
            checksum,
            elapsed: start.elapsed(),
            site_hits: hot.site_hits,
            fast_charges: hot.fast_charges,
        },
        hot.prog_warm_hits,
    )
}

/// Best-of-`reps` wall time per configuration (noise only adds time),
/// with bit-identity asserted across configurations.
fn bench(name: &'static str, reps: usize, run: impl Fn(Config) -> Run) -> BenchResult {
    let mut best: [Option<Run>; 3] = [None, None, None];
    for (i, config) in Config::ALL.into_iter().enumerate() {
        for _ in 0..reps {
            let r = run(config);
            match &best[i] {
                Some(b) if b.elapsed <= r.elapsed => {}
                _ => best[i] = Some(r),
            }
        }
    }
    let [legacy, live, memo] = best.map(|r| r.expect("reps > 0"));
    assert_eq!(
        legacy.end_time_ps, live.end_time_ps,
        "{name}: fast path changed the estimate"
    );
    assert_eq!(
        legacy.end_time_ps, memo.end_time_ps,
        "{name}: memoization changed the estimate"
    );
    assert_eq!(legacy.checksum, live.checksum, "{name}: data changed");
    assert_eq!(legacy.checksum, memo.checksum, "{name}: data changed");
    assert_eq!(legacy.fast_charges, 0, "{name}: legacy run used fast path");
    let r = BenchResult {
        name,
        legacy,
        live,
        memo,
    };
    println!(
        "{:>12}: legacy {:>9.2?}  live {:>9.2?} ({:>5.2}x)  memoized {:>9.2?} ({:>5.2}x, {} site hits)",
        r.name,
        r.legacy.elapsed,
        r.live.elapsed,
        r.live_speedup(),
        r.memo.elapsed,
        r.memo_speedup(),
        r.memo.site_hits,
    );
    r
}

struct BenchResult {
    name: &'static str,
    legacy: Run,
    live: Run,
    memo: Run,
}

impl BenchResult {
    fn live_speedup(&self) -> f64 {
        self.legacy.elapsed.as_secs_f64() / self.live.elapsed.as_secs_f64()
    }
    fn memo_speedup(&self) -> f64 {
        self.legacy.elapsed.as_secs_f64() / self.memo.elapsed.as_secs_f64()
    }
}

fn main() {
    let args = parse_args();
    let scale = if args.quick { 10 } else { 1 };
    let charge_ops = 4_000_000 / scale as u64;
    let plain_ops = 20_000_000 / scale as u64;
    let fir_iters = 20 / scale.min(10);
    let voc_frames = 20 / scale.min(10);

    println!(
        "estimator hot-path microbench (best of {} reps{})",
        args.reps,
        if args.quick { ", quick" } else { "" }
    );

    // The absent-context case first: it needs no session at all.
    let mut plain_best = Duration::MAX;
    for _ in 0..args.reps {
        plain_best = plain_best.min(plain_thread(plain_ops));
    }
    let plain_ns_per_op = plain_best.as_secs_f64() * 1e9 / plain_ops as f64;
    println!(
        "{:>12}: {:>9.2?} for {} ops ({:.2} ns/op, no context installed)",
        "plain_thread", plain_best, plain_ops, plain_ns_per_op
    );

    let results = [
        bench("charge", args.reps, |c| charge_stream(c, charge_ops, false)),
        bench("fir", args.reps, |c| fir_run(c, fir_iters)),
        bench("vocoder", args.reps, |c| vocoder_run(c, voc_frames)),
    ];

    // Attribution overhead: busy/contention accounting on the memoized
    // charge stream. The estimate must stay bit-identical and the
    // host-time overhead ≤ 5%.
    let mut attr_best: Option<Run> = None;
    for _ in 0..args.reps {
        let r = charge_stream(Config::Memoized, charge_ops, true);
        match &attr_best {
            Some(b) if b.elapsed <= r.elapsed => {}
            _ => attr_best = Some(r),
        }
    }
    let attr = attr_best.expect("reps > 0");
    let base = &results[0].memo;
    assert_eq!(
        base.end_time_ps, attr.end_time_ps,
        "charge: attribution changed the estimate"
    );
    let attr_overhead = attr.elapsed.as_secs_f64() / base.elapsed.as_secs_f64() - 1.0;
    println!(
        " attribution: off {:>9.2?}  on {:>9.2?}  overhead {:+.2}%",
        base.elapsed,
        attr.elapsed,
        attr_overhead * 100.0
    );

    // Cross-process program sharing: harvest the memoized vocoder's
    // compiled programs, round-trip them through the wire encoding, and
    // warm-start fresh sessions from the decoded set — the serialize →
    // ship → charge path `scperf-serve` and `scperf-dse` use.
    let harvested = {
        let (platform, cpu) = sw_platform();
        let mut session = Config::Memoized
            .apply(SimConfig::new().platform(platform))
            .build();
        {
            let (sim, model) = session.parts_mut();
            pipeline::build(sim, model, VocoderMapping::all_on(cpu), voc_frames);
        }
        session.run().expect("harvest vocoder runs");
        session.programs()
    };
    let wire = harvested.to_bytes();
    let decoded = Arc::new(ProgramSet::from_bytes(&wire).expect("program set round-trips"));
    assert_eq!(
        *decoded, harvested,
        "wire round-trip changed the program set"
    );
    let mut warm_best: Option<(Run, u64)> = None;
    for _ in 0..args.reps {
        let r = vocoder_warm_run(Arc::clone(&decoded), voc_frames);
        match &warm_best {
            Some((b, _)) if b.elapsed <= r.0.elapsed => {}
            _ => warm_best = Some(r),
        }
    }
    let (warm, warm_hits) = warm_best.expect("reps > 0");
    let vocoder = &results[2];
    assert_eq!(
        vocoder.legacy.end_time_ps, warm.end_time_ps,
        "vocoder: warm-started programs changed the estimate"
    );
    assert_eq!(
        vocoder.legacy.checksum, warm.checksum,
        "vocoder: warm-started programs changed the data"
    );
    assert!(
        warm_hits > 0,
        "warm run fetched nothing from the shared set"
    );
    let prog_speedup = vocoder.legacy.elapsed.as_secs_f64() / warm.elapsed.as_secs_f64();
    println!(
        "    programs: {} bytes on the wire, warm {:>9.2?} ({:>5.2}x, {} warm fetches)",
        wire.len(),
        warm.elapsed,
        prog_speedup,
        warm_hits,
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("reps");
    w.value_u64(args.reps as u64);
    w.key("quick");
    w.value_bool(args.quick);
    w.key("attribution");
    w.begin_object();
    w.key("bench");
    w.value_str("charge/memoized");
    w.key("off_seconds");
    w.value_f64(base.elapsed.as_secs_f64());
    w.key("on_seconds");
    w.value_f64(attr.elapsed.as_secs_f64());
    w.key("overhead_pct");
    w.value_f64(attr_overhead * 100.0);
    w.key("estimates_identical");
    w.value_bool(true);
    w.end_object();
    w.key("plain_thread");
    w.begin_object();
    w.key("ops");
    w.value_u64(plain_ops);
    w.key("seconds");
    w.value_f64(plain_best.as_secs_f64());
    w.key("ns_per_op");
    w.value_f64(plain_ns_per_op);
    w.end_object();
    w.key("benches");
    w.begin_array();
    for r in &results {
        w.begin_object();
        w.key("name");
        w.value_str(r.name);
        w.key("end_time_ps");
        w.value_u64(r.legacy.end_time_ps);
        w.key("legacy_seconds");
        w.value_f64(r.legacy.elapsed.as_secs_f64());
        w.key("live_seconds");
        w.value_f64(r.live.elapsed.as_secs_f64());
        w.key("memoized_seconds");
        w.value_f64(r.memo.elapsed.as_secs_f64());
        w.key("live_speedup");
        w.value_f64(r.live_speedup());
        w.key("memoized_speedup");
        w.value_f64(r.memo_speedup());
        w.key("fast_charges");
        w.value_u64(r.live.fast_charges);
        w.key("site_hits");
        w.value_u64(r.memo.site_hits);
        if r.name == "vocoder" {
            w.key("warm_seconds");
            w.value_f64(warm.elapsed.as_secs_f64());
            w.key("prog_speedup");
            w.value_f64(prog_speedup);
            w.key("prog_warm_hits");
            w.value_u64(warm_hits);
            w.key("program_bytes");
            w.value_u64(wire.len() as u64);
        }
        w.key("estimates_identical");
        w.value_bool(true);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    let dir = std::env::var("SCPERF_OBS_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_estimator.json");
    std::fs::write(&path, w.finish()).expect("write BENCH_estimator.json");
    println!("bench results -> {path}");

    // Workloads with memoizable sites must replay something.
    assert!(results[1].memo.site_hits > 0, "fir recorded no site hits");
    assert!(
        results[2].memo.site_hits > 0,
        "vocoder recorded no site hits"
    );
    if !args.quick {
        // Quick mode is a CI smoke run on loaded shared machines; the
        // throughput floor is only meaningful at full problem sizes.
        for r in &results[1..] {
            assert!(
                r.memo_speedup() >= 1.5,
                "{}: memoized estimation must be >=1.5x over legacy (got {:.2}x)",
                r.name,
                r.memo_speedup()
            );
        }
        assert!(
            attr_overhead <= 0.05,
            "attribution accounting must cost <=5% on the charge stream (got {:+.2}%)",
            attr_overhead * 100.0
        );
    }
}
