//! Runs every table and figure in sequence (the full §5 evaluation).

fn main() {
    let cal = scperf_bench::calibration::calibrate();
    println!("{cal}");

    let t1 = scperf_bench::tables::table1(&cal, 3);
    println!("{}", scperf_bench::tables::format_table1(&t1));

    let t2 = scperf_bench::tables::table2();
    println!(
        "{}",
        scperf_bench::tables::format_hw_table("Table 2. HW estimation results", &t2)
    );

    let t3 = scperf_bench::tables::table3(&cal, 32);
    println!("{}", scperf_bench::tables::format_table3(&t3));

    let t4 = scperf_bench::tables::table4(2);
    println!(
        "{}",
        scperf_bench::tables::format_hw_table(
            "Table 4. HW estimation results for the vocoder",
            &t4
        )
    );

    let (f12_table, f12_dot) = scperf_bench::figures::figure1_2();
    println!("{f12_table}");
    println!("Figure 2 (DOT):\n{f12_dot}");

    println!("{}", scperf_bench::figures::figure3());

    let f4 = scperf_bench::figures::figure4();
    println!("{}", scperf_bench::figures::format_figure4(&f4));

    let (untimed, timed) = scperf_bench::figures::figure5();
    println!("Figure 5a. Untimed:\n{untimed}");
    println!("Figure 5b. Strict-timed:\n{timed}");
}
