//! Observability dump: runs the strict-timed vocoder with tracing,
//! metrics, attribution and profiling enabled and writes
//!
//! * `BENCH_obs.json` — merged kernel + estimator metrics snapshot,
//!   including the `kernel.sched.*` / `est.res.*` attribution counters
//!   and a `obs.trace_gap.*` log-bucket histogram summary of the
//!   inter-event gaps in the kernel trace,
//! * `vocoder_trace.json` — Chrome `trace_event` document (open in
//!   Perfetto / `chrome://tracing`): one instant-event track per process
//!   from the kernel trace, one span track per analyzed process from
//!   the estimator's instantaneous samples, plus one counter track per
//!   metric in the final snapshot,
//! * the utilization report (bottleneck resource, busy%/contention%)
//!   and a host-time profile of the scheduler phases on stdout.
//!
//! Output paths are relative to the working directory; set
//! `SCPERF_OBS_DIR` to redirect.

use scperf_core::{Mode, SimConfig};
use scperf_kernel::TraceMode;
use scperf_obs::chrome::ChromeTrace;
use scperf_obs::profile;
use scperf_obs::LogHistogram;
use scperf_workloads::vocoder;

fn main() {
    let nframes: usize = std::env::var("SCPERF_OBS_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let dir = std::env::var("SCPERF_OBS_DIR").unwrap_or_else(|_| ".".into());
    let table = scperf_bench::calibration::calibrate().table;
    let (platform, cpu) = scperf_bench::harness::cpu_platform(table);

    profile::reset();
    profile::set_enabled(true);

    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::StrictTimed)
        .tracing(TraceMode::Unbounded)
        .record_instantaneous()
        .attribution(true)
        .build();
    let handles = {
        let (sim, model) = session.parts_mut();
        vocoder::pipeline::build(
            sim,
            model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            nframes,
        )
    };
    let summary = {
        let _span = profile::span("vocoder.run");
        session.run().expect("vocoder runs")
    };
    profile::set_enabled(false);

    let checksum = (*handles.output.lock()).expect("sink finished");
    println!(
        "vocoder: {nframes} frames, checksum {checksum}, end {}, {} deltas, {} activations",
        summary.end_time, summary.deltas, summary.activations
    );

    // Utilization attribution: who is busy, who queues behind whom.
    let report = session.report();
    if let Some(util) = &report.utilization {
        println!("\nutilization ({} total):", util.total_time);
        for r in &util.resources {
            println!(
                "  {:<10} busy {:>5.1}%  contention {:>5.1}%  ({} waits)",
                r.name, r.busy_pct, r.contention_pct, r.waits
            );
        }
        if let Some(b) = util.bottleneck() {
            println!(
                "  bottleneck: {} ({:.1}% busy, {:.1}% contended)",
                b.name, b.busy_pct, b.contention_pct
            );
        }
    }

    // Metrics: kernel internals + estimator internals (now including
    // the kernel.sched.* / est.res.* attribution counters), one
    // snapshot, plus a log-bucket histogram of the gaps between
    // consecutive kernel trace events.
    let mut metrics = session.metrics();
    let table = session.take_events();
    let mut gaps = LogHistogram::new();
    let mut last_ps = 0u64;
    for ev in &table.events {
        gaps.record(ev.time_ps.saturating_sub(last_ps) / 1_000);
        last_ps = ev.time_ps;
    }
    if let Some(summary) = gaps.summary() {
        summary.export(&mut metrics, "obs.trace_gap");
    }
    let metrics_path = format!("{dir}/BENCH_obs.json");
    std::fs::write(&metrics_path, metrics.to_json()).expect("write metrics json");
    println!("\n{metrics}");
    println!("metrics -> {metrics_path}");

    // Chrome trace: kernel events (instants per process track) merged
    // with the estimator's per-segment spans and one counter track per
    // metric, stamped at the end of the run.
    let mut chrome = ChromeTrace::from_table(&table);
    chrome.merge(session.model().chrome_trace());
    chrome.counters_from_metrics(summary.end_time.as_ps() as f64 / 1e6, &metrics);
    let trace_path = format!("{dir}/vocoder_trace.json");
    chrome.write_to(&trace_path).expect("write chrome trace");
    println!(
        "chrome trace -> {trace_path} ({} events from {} kernel records; load in Perfetto)",
        chrome.len(),
        table.len()
    );

    // Host-time profile of the scheduler phases.
    println!("\nhost-time profile:");
    for (name, stats) in profile::report() {
        println!(
            "  {name:<20} total {:>12?}  count {:>8}  mean {:>10?}",
            stats.total,
            stats.count,
            stats
                .total
                .checked_div(stats.count as u32)
                .unwrap_or_default(),
        );
    }
}
