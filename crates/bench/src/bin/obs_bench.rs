//! Observability dump: runs the strict-timed vocoder with tracing,
//! metrics and profiling enabled and writes
//!
//! * `BENCH_obs.json` — merged kernel + estimator metrics snapshot,
//! * `vocoder_trace.json` — Chrome `trace_event` document (open in
//!   Perfetto / `chrome://tracing`): one instant-event track per process
//!   from the kernel trace, plus one span track per analyzed process
//!   from the estimator's instantaneous samples,
//! * a host-time profile of the scheduler phases on stdout.
//!
//! Output paths are relative to the working directory; set
//! `SCPERF_OBS_DIR` to redirect.

use scperf_core::{Mode, SimConfig};
use scperf_kernel::TraceMode;
use scperf_obs::chrome::ChromeTrace;
use scperf_obs::profile;
use scperf_workloads::vocoder;

fn main() {
    let nframes: usize = std::env::var("SCPERF_OBS_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let dir = std::env::var("SCPERF_OBS_DIR").unwrap_or_else(|_| ".".into());
    let table = scperf_bench::calibration::calibrate().table;
    let (platform, cpu) = scperf_bench::harness::cpu_platform(table);

    profile::reset();
    profile::set_enabled(true);

    let mut session = SimConfig::new()
        .platform(platform)
        .mode(Mode::StrictTimed)
        .tracing(TraceMode::Unbounded)
        .record_instantaneous()
        .build();
    let handles = {
        let (sim, model) = session.parts_mut();
        vocoder::pipeline::build(
            sim,
            model,
            vocoder::pipeline::VocoderMapping::all_on(cpu),
            nframes,
        )
    };
    let summary = {
        let _span = profile::span("vocoder.run");
        session.run().expect("vocoder runs")
    };
    profile::set_enabled(false);

    let checksum = (*handles.output.lock()).expect("sink finished");
    println!(
        "vocoder: {nframes} frames, checksum {checksum}, end {}, {} deltas, {} activations",
        summary.end_time, summary.deltas, summary.activations
    );

    // Metrics: kernel internals + estimator internals, one snapshot.
    let metrics = session.metrics();
    let metrics_path = format!("{dir}/BENCH_obs.json");
    std::fs::write(&metrics_path, metrics.to_json()).expect("write metrics json");
    println!("\n{metrics}");
    println!("metrics -> {metrics_path}");

    // Chrome trace: kernel events (instants per process track) merged
    // with the estimator's per-segment spans.
    let table = session.take_events();
    let mut chrome = ChromeTrace::from_table(&table);
    chrome.merge(session.model().chrome_trace());
    let trace_path = format!("{dir}/vocoder_trace.json");
    chrome.write_to(&trace_path).expect("write chrome trace");
    println!(
        "chrome trace -> {trace_path} ({} events from {} kernel records; load in Perfetto)",
        chrome.len(),
        table.len()
    );

    // Host-time profile of the scheduler phases.
    println!("\nhost-time profile:");
    for (name, stats) in profile::report() {
        println!(
            "  {name:<20} total {:>12?}  count {:>8}  mean {:>10?}",
            stats.total,
            stats.count,
            stats
                .total
                .checked_div(stats.count as u32)
                .unwrap_or_default(),
        );
    }
}
