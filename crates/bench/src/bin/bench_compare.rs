//! Regression gate over the committed bench baselines.
//!
//! Usage:
//!
//! ```text
//! cargo run -p scperf-bench --release --bin bench_compare -- \
//!     [--threshold R] BASELINE.json CURRENT.json [BASELINE CURRENT ...]
//! ```
//!
//! Each pair is a committed baseline (`BENCH_kernel.json`,
//! `BENCH_estimator.json`) and a freshly produced run of the same bench
//! (typically `--quick`, redirected via `SCPERF_OBS_DIR`). Absolute
//! seconds are meaningless across hosts, so only the *scale-invariant
//! ratio* metrics are compared: the handoff `speedup` and the
//! estimator's `live_speedup`/`memoized_speedup`, which measure one
//! code path against another on the same machine in the same run.
//!
//! For every shared ratio metric the gate computes
//! `current / baseline`; a value of 1.0 means the fresh run reproduces
//! the committed ratio exactly. The run **fails (exit 1)** when any
//! metric falls below `1 - threshold` (default 0.5 — generous, because
//! quick-mode CI runs on small problem sizes are noisy; the gate is
//! for order-of-magnitude regressions, not 5% drifts). Min, median and
//! stddev of the ratio distribution are printed for trend-watching,
//! and the `attribution.overhead_pct` entries are echoed informatively.

use std::process::ExitCode;

use scperf_serve::json::{parse, Json};

/// Ratio-metric keys: higher is better, scale-invariant across hosts.
const RATIO_KEYS: [&str; 5] = [
    "speedup",
    "live_speedup",
    "memoized_speedup",
    "pool_speedup",
    "prog_speedup",
];

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare [--threshold R] BASELINE.json CURRENT.json \
         [BASELINE CURRENT ...]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// Extracts `(metric-name, value)` for every ratio metric in a bench
/// document's `benches` array.
fn ratio_metrics(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(benches) = doc.get("benches").and_then(|b| b.as_arr()) {
        for b in benches {
            let name = b.get("name").and_then(|n| n.as_str()).unwrap_or("?");
            for key in RATIO_KEYS {
                if let Some(v) = b.get(key).and_then(|v| v.as_f64()) {
                    out.push((format!("{name}.{key}"), v));
                }
            }
        }
    }
    out
}

fn overhead_pct(doc: &Json) -> Option<f64> {
    doc.get("attribution")
        .and_then(|a| a.get("overhead_pct"))
        .and_then(|v| v.as_f64())
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn stddev(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
}

fn main() -> ExitCode {
    let mut threshold = 0.5_f64;
    let mut paths: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| (0.0..1.0).contains(&v))
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() || !paths.len().is_multiple_of(2) {
        usage();
    }

    let floor = 1.0 - threshold;
    let mut ratios: Vec<f64> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;

    for pair in paths.chunks(2) {
        let (base_path, cur_path) = (&pair[0], &pair[1]);
        let base = load(base_path);
        let cur = load(cur_path);
        println!("{base_path} vs {cur_path}:");

        let base_metrics = ratio_metrics(&base);
        let cur_metrics = ratio_metrics(&cur);
        for (name, b) in &base_metrics {
            let Some((_, c)) = cur_metrics.iter().find(|(n, _)| n == name) else {
                println!("  {name:<28} missing from current run (skipped)");
                continue;
            };
            if *b <= 0.0 {
                continue;
            }
            let r = c / b;
            compared += 1;
            ratios.push(r);
            let verdict = if r < floor { "REGRESSED" } else { "ok" };
            println!(
                "  {name:<28} baseline {b:>6.2}x  current {c:>6.2}x  ratio {r:>5.2}  {verdict}"
            );
            if r < floor {
                failures.push(format!("{name}: {c:.2}x vs committed {b:.2}x"));
            }
        }
        if let (Some(b), Some(c)) = (overhead_pct(&base), overhead_pct(&cur)) {
            println!("  attribution overhead: baseline {b:+.2}%  current {c:+.2}% (informational)");
        }
    }

    if compared == 0 {
        eprintln!("no shared ratio metrics found — wrong files?");
        return ExitCode::FAILURE;
    }

    ratios.sort_by(|a, b| a.total_cmp(b));
    println!(
        "\n{compared} ratio metric(s): min {:.2}  median {:.2}  stddev {:.2}  (floor {floor:.2})",
        ratios[0],
        median(&ratios),
        stddev(&ratios),
    );

    if failures.is_empty() {
        println!("no regressions beyond threshold {threshold}");
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
