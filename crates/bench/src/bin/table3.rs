//! Regenerates Table 3: SW estimation results for the vocoder.

fn main() {
    let nframes = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let cal = scperf_bench::calibration::calibrate();
    let t = scperf_bench::tables::table3(&cal, nframes);
    println!("{}", scperf_bench::tables::format_table3(&t));
}
