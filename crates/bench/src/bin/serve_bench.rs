//! Throughput and latency of the `scperf-serve` simulation service,
//! measured at 1/4/8 workers. Writes `BENCH_serve.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p scperf-bench --release --bin serve_bench -- [--quick]
//! ```
//!
//! Four measurements:
//!
//! * **compute** — a stream of distinct sim requests pushed through the
//!   stdio path at each worker count: end-to-end seconds, requests/s
//!   and the service's own p50/p90/p99 latency. Simulation is
//!   CPU-bound, so this scales with *host cores*, not worker count —
//!   the committed numbers come from a single-core container
//!   (`host_cpus` is recorded; see the JSON) and are expected to stay
//!   flat there.
//! * **determinism** — the same mixed batch rendered by a 1-worker and
//!   an 8-worker service must produce *bitwise identical* response
//!   payloads. Asserted, not just reported.
//! * **sustained** — repeat-shape traffic with the session pool on vs
//!   off (trace cache off for both, so the unpooled baseline is true
//!   per-request construction). Pooled requests fork a warmed-up
//!   snapshot instead of rebuilding and re-estimating the pipeline;
//!   the requests/s ratio is asserted ≥ 2× and the per-request heap
//!   allocation counts are reported alongside.
//! * **slow_clients** — the concurrency measurement that does not
//!   depend on core count: TCP clients that handshake (ping/pong),
//!   think for a fixed delay while holding the connection, then send a
//!   (cache-warmed, cheap) request. A connection pins one pool worker
//!   for its whole lifetime, so 1 worker serializes the clients'
//!   think times while 8 workers overlap them; the wall-clock ratio is
//!   the service's genuine I/O-concurrency speedup and must be ≥ 3×.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use scperf_obs::json::JsonWriter;
use scperf_serve::{Responder, Service, ServiceConfig, TcpServer};

/// Counts every heap allocation so the sustained-load arm can report
/// allocations per request with the pool on vs off — the pool's other
/// dividend besides wall clock.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates entirely to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WORKER_COUNTS: [usize; 3] = [1, 4, 8];
const MAPPINGS: [&str; 4] = [
    r#""cpu0","cpu0","cpu0","cpu0","cpu0""#,
    r#""cpu0","cpu1","hw","cpu0","cpu1""#,
    r#""hw","hw","hw","hw","hw""#,
    r#""cpu1","cpu1","cpu0","hw","cpu0""#,
];

fn service(workers: usize) -> Service {
    Service::new(ServiceConfig {
        workers,
        queue_capacity: 256,
        retry_after_ms: 50,
        ..ServiceConfig::default()
    })
}

fn sim_line(id: &str, mapping: &str, nframes: usize) -> String {
    format!(r#"{{"id":"{id}","mapping":[{mapping}],"nframes":{nframes}}}"#)
}

struct ComputeRun {
    workers: usize,
    seconds: f64,
    throughput_rps: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
}

/// Pushes `requests` sim requests through a `workers`-wide service and
/// waits for every response.
fn compute_run(workers: usize, requests: usize, nframes: usize) -> ComputeRun {
    let svc = service(workers);
    let (responder, lines) = Responder::collector();
    let start = Instant::now();
    for i in 0..requests {
        let line = sim_line(&format!("c{i}"), MAPPINGS[i % MAPPINGS.len()], nframes);
        svc.handle_line(&line, &responder);
    }
    svc.drain();
    let seconds = start.elapsed().as_secs_f64();
    let got = lines.lock().clone();
    assert_eq!(got.len(), requests, "every request must be answered");
    for l in &got {
        assert!(l.contains(r#""status":"ok""#), "unexpected response: {l}");
    }
    let m = svc.metrics();
    let gauge = |name: &str| m.gauge(name).unwrap_or(0.0);
    ComputeRun {
        workers,
        seconds,
        throughput_rps: requests as f64 / seconds,
        p50_us: gauge("serve.latency.p50_us"),
        p90_us: gauge("serve.latency.p90_us"),
        p99_us: gauge("serve.latency.p99_us"),
    }
}

/// The same mixed batch on a 1-worker and an 8-worker service; returns
/// the (asserted-identical) payloads' length for the report.
fn determinism_check() -> usize {
    let batch = format!(
        r#"{{"id":"b","op":"batch","scenarios":[{}]}}"#,
        [
            format!(r#"{{"mapping":[{}],"nframes":2}}"#, MAPPINGS[0]),
            format!(
                r#"{{"mapping":[{}],"nframes":2,"report":true}}"#,
                MAPPINGS[1]
            ),
            format!(r#"{{"mapping":[{}],"nframes":1,"hw_k":0.25}}"#, MAPPINGS[2]),
            format!(
                r#"{{"mapping":[{}],"nframes":3,"clock_ns":20}}"#,
                MAPPINGS[3]
            ),
        ]
        .join(",")
    );
    let mut outputs = Vec::new();
    for workers in [1, 8] {
        let svc = service(workers);
        let (responder, lines) = Responder::collector();
        svc.handle_line(&batch, &responder);
        svc.drain();
        let got = lines.lock().clone();
        assert_eq!(got.len(), 1);
        outputs.push(got[0].clone());
    }
    assert_eq!(
        outputs[0], outputs[1],
        "batch payloads differ between 1 and 8 workers"
    );
    outputs[0].len()
}

struct SustainedRun {
    workers: usize,
    pooled_rps: f64,
    unpooled_rps: f64,
    pool_speedup: f64,
    pooled_allocs_per_req: u64,
    unpooled_allocs_per_req: u64,
}

/// One sustained-load arm: `requests` repeat-shape sim requests (after
/// one warmup request that pays first-of-shape setup either way)
/// through a service with the session pool on or off. The trace cache
/// is off for both, so the unpooled side is true per-request
/// construction — the setup cost the pool is meant to amortize.
fn sustained_arm(workers: usize, pooled: bool, requests: usize, nframes: usize) -> (f64, u64) {
    let svc = Service::new(ServiceConfig {
        workers,
        queue_capacity: 256,
        retry_after_ms: 50,
        use_cache: false,
        pool_sessions: if pooled { None } else { Some(0) },
        ..ServiceConfig::default()
    });
    let (responder, lines) = Responder::collector();
    svc.handle_line(&sim_line("warm", MAPPINGS[1], nframes), &responder);
    while lines.lock().is_empty() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    for i in 0..requests {
        svc.handle_line(
            &sim_line(&format!("u{i}"), MAPPINGS[1], nframes),
            &responder,
        );
    }
    svc.drain();
    let seconds = start.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let got = lines.lock().clone();
    assert_eq!(got.len(), requests + 1, "every request must be answered");
    for l in &got {
        assert!(l.contains(r#""status":"ok""#), "unexpected response: {l}");
    }
    (requests as f64 / seconds, allocs / requests as u64)
}

/// Pool on vs pool off at one worker count, same repeat-shape traffic.
fn sustained_run(workers: usize, requests: usize, nframes: usize) -> SustainedRun {
    let (unpooled_rps, unpooled_allocs_per_req) = sustained_arm(workers, false, requests, nframes);
    let (pooled_rps, pooled_allocs_per_req) = sustained_arm(workers, true, requests, nframes);
    SustainedRun {
        workers,
        pooled_rps,
        unpooled_rps,
        pool_speedup: pooled_rps / unpooled_rps,
        pooled_allocs_per_req,
        unpooled_allocs_per_req,
    }
}

struct SlowClientRun {
    workers: usize,
    seconds: f64,
    throughput_rps: f64,
}

/// `clients` TCP clients each handshake with a ping (so a worker is
/// committed to the connection), think for `delay`, then send one
/// cheap (cache-warmed) request.
fn slow_client_run(workers: usize, clients: usize, delay: Duration) -> SlowClientRun {
    let svc = Arc::new(service(workers));
    // Warm the segment-cost cache so the request itself is cheap and
    // the measurement isolates connection concurrency.
    let (responder, lines) = Responder::collector();
    svc.handle_line(&sim_line("warm", MAPPINGS[0], 1), &responder);
    while lines.lock().is_empty() {
        std::thread::sleep(Duration::from_millis(1));
    }

    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
    let addr = server.local_addr();
    let stop = server.stop_handle();
    let server_thread = std::thread::spawn(move || server.run());

    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            std::thread::spawn(move || {
                let conn = TcpStream::connect(addr).expect("connect");
                let mut writer = conn.try_clone().expect("clone");
                let mut reader = BufReader::new(conn);
                // Handshake: the pong proves a pool worker is now
                // serving this connection...
                writeln!(writer, r#"{{"op":"ping","id":"hi"}}"#).unwrap();
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                assert!(reply.contains("pong"), "reply: {reply}");
                // ...which the client then pins through its think time
                // before sending the actual request.
                std::thread::sleep(delay);
                writeln!(writer, "{}", sim_line(&format!("s{i}"), MAPPINGS[0], 1)).unwrap();
                reply.clear();
                reader.read_line(&mut reply).unwrap();
                assert!(reply.contains(r#""status":"ok""#), "reply: {reply}");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let seconds = start.elapsed().as_secs_f64();
    stop.stop();
    server_thread.join().expect("server thread");
    SlowClientRun {
        workers,
        seconds,
        throughput_rps: clients as f64 / seconds,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requests = if quick { 8 } else { 24 };
    let nframes = 2;
    let clients = 8;
    let delay = Duration::from_millis(if quick { 100 } else { 250 });

    println!("serve_bench on {host_cpus} host cpu(s)");
    println!(
        "\ncompute: {requests} requests, nframes={nframes} (CPU-bound; scales with host cores)"
    );
    let compute: Vec<ComputeRun> = WORKER_COUNTS
        .iter()
        .map(|&w| {
            let r = compute_run(w, requests, nframes);
            println!(
                "  {w} worker(s): {:>6.2}s  {:>6.2} req/s  p50 {:>8.0}us  p99 {:>8.0}us",
                r.seconds, r.throughput_rps, r.p50_us, r.p99_us
            );
            r
        })
        .collect();

    println!("\ndeterminism: same batch at 1 vs 8 workers...");
    let payload_len = determinism_check();
    println!("  payloads bitwise identical ({payload_len} bytes)");

    println!(
        "\nsustained: {requests} repeat-shape requests, nframes={nframes}, pool on vs off \
         (trace cache off: the baseline is per-request construction)"
    );
    let sustained: Vec<SustainedRun> = [1, WORKER_COUNTS[2]]
        .iter()
        .map(|&w| {
            let r = sustained_run(w, requests, nframes);
            println!(
                "  {w} worker(s): pooled {:>7.2} req/s ({} allocs/req)  unpooled {:>7.2} req/s \
                 ({} allocs/req)  speedup {:.2}x",
                r.pooled_rps,
                r.pooled_allocs_per_req,
                r.unpooled_rps,
                r.unpooled_allocs_per_req,
                r.pool_speedup
            );
            r
        })
        .collect();
    // The pool's reason to exist: repeat-shape traffic must amortize
    // session setup at least 2x over per-request construction. The
    // 1-worker arm is the cleanest measurement (no scheduler noise).
    assert!(
        sustained[0].pool_speedup >= 2.0,
        "pooled repeat-shape traffic must be at least 2x per-request construction \
         (got {:.2}x)",
        sustained[0].pool_speedup
    );

    println!(
        "\nslow_clients: {clients} clients, {}ms think time on an open connection (I/O-bound; scales with workers)",
        delay.as_millis()
    );
    let slow: Vec<SlowClientRun> = [1, WORKER_COUNTS[2]]
        .iter()
        .map(|&w| {
            let r = slow_client_run(w, clients, delay);
            println!(
                "  {w} worker(s): {:>6.2}s  {:>6.2} req/s",
                r.seconds, r.throughput_rps
            );
            r
        })
        .collect();
    let speedup = slow[0].seconds / slow[1].seconds;
    println!("  8-worker vs 1-worker speedup: {speedup:.2}x");
    assert!(
        speedup >= 3.0,
        "8 workers must overlap slow clients at least 3x faster than 1 \
         (got {speedup:.2}x)"
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("host_cpus");
    w.value_u64(host_cpus as u64);
    w.key("quick");
    w.value_bool(quick);
    w.key("compute");
    w.begin_object();
    w.key("requests");
    w.value_u64(requests as u64);
    w.key("nframes");
    w.value_u64(nframes as u64);
    w.key("note");
    w.value_str("CPU-bound: scales with host cores, not workers; flat on a 1-cpu host");
    w.key("per_workers");
    w.begin_array();
    for r in &compute {
        w.begin_object();
        w.key("workers");
        w.value_u64(r.workers as u64);
        w.key("seconds");
        w.value_f64(r.seconds);
        w.key("throughput_rps");
        w.value_f64(r.throughput_rps);
        w.key("p50_us");
        w.value_f64(r.p50_us);
        w.key("p90_us");
        w.value_f64(r.p90_us);
        w.key("p99_us");
        w.value_f64(r.p99_us);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("determinism");
    w.begin_object();
    w.key("payloads_identical");
    w.value_bool(true);
    w.key("payload_bytes");
    w.value_u64(payload_len as u64);
    w.end_object();
    w.key("sustained");
    w.begin_object();
    w.key("requests");
    w.value_u64(requests as u64);
    w.key("nframes");
    w.value_u64(nframes as u64);
    w.key("note");
    w.value_str(
        "repeat-shape traffic, trace cache off: pooled forks a warmed snapshot, \
         unpooled pays per-request construction",
    );
    w.key("per_workers");
    w.begin_array();
    for r in &sustained {
        w.begin_object();
        w.key("workers");
        w.value_u64(r.workers as u64);
        w.key("pooled_rps");
        w.value_f64(r.pooled_rps);
        w.key("unpooled_rps");
        w.value_f64(r.unpooled_rps);
        w.key("pool_speedup");
        w.value_f64(r.pool_speedup);
        w.key("pooled_allocs_per_req");
        w.value_u64(r.pooled_allocs_per_req);
        w.key("unpooled_allocs_per_req");
        w.value_u64(r.unpooled_allocs_per_req);
        w.end_object();
    }
    w.end_array();
    w.key("meets_2x");
    w.value_bool(sustained[0].pool_speedup >= 2.0);
    w.end_object();
    // Scale-invariant ratios for bench_compare / the CI bench gate.
    w.key("benches");
    w.begin_array();
    for r in &sustained {
        w.begin_object();
        w.key("name");
        w.value_str(&format!("serve_sustained_w{}", r.workers));
        w.key("pool_speedup");
        w.value_f64(r.pool_speedup);
        w.end_object();
    }
    w.end_array();
    w.key("slow_clients");
    w.begin_object();
    w.key("clients");
    w.value_u64(clients as u64);
    w.key("client_delay_ms");
    w.value_u64(delay.as_millis() as u64);
    w.key("per_workers");
    w.begin_array();
    for r in &slow {
        w.begin_object();
        w.key("workers");
        w.value_u64(r.workers as u64);
        w.key("seconds");
        w.value_f64(r.seconds);
        w.key("throughput_rps");
        w.value_f64(r.throughput_rps);
        w.end_object();
    }
    w.end_array();
    w.key("speedup_8_vs_1");
    w.value_f64(speedup);
    w.key("meets_3x");
    w.value_bool(speedup >= 3.0);
    w.end_object();
    w.end_object();

    let dir = std::env::var("SCPERF_OBS_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_serve.json");
    std::fs::write(&path, w.finish()).expect("write BENCH_serve.json");
    println!("\nbench results -> {path}");
}
