//! Regenerates Table 2: HW estimation results (FIR and Euler).

fn main() {
    let rows = scperf_bench::tables::table2();
    println!(
        "{}",
        scperf_bench::tables::format_hw_table("Table 2. HW estimation results", &rows)
    );
}
