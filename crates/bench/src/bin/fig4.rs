//! Regenerates Figure 4: the area/time implementation-solution space.

fn main() {
    let figs = scperf_bench::figures::figure4();
    println!("{}", scperf_bench::figures::format_figure4(&figs));
}
