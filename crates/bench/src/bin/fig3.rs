//! Regenerates Figure 3: the worked delay-calculation example (75.8 cycles).

fn main() {
    println!("{}", scperf_bench::figures::figure3());
}
