//! Regenerates Table 1: SW estimation results for sequential benchmarks.

fn main() {
    let cal = scperf_bench::calibration::calibrate();
    println!("{cal}");
    let rows = scperf_bench::tables::table1(&cal, 3);
    println!("{}", scperf_bench::tables::format_table1(&rows));
    let max_err = rows.iter().map(|r| r.err_pct).fold(0.0_f64, f64::max);
    let min_gain = rows.iter().map(|r| r.gain).fold(f64::INFINITY, f64::min);
    let max_overhead = rows.iter().map(|r| r.overhead).fold(0.0_f64, f64::max);
    println!(
        "summary: max error {max_err:.2}% (paper: <4.5%), min gain {min_gain:.0}x (paper: >142x), max overhead {max_overhead:.0}x (paper: <73x)"
    );
}
