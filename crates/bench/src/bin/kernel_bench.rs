//! Kernel hot-path microbenchmarks: scheduler↔process handoff and the
//! timed-notification queue, measured under both handoff protocols.
//!
//! Usage:
//!
//! ```text
//! cargo run -p scperf-bench --release --bin kernel_bench -- [--reps N] [--quick]
//! ```
//!
//! Three kernels, each run under [`HandoffKind::CondvarBaton`] (the
//! original mutex+condvar run-baton) and [`HandoffKind::Direct`] (the
//! park/unpark direct handoff):
//!
//! * **pingpong** — two processes over a [`scperf_kernel::Rendezvous`];
//!   every transfer is a chain of scheduler↔process round trips, the
//!   purest handoff stressor.
//! * **fanout** — one notifier delta-firing a [`scperf_kernel::Event`]
//!   with many waiters; measures wakeup batching through the evaluate
//!   phase.
//! * **timer_storm** — many processes issuing dense `wait(time)` calls
//!   with colliding deadlines (plus a far-future tail beyond the time
//!   wheel's span); stresses the timed queue, not the handoff.
//!
//! Two further scenarios sweep the parallel evaluate phase
//! (`SimOptions::jobs`, see `docs/PARALLELISM.md`) at `jobs = 1` vs
//! `jobs = 8`:
//!
//! * **par_pairs** — 8 independent FIFO producer/consumer pairs with
//!   per-activation busy work; every delta is 16 processes wide.
//! * **par_fanout** — an event broadcast to 32 computing waiters; the
//!   waking delta is 32 processes wide.
//!
//! For every kernel the two protocols (and the two `jobs` values) must
//! produce the *same* [`SimSummary`] — the bench asserts this — so the
//! reported speedup is a pure host-time ratio at identical simulated
//! behaviour. Results go to `BENCH_kernel.json`.

use std::time::{Duration, Instant};

use scperf_kernel::{HandoffKind, SimOptions, SimSummary, Time};
use scperf_obs::json::JsonWriter;

struct Args {
    reps: usize,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 5,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .expect("--reps expects a positive integer");
            }
            "--quick" => args.quick = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Two processes rendezvous `iters` times. Each transfer blocks both
/// sides, so the activation count — and therefore the handoff count — is
/// proportional to `iters`. With `attribution` the kernel additionally
/// accounts per-process wait time and per-channel blocked time on every
/// one of those transfers — the worst case for the accounting.
fn pingpong(kind: HandoffKind, iters: u64, attribution: bool) -> (SimSummary, Duration) {
    let mut sim = SimOptions::new()
        .handoff(kind)
        .attribution(attribution)
        .build();
    let ch = sim.rendezvous::<u64>("pingpong");
    let tx = ch.clone();
    sim.spawn("ping", move |ctx| {
        for i in 0..iters {
            tx.write(ctx, i);
        }
    });
    let rx = ch;
    sim.spawn("pong", move |ctx| {
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(rx.read(ctx));
        }
        std::hint::black_box(acc);
    });
    let start = Instant::now();
    let summary = sim.run().expect("pingpong runs");
    (summary, start.elapsed())
}

/// One notifier delta-fires an event `rounds` times; `procs` waiters all
/// wake each round.
fn fanout(kind: HandoffKind, procs: usize, rounds: u64) -> (SimSummary, Duration) {
    let mut sim = SimOptions::new().handoff(kind).build();
    let ev = sim.event("broadcast");
    for p in 0..procs {
        let ev = ev.clone();
        sim.spawn(format!("waiter{p}"), move |ctx| {
            for _ in 0..rounds {
                ctx.wait_event(&ev);
            }
        });
    }
    sim.spawn("notifier", move |ctx| {
        for _ in 0..rounds {
            // The waiters are all parked by the time the notifier runs
            // (spawn order); the timed wait separates the rounds.
            ev.notify_delta();
            ctx.wait(Time::ns(1));
        }
    });
    let start = Instant::now();
    let summary = sim.run().expect("fanout runs");
    (summary, start.elapsed())
}

/// `procs` processes each issue `waits` timed waits with colliding
/// xorshift-derived deadlines, plus one far-future wait past the time
/// wheel's ~68.7 ms span to exercise the overflow path.
fn timer_storm(kind: HandoffKind, procs: usize, waits: u64) -> (SimSummary, Duration) {
    let mut sim = SimOptions::new().handoff(kind).build();
    for p in 0..procs {
        sim.spawn(format!("timer{p}"), move |ctx| {
            let mut x = p as u64 + 1;
            for _ in 0..waits {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // 0..=999 ps: dense, frequently colliding deadlines.
                ctx.wait(Time::ps(x % 1_000));
            }
            ctx.wait(Time::ms(80 + p as u64)); // overflow-map tail
        });
    }
    let start = Instant::now();
    let summary = sim.run().expect("timer storm runs");
    (summary, start.elapsed())
}

/// Busy-work standing in for a process body's computation: `rounds` of
/// xorshift on `x`. This is what the parallel evaluate phase can overlap
/// across workers.
fn spin(mut x: u64, rounds: u64) -> u64 {
    for _ in 0..rounds {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// `pairs` independent producer→FIFO→consumer pairs; every activation
/// burns `work` xorshift rounds. All pairs are runnable in the same
/// deltas, so the evaluate phase is `2 * pairs` wide — the shape the
/// parallel kernel (`SimOptions::jobs`) is built for.
fn par_pairs(jobs: usize, pairs: usize, iters: u64, work: u64) -> (SimSummary, Duration) {
    let mut sim = SimOptions::new().jobs(jobs).build();
    for p in 0..pairs {
        let ch = sim.fifo::<u64>(format!("ch{p}"), 4);
        let tx = ch.clone();
        sim.spawn(format!("prod{p}"), move |ctx| {
            for i in 0..iters {
                tx.write(ctx, spin(i + p as u64 + 1, work));
                ctx.wait(Time::ns(1));
            }
        });
        let rx = ch;
        sim.spawn(format!("cons{p}"), move |ctx| {
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(spin(rx.read(ctx), work));
            }
            std::hint::black_box(acc);
        });
    }
    let start = Instant::now();
    let summary = sim.run().expect("par_pairs runs");
    (summary, start.elapsed())
}

/// Wide fanout with per-waiter computation: one notifier delta-fires an
/// event `rounds` times and `procs` waiters each burn `work` xorshift
/// rounds per wake. The waking delta is `procs` wide.
fn par_fanout(jobs: usize, procs: usize, rounds: u64, work: u64) -> (SimSummary, Duration) {
    let mut sim = SimOptions::new().jobs(jobs).build();
    let ev = sim.event("broadcast");
    for p in 0..procs {
        let ev = ev.clone();
        sim.spawn(format!("waiter{p}"), move |ctx| {
            let mut acc = p as u64 + 1;
            for _ in 0..rounds {
                ctx.wait_event(&ev);
                acc = spin(acc, work);
            }
            std::hint::black_box(acc);
        });
    }
    sim.spawn("notifier", move |ctx| {
        for _ in 0..rounds {
            ev.notify_delta();
            ctx.wait(Time::ns(1));
        }
    });
    let start = Instant::now();
    let summary = sim.run().expect("par_fanout runs");
    (summary, start.elapsed())
}

/// Best-of-`reps` wall time (minimum is the standard microbench
/// estimator: noise only ever adds time).
fn measure(
    reps: usize,
    run: impl Fn(HandoffKind) -> (SimSummary, Duration),
    kind: HandoffKind,
) -> (SimSummary, Duration) {
    let mut best: Option<(SimSummary, Duration)> = None;
    for _ in 0..reps {
        let (summary, elapsed) = run(kind);
        match &best {
            Some((_, b)) if *b <= elapsed => {}
            _ => best = Some((summary, elapsed)),
        }
    }
    best.expect("reps > 0")
}

/// Best-of-`reps` for the jobs-parameterized parallel scenarios.
fn measure_par(
    reps: usize,
    run: impl Fn(usize) -> (SimSummary, Duration),
    jobs: usize,
) -> (SimSummary, Duration) {
    let mut best: Option<(SimSummary, Duration)> = None;
    for _ in 0..reps {
        let (summary, elapsed) = run(jobs);
        match &best {
            Some((_, b)) if *b <= elapsed => {}
            _ => best = Some((summary, elapsed)),
        }
    }
    best.expect("reps > 0")
}

struct ParResult {
    name: &'static str,
    summary: SimSummary,
    jobs1: Duration,
    jobs8: Duration,
}

impl ParResult {
    fn speedup(&self) -> f64 {
        self.jobs1.as_secs_f64() / self.jobs8.as_secs_f64()
    }
    fn activations_per_sec(&self, d: Duration) -> f64 {
        self.summary.activations as f64 / d.as_secs_f64()
    }
}

/// Runs a jobs-parameterized scenario at `jobs = 1` and `jobs = 8` and
/// asserts the determinism contract (`docs/PARALLELISM.md`): the two
/// summaries must be bit-identical, so the speedup is a pure host-time
/// ratio at identical simulated behaviour.
fn par_bench(
    name: &'static str,
    reps: usize,
    run: impl Fn(usize) -> (SimSummary, Duration),
) -> ParResult {
    let (sum_1, jobs1) = measure_par(reps, &run, 1);
    let (sum_8, jobs8) = measure_par(reps, &run, 8);
    assert_eq!(
        sum_1, sum_8,
        "{name}: parallel evaluation changed simulated behaviour"
    );
    let r = ParResult {
        name,
        summary: sum_8,
        jobs1,
        jobs8,
    };
    println!(
        "{:>12}: jobs=1  {:>9.2?}  jobs=8 {:>9.2?}  speedup {:>5.2}x  \
         ({} activations, {:.0}/s -> {:.0}/s)",
        r.name,
        r.jobs1,
        r.jobs8,
        r.speedup(),
        r.summary.activations,
        r.activations_per_sec(r.jobs1),
        r.activations_per_sec(r.jobs8),
    );
    r
}

struct BenchResult {
    name: &'static str,
    summary: SimSummary,
    condvar: Duration,
    direct: Duration,
}

impl BenchResult {
    fn speedup(&self) -> f64 {
        self.condvar.as_secs_f64() / self.direct.as_secs_f64()
    }
    fn activations_per_sec(&self, d: Duration) -> f64 {
        self.summary.activations as f64 / d.as_secs_f64()
    }
}

fn bench(
    name: &'static str,
    reps: usize,
    run: impl Fn(HandoffKind) -> (SimSummary, Duration),
) -> BenchResult {
    let (sum_c, condvar) = measure(reps, &run, HandoffKind::CondvarBaton);
    let (sum_d, direct) = measure(reps, &run, HandoffKind::Direct);
    assert_eq!(
        sum_c, sum_d,
        "{name}: protocols disagree on simulated behaviour"
    );
    let r = BenchResult {
        name,
        summary: sum_d,
        condvar,
        direct,
    };
    println!(
        "{:>12}: condvar {:>9.2?}  direct {:>9.2?}  speedup {:>5.2}x  \
         ({} activations, {:.0}/s -> {:.0}/s)",
        r.name,
        r.condvar,
        r.direct,
        r.speedup(),
        r.summary.activations,
        r.activations_per_sec(r.condvar),
        r.activations_per_sec(r.direct),
    );
    r
}

fn main() {
    let args = parse_args();
    let scale = if args.quick { 10 } else { 1 };
    let pingpong_iters = 200_000 / scale;
    let fanout_procs = 64;
    let fanout_rounds = 2_000 / scale;
    let storm_procs = 32;
    let storm_waits = 4_000 / scale;

    println!(
        "kernel hot-path microbench (best of {} reps{})",
        args.reps,
        if args.quick { ", quick" } else { "" }
    );

    let results = [
        bench("pingpong", args.reps, |k| {
            pingpong(k, pingpong_iters, false)
        }),
        bench("fanout", args.reps, |k| {
            fanout(k, fanout_procs, fanout_rounds)
        }),
        bench("timer_storm", args.reps, |k| {
            timer_storm(k, storm_procs, storm_waits)
        }),
    ];

    // Parallel-evaluate scenarios (SimOptions::jobs): wide deltas with
    // real per-activation computation, jobs = 1 vs jobs = 8. Both runs
    // must be bit-identical in simulated behaviour (asserted inside
    // par_bench); the speedup is meaningful only on a multi-core host.
    let par_results = [
        par_bench("par_pairs", args.reps, |j| {
            par_pairs(j, 8, 2_000 / scale, 2_000)
        }),
        par_bench("par_fanout", args.reps, |j| {
            par_fanout(j, 32, 500 / scale, 4_000)
        }),
    ];

    // Attribution overhead: the scheduling-state accounting rides the
    // handoff-heaviest kernel (pingpong, direct handoff). The baseline
    // is the attribution-off direct measurement above; the summaries
    // must stay bit-identical and the host-time overhead ≤ 5%.
    let (attr_sum, attr_time) = measure(
        args.reps,
        |k| pingpong(k, pingpong_iters, true),
        HandoffKind::Direct,
    );
    let base = &results[0];
    assert_eq!(
        attr_sum, base.summary,
        "pingpong: attribution changed simulated behaviour"
    );
    let attr_overhead = attr_time.as_secs_f64() / base.direct.as_secs_f64() - 1.0;
    println!(
        " attribution: off {:>9.2?}  on {:>9.2?}  overhead {:+.2}%",
        base.direct,
        attr_time,
        attr_overhead * 100.0
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("reps");
    w.value_u64(args.reps as u64);
    w.key("quick");
    w.value_bool(args.quick);
    w.key("attribution");
    w.begin_object();
    w.key("bench");
    w.value_str("pingpong/direct");
    w.key("off_seconds");
    w.value_f64(base.direct.as_secs_f64());
    w.key("on_seconds");
    w.value_f64(attr_time.as_secs_f64());
    w.key("overhead_pct");
    w.value_f64(attr_overhead * 100.0);
    w.key("summaries_identical");
    w.value_bool(true);
    w.end_object();
    w.key("benches");
    w.begin_array();
    for r in &results {
        w.begin_object();
        w.key("name");
        w.value_str(r.name);
        w.key("activations");
        w.value_u64(r.summary.activations);
        w.key("deltas");
        w.value_u64(r.summary.deltas);
        w.key("end_time_ps");
        w.value_u64(r.summary.end_time.as_ps());
        w.key("condvar_seconds");
        w.value_f64(r.condvar.as_secs_f64());
        w.key("direct_seconds");
        w.value_f64(r.direct.as_secs_f64());
        w.key("condvar_activations_per_sec");
        w.value_f64(r.activations_per_sec(r.condvar));
        w.key("direct_activations_per_sec");
        w.value_f64(r.activations_per_sec(r.direct));
        w.key("speedup");
        w.value_f64(r.speedup());
        w.key("summaries_identical");
        w.value_bool(true);
        w.end_object();
    }
    for r in &par_results {
        w.begin_object();
        w.key("name");
        w.value_str(r.name);
        w.key("activations");
        w.value_u64(r.summary.activations);
        w.key("deltas");
        w.value_u64(r.summary.deltas);
        w.key("end_time_ps");
        w.value_u64(r.summary.end_time.as_ps());
        w.key("jobs1_seconds");
        w.value_f64(r.jobs1.as_secs_f64());
        w.key("jobs8_seconds");
        w.value_f64(r.jobs8.as_secs_f64());
        w.key("jobs1_activations_per_sec");
        w.value_f64(r.activations_per_sec(r.jobs1));
        w.key("jobs8_activations_per_sec");
        w.value_f64(r.activations_per_sec(r.jobs8));
        w.key("speedup");
        w.value_f64(r.speedup());
        w.key("summaries_identical");
        w.value_bool(true);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    let dir = std::env::var("SCPERF_OBS_DIR").unwrap_or_else(|_| ".".into());
    let path = format!("{dir}/BENCH_kernel.json");
    std::fs::write(&path, w.finish()).expect("write BENCH_kernel.json");
    println!("bench results -> {path}");

    let pp = &results[0];
    assert!(
        pp.speedup() >= 1.0,
        "direct handoff should not be slower on pingpong (got {:.2}x)",
        pp.speedup()
    );
    if !args.quick {
        // Quick mode is a CI smoke run on loaded shared machines; the
        // overhead bound is only meaningful at full problem sizes.
        assert!(
            attr_overhead <= 0.05,
            "attribution accounting must cost <=5% on pingpong (got {:+.2}%)",
            attr_overhead * 100.0
        );
    }

    // The >=2x parallel-throughput bar only makes sense with real cores
    // to spread the evaluate phase over; on a 1-core host jobs = 8 is
    // pure overhead (the determinism assert above still ran).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !args.quick && cores >= 4 {
        for r in &par_results {
            assert!(
                r.speedup() >= 2.0,
                "{}: expected >=2x activation throughput at jobs=8 on a \
                 {cores}-core host (got {:.2}x)",
                r.name,
                r.speedup()
            );
        }
    } else {
        println!(
            " (parallel >=2x speedup bar skipped: {cores} core(s), quick={})",
            args.quick
        );
    }
}
