//! Regenerates Figure 5: untimed delta-cycle simulation vs strict-timed
//! simulation of the three-process example.

fn main() {
    let (untimed, timed) = scperf_bench::figures::figure5();
    println!("Figure 5a. Untimed (delta-cycle) simulation:\n{untimed}");
    println!("Figure 5b. Strict-timed simulation (P1 on HW; P2, P3 share cpu0):\n{timed}");
}
