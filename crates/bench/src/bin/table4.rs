//! Regenerates Table 4: HW estimation results for the vocoder
//! post-processing function.

fn main() {
    let rows = scperf_bench::tables::table4(2);
    println!(
        "{}",
        scperf_bench::tables::format_hw_table(
            "Table 4. HW estimation results for the vocoder",
            &rows
        )
    );
}
