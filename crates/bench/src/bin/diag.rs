//! Diagnostic: per-benchmark reference-ISS statistics (instructions,
//! CPI, cache misses) for the Table 1 workloads.

fn main() {
    for case in scperf_workloads::table1_cases() {
        let (_, stats) = case.run_iss();
        println!(
            "{:<12} instr {:>9} cyc {:>9} cpi {:.2} ic_miss {:>7} dc_miss {:>7} br {:>8}",
            case.name,
            stats.instructions,
            stats.cycles,
            stats.cpi(),
            stats.icache_misses,
            stats.dcache_misses,
            stats.branches_taken
        );
    }
}
