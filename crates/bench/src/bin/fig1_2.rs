//! Regenerates Figures 1 and 2: process segmentation and the process
//! graph (DOT).

fn main() {
    let (table, dot) = scperf_bench::figures::figure1_2();
    println!("{table}");
    println!("Figure 2. Process graph (Graphviz DOT):\n{dot}");
}
