//! The paper's figures, regenerated as text/DOT/CSV artifacts.

use std::fmt::Write as _;

use scperf_core::{
    g_i32, g_if, timed_wait, CostTable, Mode, Op, PerfModel, Platform, ProcessGraph, G,
};
use scperf_kernel::{Simulator, Time};

use crate::harness::CLOCK;

// ============================================================ Figure 1/2 ==

/// Builds the paper's Figure 1 example process — a cyclic process with two
/// channel reads, a conditional write and a timed wait — runs it, and
/// returns the segment table plus the DOT process graph (Figure 2).
pub fn figure1_2() -> (String, String) {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", CLOCK, CostTable::figure3(), 0.0);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let ch1 = model.fifo::<i32>(&mut sim, "ch1", 4);
    let ch2 = model.fifo::<i32>(&mut sim, "ch2", 4);

    const ITERS: usize = 8;
    // Environment: feeds ch1 and consumes/back-fills ch2.
    {
        let ch1 = ch1.clone();
        let ch2 = ch2.clone();
        sim.spawn("env", move |ctx| {
            for i in 0..ITERS {
                // Alternate the condition the process sees.
                ch1.raw().write(ctx, if i % 2 == 0 { 5 } else { -5 });
                if i % 2 == 0 {
                    let _ = ch2.raw().read(ctx); // consume the conditional write
                }
                ch2.raw().write(ctx, i as i32); // value for ch2.read()
            }
        });
    }
    // The Figure 1 process.
    {
        let ch1 = ch1.clone();
        let ch2 = ch2.clone();
        model.spawn(&mut sim, "process", cpu, move |ctx| {
            let delay1 = Time::ns(500);
            for _ in 0..ITERS {
                // code of segment S0-1 / S4-1 (common code omitted)
                let v = g_i32(ch1.read(ctx)); // N1
                let mut acc = g_i32(0);
                g_if!((v > 0) {
                    // code of segment S1-2
                    acc = acc + v * 3;
                    ch2.write(ctx, acc.get()); // N2
                    // code of segment S2-3
                    acc = acc - 1;
                });
                // common code to S1-3 / S2-3
                acc = acc + 7;
                timed_wait(ctx, delay1); // N3
                                         // code of segment S3-4
                let _ = acc * 2;
                let _ = ch2.read(ctx); // N4
            }
        });
    }
    sim.run().expect("figure 1 model runs");
    let report = model.report();
    let proc = report.process("process").expect("process reported");

    let mut table = String::new();
    let _ = writeln!(
        table,
        "Figure 1/2. Process segmentation of the example process ({ITERS} iterations)"
    );
    let _ = writeln!(
        table,
        "{:<24} {:>6} {:>12} {:>12} {:>12}",
        "segment (from -> to)", "execs", "mean cyc", "min cyc", "max cyc"
    );
    for s in &proc.segments {
        let mean = s.stats.total_cycles / s.stats.count as f64;
        let _ = writeln!(
            table,
            "{:<24} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            format!("{} -> {}", s.from, s.to),
            s.stats.count,
            mean,
            s.stats.min_cycles,
            s.stats.max_cycles
        );
    }
    let dot = ProcessGraph::from_report(proc).to_dot();
    (table, dot)
}

// ============================================================== Figure 3 ==

/// Reproduces the worked delay calculation of Figure 3 step by step,
/// returning the rendered walk. The final accumulated value must be the
/// paper's 75.8 cycles.
pub fn figure3() -> String {
    let table = CostTable::figure3();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3. Delay calculation (library parameters)");
    let _ = writeln!(out, "  t_=  = {}", table[Op::Assign]);
    let _ = writeln!(out, "  t_+  = {}", table[Op::Add]);
    let _ = writeln!(out, "  t_<  = {}", table[Op::Cmp]);
    let _ = writeln!(out, "  t_[] = {}", table[Op::Index]);
    let _ = writeln!(out, "  t_if = {}", table[Op::Branch]);
    let _ = writeln!(out, "  t_fc = {}", table[Op::Call]);
    let mut time = 0.0;
    let mut step = |label: &str, ops: &[Op], out: &mut String| {
        let add: f64 = ops.iter().map(|&o| table[o]).sum::<f64>() + 0.0;
        time += add;
        let _ = writeln!(out, "  {label:<24} time += {add:>5.1}  (= {time:.1})");
    };
    let _ = writeln!(out, "segment walk:");
    step("ch1.read();", &[], &mut out);
    step("if (i < 0)", &[Op::Branch, Op::Cmp], &mut out);
    step("    i = c + d;", &[Op::Assign, Op::Add], &mut out);
    step("datai = array[i];", &[Op::Assign, Op::Index], &mut out);
    step("datao = func(datai);", &[Op::Assign, Op::Call], &mut out);
    // func contributes 40.4 cycles: the argument copy (assign, 2) plus its
    // body: 1 branch + 1 compare + 5 index + 4 assign.
    step(
        "  (func body)",
        &[
            Op::Assign, // argument copy
            Op::Branch,
            Op::Cmp,
            Op::Index,
            Op::Assign,
            Op::Index,
            Op::Assign,
            Op::Index,
            Op::Assign,
            Op::Index,
            Op::Assign,
            Op::Index,
        ],
        &mut out,
    );
    let _ = writeln!(
        out,
        "  ch2.read();              final delay = {time:.1} cycles"
    );
    assert!((time - 75.8).abs() < 1e-9, "walk must total 75.8 cycles");
    out
}

// ============================================================== Figure 4 ==

/// One point of the Figure 4 solution space.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// ALU budget (0 = fully sequential single-ALU reference).
    pub alus: u32,
    /// Execution time (ns).
    pub time_ns: f64,
    /// Area (relative FU units).
    pub area: f64,
}

/// The Figure 4 data for one benchmark: the scheduler-derived area/time
/// curve plus the library's k-interpolated estimates.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Benchmark name.
    pub name: String,
    /// Scheduled implementation points, slowest (single-ALU) first.
    pub curve: Vec<Fig4Point>,
    /// `(k, estimated time ns)` samples of the library's weighted-mean
    /// annotation.
    pub k_sweep: Vec<(f64, f64)>,
}

/// Generates the Figure 4 solution space for the FIR sample kernel and the
/// Euler step.
pub fn figure4() -> Vec<Fig4> {
    let clock_ns = CLOCK.as_ns_f64();
    let mut result = Vec::new();
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, Box<dyn FnOnce() + Send>)> = vec![
        (
            "FIR",
            Box::new(|| {
                let _ = scperf_workloads::fir::annotated_one_sample(7);
            }),
        ),
        (
            "Euler",
            Box::new(|| {
                let _ = scperf_workloads::euler::step_annotated(
                    G::raw(0.4),
                    G::raw(-0.1),
                    G::raw(2.25),
                );
            }),
        ),
    ];
    for (name, body) in cases {
        let (dfg, t_min, t_max) = crate::harness::record_hw_dfg(CostTable::asic_hw(), body);
        let curve: Vec<Fig4Point> = scperf_hls::explore::tradeoff_curve(&dfg)
            .into_iter()
            .map(|p| Fig4Point {
                alus: p.alus,
                time_ns: p.cycles as f64 * clock_ns,
                area: p.area,
            })
            .collect();
        let k_sweep: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let k = i as f64 / 10.0;
                (
                    k,
                    scperf_core::weighted_hw_cycles(t_min, t_max, k) * clock_ns,
                )
            })
            .collect();
        result.push(Fig4 {
            name: name.to_owned(),
            curve,
            k_sweep,
        });
    }
    result
}

/// Renders the Figure 4 data as text (with embedded CSV blocks).
pub fn format_figure4(figs: &[Fig4]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4. Implementation solutions: area vs execution time"
    );
    for f in figs {
        let _ = writeln!(out, "\n[{}] scheduler curve (alus,time_ns,area):", f.name);
        for p in &f.curve {
            let _ = writeln!(out, "{},{:.0},{:.1}", p.alus, p.time_ns, p.area);
        }
        let _ = writeln!(out, "[{}] library k-sweep (k,time_ns):", f.name);
        for (k, t) in &f.k_sweep {
            let _ = writeln!(out, "{k:.1},{t:.0}");
        }
        let best = f.curve.last().expect("curve non-empty");
        let worst = f.curve.first().expect("curve non-empty");
        let _ = writeln!(
            out,
            "[{}] best case {:.0} ns (area {:.1}), worst case {:.0} ns (area {:.1})",
            f.name, best.time_ns, best.area, worst.time_ns, worst.area
        );
    }
    out
}

// ============================================================== Figure 5 ==

/// The Figure 5 reproduction: the same 3-process model simulated untimed
/// and strict-timed; returns both rendered traces.
///
/// P1 is mapped to a HW resource; P2 and P3 share one CPU. Untimed, the
/// three signal writes land in the same delta cycle; strict-timed, sg1/sg2
/// serialize on the CPU while sg4 runs in parallel on HW.
pub fn figure5() -> (String, String) {
    let run = |mode: Mode| -> Vec<scperf_kernel::TraceRecord> {
        let mut platform = Platform::new();
        let cpu = platform.sequential("cpu0 (SW)", CLOCK, CostTable::risc_sw(), 100.0);
        let hw = platform.parallel("res1 (HW)", CLOCK, CostTable::asic_hw(), 0.0);
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let model = PerfModel::new(platform, mode);
        let s1 = model.signal(&mut sim, "s1", 0_i32);
        let s2 = model.signal(&mut sim, "s2", 0_i32);
        let s3 = model.signal(&mut sim, "s3", 0_i32);
        // A dependent chain of adds: n cycles on the HW critical path,
        // n add-costs on a CPU.
        let burn = |n: u64| {
            let mut x = G::raw(0_i64);
            for _ in 0..n {
                x = x + G::raw(1);
            }
            let _ = x;
        };
        model.spawn(&mut sim, "P1", hw, move |ctx| {
            for i in 1..=3_i32 {
                burn(400); // sg4-like computation on HW
                s1.write(ctx, i);
                timed_wait(ctx, Time::ZERO); // delta separation, as in Fig. 5a
            }
        });
        model.spawn(&mut sim, "P2", cpu, move |ctx| {
            for i in 1..=3_i32 {
                burn(300); // sg1
                s2.write(ctx, i);
                timed_wait(ctx, Time::ZERO);
            }
        });
        model.spawn(&mut sim, "P3", cpu, move |ctx| {
            for i in 1..=3_i32 {
                burn(500); // sg2
                s3.write(ctx, i);
                timed_wait(ctx, Time::ZERO);
            }
        });
        sim.run().expect("figure 5 model runs");
        sim.take_trace()
    };
    let untimed = run(Mode::EstimateOnly);
    let timed = run(Mode::StrictTimed);
    (
        scperf_kernel::trace::render_timeline(&untimed),
        scperf_kernel::trace::render_timeline(&timed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_2_segments_cover_the_graph() {
        let (table, dot) = figure1_2();
        // All four nodes of Figure 2 appear.
        for node in ["ch1.read", "ch2.write", "wait", "ch2.read"] {
            assert!(dot.contains(node), "missing node {node} in:\n{dot}");
        }
        // Both the taken and not-taken paths were observed:
        // ch1.read -> ch2.write (S1-2) and ch1.read -> wait (S1-3).
        assert!(table.contains("ch1.read -> ch2.write"));
        assert!(table.contains("ch1.read -> wait"));
        assert!(table.contains("wait -> ch2.read"));
    }

    #[test]
    fn figure3_walk_reaches_75_8() {
        let walk = figure3();
        assert!(walk.contains("final delay = 75.8 cycles"));
        assert!(walk.contains("(= 5.4)"));
        assert!(walk.contains("(= 8.4)"));
        assert!(walk.contains("(= 15.4)"));
        assert!(walk.contains("(= 35.4)"));
    }

    #[test]
    fn figure4_curves_are_monotone_and_bracketing() {
        let figs = figure4();
        assert_eq!(figs.len(), 2);
        for f in &figs {
            assert!(f.curve.len() >= 2, "{}", f.name);
            // k sweep interpolates between the estimator's extremes.
            let (k0, t0) = f.k_sweep[0];
            let (k1, t1) = *f.k_sweep.last().unwrap();
            assert_eq!(k0, 0.0);
            assert_eq!(k1, 1.0);
            assert!(t0 <= t1);
            // Scheduler curve: time shrinks as ALUs grow.
            for w in f.curve.windows(2) {
                assert!(w[1].time_ns <= w[0].time_ns);
            }
        }
    }

    #[test]
    fn figure5_traces_differ_only_in_time() {
        let (untimed, timed) = figure5();
        // Untimed: everything in delta cycles at time 0.
        assert!(untimed
            .lines()
            .all(|l| l.is_empty() || l.starts_with("[0ps")));
        // Strict-timed: updates happen at non-zero times.
        assert!(timed
            .lines()
            .any(|l| !l.is_empty() && !l.starts_with("[0ps")));
        // Same functional content: each signal updated three times in both.
        for sig in ["s1=", "s2=", "s3="] {
            assert_eq!(untimed.matches(sig).count(), 3, "{sig} untimed");
            assert_eq!(timed.matches(sig).count(), 3, "{sig} timed");
        }
    }
}
