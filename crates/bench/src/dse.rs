//! Design-space exploration of the vocoder's architectural mapping — the
//! use case the paper's introduction motivates: "design flows based on
//! these SLDLs need new estimation techniques in order to allow a fast and
//! accurate design space exploration (DSE)".
//!
//! Every mapping of the five vocoder processes onto a platform of
//! {cpu0, cpu1, accelerator} is simulated strict-timed; each point reports
//! its end-to-end latency and a resource-cost proxy, and the Pareto
//! frontier is extracted.

use scperf_core::{CostTable, Mode, PerfModel, Platform, ResourceId};
use scperf_kernel::{Simulator, Time};
use scperf_workloads::vocoder::{
    self,
    pipeline::{VocoderMapping, STAGE_NAMES},
};

use crate::harness::{CLOCK, RTOS_CYCLES};

/// The three mapping targets explored per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// First processor.
    Cpu0,
    /// Second processor.
    Cpu1,
    /// Hardware accelerator (parallel resource, k = 0.5).
    Hw,
}

impl Target {
    /// All targets, in exploration order.
    pub const ALL: [Target; 3] = [Target::Cpu0, Target::Cpu1, Target::Hw];

    fn label(self) -> &'static str {
        match self {
            Target::Cpu0 => "cpu0",
            Target::Cpu1 => "cpu1",
            Target::Hw => "hw",
        }
    }

    /// Relative silicon/BOM cost of using this target at all.
    fn cost(self) -> f64 {
        match self {
            Target::Cpu0 => 1.0,
            Target::Cpu1 => 1.0,
            Target::Hw => 2.5,
        }
    }
}

/// One explored design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Per-process targets, in [`STAGE_NAMES`] order.
    pub mapping: [Target; 5],
    /// Simulated end-to-end time for the workload.
    pub latency: Time,
    /// Cost proxy: the summed cost of every *used* target.
    pub cost: f64,
}

impl DesignPoint {
    /// Renders the mapping compactly, e.g. `cpu0/cpu0/hw/cpu1/cpu0`.
    pub fn mapping_label(&self) -> String {
        self.mapping
            .iter()
            .map(|t| t.label())
            .collect::<Vec<_>>()
            .join("/")
    }
}

fn build_platform(table: &CostTable) -> (Platform, [ResourceId; 3]) {
    let mut platform = Platform::new();
    let cpu0 = platform.sequential("cpu0", CLOCK, table.clone(), RTOS_CYCLES);
    let cpu1 = platform.sequential("cpu1", CLOCK, table.clone(), RTOS_CYCLES);
    let hw = platform.parallel("hw", CLOCK, CostTable::asic_hw(), 0.5);
    (platform, [cpu0, cpu1, hw])
}

/// Simulates one mapping and returns its design point.
pub fn evaluate(table: &CostTable, mapping: [Target; 5], nframes: usize) -> DesignPoint {
    let (platform, ids) = build_platform(table);
    let pick = |t: Target| match t {
        Target::Cpu0 => ids[0],
        Target::Cpu1 => ids[1],
        Target::Hw => ids[2],
    };
    let vm = VocoderMapping {
        lsp: pick(mapping[0]),
        lpc_int: pick(mapping[1]),
        acb: pick(mapping[2]),
        icb: pick(mapping[3]),
        post: pick(mapping[4]),
    };
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::StrictTimed);
    let _ = vocoder::pipeline::build(&mut sim, &model, vm, nframes);
    let summary = sim.run().expect("mapping simulates");
    let mut cost = 0.0;
    for t in Target::ALL {
        if mapping.contains(&t) {
            cost += t.cost();
        }
    }
    DesignPoint {
        mapping,
        latency: summary.end_time,
        cost,
    }
}

/// Exhaustively explores all 3^5 mappings.
pub fn explore_all(table: &CostTable, nframes: usize) -> Vec<DesignPoint> {
    let mut points = Vec::with_capacity(243);
    for a in Target::ALL {
        for b in Target::ALL {
            for c in Target::ALL {
                for d in Target::ALL {
                    for e in Target::ALL {
                        points.push(evaluate(table, [a, b, c, d, e], nframes));
                    }
                }
            }
        }
    }
    points
}

/// The Pareto frontier over (latency, cost), sorted by latency.
pub fn pareto(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = Vec::new();
    for p in points {
        if points.iter().any(|q| {
            (q.latency < p.latency && q.cost <= p.cost)
                || (q.latency <= p.latency && q.cost < p.cost)
        }) {
            continue;
        }
        if !frontier
            .iter()
            .any(|f| f.latency == p.latency && f.cost == p.cost)
        {
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| a.latency.cmp(&b.latency).then(a.cost.total_cmp(&b.cost)));
    frontier
}

/// Renders the exploration summary.
pub fn format_summary(points: &[DesignPoint], nframes: usize) -> String {
    use std::fmt::Write;
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by_key(|p| p.latency);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Design-space exploration: {} mappings of {{{}}} onto {{cpu0, cpu1, hw}}, {nframes} frames",
        points.len(),
        STAGE_NAMES.join(", ")
    );
    let _ = writeln!(out, "\nfastest 5 mappings:");
    for p in sorted.iter().take(5) {
        let _ = writeln!(
            out,
            "  {:<28} latency {:>14}  cost {:>4.1}",
            p.mapping_label(),
            p.latency.to_string(),
            p.cost
        );
    }
    let _ = writeln!(out, "\nall-SW baseline and extremes:");
    let all_cpu0 = points
        .iter()
        .find(|p| p.mapping.iter().all(|&t| t == Target::Cpu0))
        .expect("exhaustive sweep");
    let _ = writeln!(
        out,
        "  {:<28} latency {:>14}  cost {:>4.1}",
        all_cpu0.mapping_label(),
        all_cpu0.latency.to_string(),
        all_cpu0.cost
    );
    let _ = writeln!(out, "\nPareto frontier (latency vs cost):");
    for p in pareto(points) {
        let _ = writeln!(
            out,
            "  {:<28} latency {:>14}  cost {:>4.1}",
            p.mapping_label(),
            p.latency.to_string(),
            p.cost
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_evaluates_and_prices_resources() {
        let table = CostTable::risc_sw();
        let p = evaluate(&table, [Target::Cpu0; 5], 2);
        assert!(p.latency > Time::ZERO);
        assert_eq!(p.cost, 1.0);
        let q = evaluate(
            &table,
            [
                Target::Cpu0,
                Target::Cpu1,
                Target::Hw,
                Target::Cpu0,
                Target::Cpu1,
            ],
            2,
        );
        assert_eq!(q.cost, 4.5);
        assert_eq!(q.mapping_label(), "cpu0/cpu1/hw/cpu0/cpu1");
    }

    #[test]
    fn offloading_the_acb_beats_all_sw() {
        let table = CostTable::risc_sw();
        let all_sw = evaluate(&table, [Target::Cpu0; 5], 2);
        let mut offloaded = [Target::Cpu0; 5];
        offloaded[2] = Target::Hw; // ACB search
        let point = evaluate(&table, offloaded, 2);
        assert!(point.latency < all_sw.latency);
    }

    #[test]
    fn pareto_is_nondominated_subset() {
        let table = CostTable::risc_sw();
        let points: Vec<DesignPoint> = [
            [Target::Cpu0; 5],
            {
                let mut m = [Target::Cpu0; 5];
                m[2] = Target::Hw;
                m
            },
            {
                let mut m = [Target::Cpu0; 5];
                m[2] = Target::Cpu1;
                m
            },
        ]
        .into_iter()
        .map(|m| evaluate(&table, m, 2))
        .collect();
        let frontier = pareto(&points);
        assert!(!frontier.is_empty());
        for f in &frontier {
            for p in &points {
                let dominated = p.latency < f.latency && p.cost <= f.cost;
                assert!(
                    !dominated,
                    "{} dominated by {}",
                    f.mapping_label(),
                    p.mapping_label()
                );
            }
        }
    }
}
