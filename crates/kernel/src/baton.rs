//! The original mutex+condvar run-baton, kept as the debugging fallback
//! behind [`crate::HandoffKind::CondvarBaton`] (and as the default when
//! the `condvar-baton` cargo feature is enabled).
//!
//! Exactly one of {scheduler, some process} runs at any instant, which is
//! what makes the kernel's cooperative semantics identical to SystemC's
//! coroutine-based processes even though each process lives on its own OS
//! thread. The hot-path replacement — a lock-free direct handoff on
//! `std::thread::park`/`unpark` — lives in [`crate::handoff`]; this module
//! also hosts the kill-unwind machinery both protocols share.

use std::cell::Cell;
use std::sync::Once;

use scperf_sync::{Condvar, Mutex};

/// Where a process thread currently stands in the baton protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RunState {
    /// Parked: waiting for the scheduler to hand over the baton.
    Waiting,
    /// Holds the baton and is executing user code.
    Running,
    /// The process function returned or panicked; the thread is exiting.
    /// Carries the panic message if it panicked.
    Done(Option<String>),
    /// The simulator is shutting down; the thread must unwind and exit.
    Kill,
}

/// One baton per process; both the scheduler and the process thread hold an
/// `Arc` to it.
#[derive(Debug)]
pub(crate) struct CondvarBaton {
    state: Mutex<RunState>,
    cv: Condvar,
}

impl CondvarBaton {
    pub(crate) fn new() -> CondvarBaton {
        CondvarBaton {
            state: Mutex::new(RunState::Waiting),
            cv: Condvar::new(),
        }
    }

    /// Scheduler side: hand the baton to the process and block until it
    /// comes back. Returns the state observed when the baton returned
    /// (`Waiting` after a yield, `Done` after termination).
    pub(crate) fn dispatch(&self) -> RunState {
        let mut st = self.state.lock();
        debug_assert!(matches!(*st, RunState::Waiting));
        *st = RunState::Running;
        self.cv.notify_all();
        while matches!(*st, RunState::Running) {
            self.cv.wait(&mut st);
        }
        st.clone()
    }

    /// Process side: give the baton back to the scheduler and block until
    /// it is handed over again.
    ///
    /// # Panics
    ///
    /// Unwinds with [`KillToken`] when the simulator is shutting down.
    pub(crate) fn yield_to_scheduler(&self) {
        let mut st = self.state.lock();
        *st = RunState::Waiting;
        self.cv.notify_all();
        self.block_until_running(&mut st);
    }

    /// Process side: initial park before the body has ever run. Returns
    /// `false` when the thread was killed before ever being dispatched.
    pub(crate) fn wait_first_dispatch(&self) -> bool {
        let mut st = self.state.lock();
        loop {
            match *st {
                RunState::Running => return true,
                RunState::Kill => return false,
                _ => self.cv.wait(&mut st),
            }
        }
    }

    /// Process side: report termination (normal or panicked) and release
    /// the baton forever.
    pub(crate) fn finish(&self, panic_msg: Option<String>) {
        let mut st = self.state.lock();
        *st = RunState::Done(panic_msg);
        self.cv.notify_all();
    }

    /// Scheduler side: order the thread to unwind. Harmless if the thread
    /// already finished.
    pub(crate) fn kill(&self) {
        let mut st = self.state.lock();
        if !matches!(*st, RunState::Done(_)) {
            *st = RunState::Kill;
        }
        self.cv.notify_all();
    }

    fn block_until_running(&self, st: &mut scperf_sync::MutexGuard<'_, RunState>) {
        loop {
            match **st {
                RunState::Running => return,
                RunState::Kill => {
                    kill_unwind();
                }
                _ => self.cv.wait(st),
            }
        }
    }
}

/// Panic payload used to unwind a process thread during simulator teardown.
/// Never escapes the crate: the thread wrapper catches it.
pub(crate) struct KillToken;

thread_local! {
    static SUPPRESS_PANIC_HOOK: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for our internal kill-unwind, while delegating
/// every genuine panic to the previously installed hook.
pub(crate) fn install_silent_kill_hook() {
    HOOK_INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESS_PANIC_HOOK.with(Cell::get) {
                return;
            }
            prev(info);
        }));
    });
}

/// Unwinds the calling process thread with a [`KillToken`], suppressing
/// the default panic report. Any lock guards are released by the unwind.
pub(crate) fn kill_unwind() -> ! {
    SUPPRESS_PANIC_HOOK.with(|c| c.set(true));
    std::panic::panic_any(KillToken);
}

/// Runs after `catch_unwind` on the process thread to re-enable panic
/// reporting for any later panic on this thread.
pub(crate) fn clear_panic_suppression() {
    SUPPRESS_PANIC_HOOK.with(|c| c.set(false));
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn baton_round_trip() {
        let baton = Arc::new(CondvarBaton::new());
        let b2 = Arc::clone(&baton);
        let t = thread::spawn(move || {
            assert!(b2.wait_first_dispatch());
            b2.yield_to_scheduler();
            b2.finish(None);
        });
        assert_eq!(baton.dispatch(), RunState::Waiting);
        assert_eq!(baton.dispatch(), RunState::Done(None));
        t.join().unwrap();
    }

    #[test]
    fn kill_before_first_dispatch() {
        let baton = Arc::new(CondvarBaton::new());
        let b2 = Arc::clone(&baton);
        let t = thread::spawn(move || b2.wait_first_dispatch());
        baton.kill();
        assert!(!t.join().unwrap());
    }

    #[test]
    fn panic_message_extracts_strings() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("bang"));
        assert_eq!(panic_message(payload.as_ref()), "bang");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
