//! Kernel-side simulator configuration: the [`SimOptions`] builder.
//!
//! Historically the knobs of a [`Simulator`](crate::Simulator) were
//! scattered over dedicated constructors and setters
//! (`Simulator::with_handoff`, `enable_tracing`, `enable_tracing_ring`,
//! `set_trace_sink`). `SimOptions` folds them into one value that can be
//! built up, passed around and handed to
//! [`Simulator::with_options`](crate::Simulator::with_options) — it is
//! also the kernel half of the full-stack `scperf_core::SimConfig`
//! builder, which threads an options value through to the kernel when a
//! session is built.

use scperf_obs::TraceSink;

use crate::handoff::HandoffKind;
use crate::sim::Simulator;

/// How the kernel records trace events.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No event recording (the default; fastest).
    #[default]
    Off,
    /// Record every event into an unbounded in-memory buffer.
    Unbounded,
    /// Record into a ring buffer keeping roughly the last `n` events —
    /// bounded memory for long simulations.
    Ring(usize),
}

/// Kernel-level simulator options.
///
/// Collects the scheduler↔process handoff protocol and the trace-sink
/// wiring in one builder. Construct with [`SimOptions::new`], chain the
/// setters, and either call [`SimOptions::build`] or pass the value to
/// [`Simulator::with_options`].
///
/// # Examples
///
/// ```
/// use scperf_kernel::{HandoffKind, SimOptions, TraceMode};
///
/// let mut sim = SimOptions::new()
///     .handoff(HandoffKind::Direct)
///     .tracing(TraceMode::Ring(1024))
///     .build();
/// sim.spawn("p", |ctx| ctx.wait(scperf_kernel::Time::ns(1)));
/// sim.run()?;
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
pub struct SimOptions {
    pub(crate) handoff: HandoffKind,
    pub(crate) trace: TraceMode,
    pub(crate) sink: Option<Box<dyn TraceSink>>,
    pub(crate) attribution: bool,
    pub(crate) jobs: usize,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions::new()
    }
}

impl SimOptions {
    /// Default options: the default handoff protocol
    /// ([`HandoffKind::default_kind`], which honours the
    /// `SCPERF_HANDOFF` environment variable and the `condvar-baton`
    /// feature) and no tracing.
    pub fn new() -> SimOptions {
        SimOptions {
            handoff: HandoffKind::default_kind(),
            trace: TraceMode::Off,
            sink: None,
            attribution: false,
            jobs: 1,
        }
    }

    /// Sets the evaluate-phase parallelism degree. The default, `1`, is
    /// the sequential single-baton scheduler, preserved verbatim. With
    /// `jobs > 1` each delta cycle's runnable processes are dispatched
    /// concurrently across `jobs` threads (the scheduler plus a lazily
    /// created `jobs - 1`-worker pool); their kernel side effects are
    /// buffered per process and committed in canonical pid order at the
    /// delta boundary, so summaries, metrics and traces stay
    /// bit-identical to `jobs = 1` for determinate models. `0` is
    /// treated as `1`. Non-determinate constructs (conflicting
    /// same-delta channel accesses) are reported as
    /// [`SimError::NonDeterminate`](crate::SimError::NonDeterminate)
    /// instead of racing. See `docs/PARALLELISM.md`.
    ///
    /// # Examples
    ///
    /// ```
    /// use scperf_kernel::{SimOptions, Time};
    ///
    /// let mut sim = SimOptions::new().jobs(8).build();
    /// let fifo = sim.fifo::<u32>("data", 4);
    /// let (tx, rx) = (fifo.clone(), fifo);
    /// sim.spawn("producer", move |ctx| {
    ///     for i in 0..16 {
    ///         tx.write(ctx, i);
    ///         ctx.wait(Time::ns(5));
    ///     }
    /// });
    /// sim.spawn("consumer", move |ctx| {
    ///     for _ in 0..16 {
    ///         let _ = rx.read(ctx);
    ///     }
    /// });
    /// // Bit-identical to the same model run with jobs = 1.
    /// let summary = sim.run()?;
    /// assert_eq!(summary.end_time, Time::ns(80));
    /// # Ok::<(), scperf_kernel::SimError>(())
    /// ```
    pub fn jobs(mut self, jobs: usize) -> SimOptions {
        self.jobs = jobs.max(1);
        self
    }

    /// Selects the scheduler↔process handoff protocol.
    /// [`HandoffKind::Direct`] is the fast path;
    /// [`HandoffKind::CondvarBaton`] is the original mutex+condvar
    /// protocol kept for debugging and A/B benchmarking. Both produce
    /// bit-identical traces.
    pub fn handoff(mut self, kind: HandoffKind) -> SimOptions {
        self.handoff = kind;
        self
    }

    /// Selects the trace recording mode (ignored when a custom sink is
    /// installed with [`SimOptions::trace_sink`]).
    pub fn tracing(mut self, mode: TraceMode) -> SimOptions {
        self.trace = mode;
        self
    }

    /// Enables scheduling-state attribution: per-process waiting-time
    /// accounting and per-channel queue-depth/blocked-time counters in
    /// *simulated* time, surfaced through
    /// [`Simulator::sched_stats`](crate::Simulator::sched_stats) and
    /// the `kernel.sched.*` metrics. Attribution is measurement-only:
    /// simulated behaviour is bit-identical whether it is on or off.
    pub fn attribution(mut self, enable: bool) -> SimOptions {
        self.attribution = enable;
        self
    }

    /// Installs a custom [`TraceSink`] (streaming writer, aggregator,
    /// …), replacing the built-in memory sinks of
    /// [`SimOptions::tracing`].
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> SimOptions {
        self.sink = Some(sink);
        self
    }

    /// Builds the simulator (equivalent to
    /// [`Simulator::with_options`]).
    pub fn build(self) -> Simulator {
        Simulator::with_options(self)
    }
}

impl std::fmt::Debug for SimOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimOptions")
            .field("handoff", &self.handoff)
            .field("trace", &self.trace)
            .field("sink", &self.sink.as_ref().map(|_| "custom"))
            .field("attribution", &self.attribution)
            .field("jobs", &self.jobs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn options_thread_handoff_and_tracing_into_the_simulator() {
        let mut sim = SimOptions::new()
            .handoff(HandoffKind::CondvarBaton)
            .tracing(TraceMode::Unbounded)
            .build();
        assert_eq!(sim.handoff_kind(), HandoffKind::CondvarBaton);
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(1));
            ctx.emit_trace("mark", "x");
        });
        sim.run().unwrap();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].label, "mark");
    }

    #[test]
    fn ring_mode_bounds_the_buffer() {
        let mut sim = SimOptions::new().tracing(TraceMode::Ring(4)).build();
        sim.spawn("p", |ctx| {
            for i in 0..64 {
                ctx.emit_trace("tick", i.to_string());
            }
        });
        sim.run().unwrap();
        let table = sim.take_events();
        assert!(table.events.len() <= 8, "ring must bound the buffer");
        assert!(table.dropped > 0);
    }

    #[test]
    fn default_options_match_plain_new() {
        let sim = SimOptions::new().build();
        assert_eq!(sim.handoff_kind(), HandoffKind::default_kind());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_handoff_still_forwards() {
        let sim = Simulator::with_handoff(HandoffKind::CondvarBaton);
        assert_eq!(sim.handoff_kind(), HandoffKind::CondvarBaton);
    }
}
