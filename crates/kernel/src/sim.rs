//! The simulator: elaboration (spawning processes, creating channels) and
//! the scheduler loop.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use scperf_obs::{MemorySink, MetricsSnapshot, TraceSink, TraceTable};

use crate::baton::{
    clear_panic_suppression, install_silent_kill_hook, panic_message, KillToken, RunState,
};
use crate::config::{SimOptions, TraceMode};
use crate::event::Event;
use crate::handoff::{Baton, HandoffKind};
use crate::parallel::Effect;
use crate::process::{ProcCtx, ProcId};
use crate::state::{AdvanceOutcome, ProcMeta, SchedSnapshot, Shared};
use crate::time::Time;
use crate::trace::TraceRecord;

/// Why a call to [`Simulator::run`] / [`Simulator::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No runnable processes and no pending notifications remain.
    EventsExhausted,
    /// The time limit passed to [`Simulator::run_until`] was reached.
    TimeLimit,
}

/// Statistics describing a finished (or paused) simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSummary {
    /// Simulation time when the run stopped.
    pub end_time: Time,
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Total process activations (dispatches).
    pub activations: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// Errors surfaced by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process body panicked; carries the process name and panic message.
    ProcessPanic {
        /// Name of the panicking process.
        process: String,
        /// Stringified panic payload.
        message: String,
    },
    /// Parallel evaluation (`jobs > 1`) detected a construct whose
    /// outcome depends on process execution order within one delta
    /// cycle — conflicting same-delta channel accesses (two writers on
    /// a signal, two readers on a fifo) or an immediate notification
    /// with live waiters. Such a model is not a *determinate
    /// specification* in the sense of the paper's §4, so instead of
    /// silently racing the kernel stops and reports it. The simulator
    /// is poisoned afterwards. See `docs/PARALLELISM.md`.
    NonDeterminate {
        /// Human-readable description of the conflicting construct.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProcessPanic { process, message } => {
                write!(f, "process '{process}' panicked: {message}")
            }
            SimError::NonDeterminate { detail } => {
                write!(
                    f,
                    "non-determinate construct under parallel evaluation: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

struct ProcHandle {
    baton: Arc<Baton>,
    thread: Option<JoinHandle<()>>,
}

/// A discrete-event simulator with SystemC semantics.
///
/// Elaborate the model by spawning processes ([`Simulator::spawn`]) and
/// creating channels, then call [`Simulator::run`]. Each process runs on its
/// own OS thread but the kernel hands out a single run-baton, so execution
/// is cooperative and deterministic: within a delta cycle, runnable
/// processes execute in spawn order.
///
/// # Examples
///
/// ```
/// use scperf_kernel::{Simulator, Time};
///
/// let mut sim = Simulator::new();
/// let fifo = sim.fifo::<u32>("data", 2);
/// let (tx, rx) = (fifo.clone(), fifo);
/// sim.spawn("producer", move |ctx| {
///     for i in 0..4 {
///         tx.write(ctx, i);
///     }
/// });
/// sim.spawn("consumer", move |ctx| {
///     let mut sum = 0;
///     for _ in 0..4 {
///         sum += rx.read(ctx);
///     }
///     assert_eq!(sum, 6);
/// });
/// let summary = sim.run()?;
/// assert_eq!(summary.end_time, Time::ZERO); // untimed model: all in delta cycles
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
pub struct Simulator {
    shared: Arc<Shared>,
    procs: Vec<ProcHandle>,
    errored: bool,
    handoff: HandoffKind,
    /// Accumulated process→scheduler resume latency (direct handoff
    /// only), exported through [`Simulator::metrics`].
    handoff_resume_nanos: u64,
    handoff_resumes: u64,
    /// Evaluate-phase parallelism degree; 1 = the sequential baton
    /// path, preserved verbatim.
    jobs: usize,
    /// Lazily created dispatcher pool for parallel rounds (`jobs - 1`
    /// workers; the scheduler thread runs the first chunk inline).
    pool: Option<scperf_sync::WorkerPool>,
}

impl Simulator {
    /// Creates an empty simulator using the default handoff protocol
    /// ([`HandoffKind::default_kind`]).
    pub fn new() -> Simulator {
        Simulator::new_with_handoff(HandoffKind::default_kind())
    }

    /// Creates an empty simulator from a [`SimOptions`] value: the
    /// handoff protocol plus the trace-sink wiring, in one place. This
    /// is the constructor the `scperf_core::SimConfig` session builder
    /// threads its kernel half through.
    pub fn with_options(options: SimOptions) -> Simulator {
        let mut sim = Simulator::new_with_handoff(options.handoff);
        sim.set_jobs(options.jobs);
        if options.attribution {
            sim.set_attribution(true);
        }
        match options.sink {
            Some(sink) => sim.set_trace_sink(sink),
            None => match options.trace {
                TraceMode::Off => {}
                TraceMode::Unbounded => sim.enable_tracing(),
                TraceMode::Ring(n) => sim.enable_tracing_ring(n),
            },
        }
        sim
    }

    /// Creates an empty simulator with an explicit scheduler↔process
    /// handoff protocol. [`HandoffKind::Direct`] is the fast path;
    /// [`HandoffKind::CondvarBaton`] is the original mutex+condvar
    /// protocol, kept for debugging and as the A/B baseline of the
    /// kernel microbenches. Both produce bit-identical traces.
    #[deprecated(
        since = "0.4.0",
        note = "use `SimOptions::new().handoff(kind).build()` (or the \
                `scperf_core::SimConfig` session builder)"
    )]
    pub fn with_handoff(kind: HandoffKind) -> Simulator {
        Simulator::new_with_handoff(kind)
    }

    fn new_with_handoff(kind: HandoffKind) -> Simulator {
        install_silent_kill_hook();
        Simulator {
            shared: Shared::new(),
            procs: Vec::new(),
            errored: false,
            handoff: kind,
            handoff_resume_nanos: 0,
            handoff_resumes: 0,
            jobs: 1,
            pool: None,
        }
    }

    /// The handoff protocol this simulator dispatches processes with.
    pub fn handoff_kind(&self) -> HandoffKind {
        self.handoff
    }

    /// Sets the evaluate-phase parallelism degree (normally through
    /// [`SimOptions::jobs`]). `0` is treated as `1`. With `jobs > 1`
    /// each delta's runnable set is partitioned across dispatcher
    /// threads and process side effects are committed in canonical
    /// pid order at the delta boundary, keeping results bit-identical
    /// to `jobs = 1` for determinate models — see `docs/PARALLELISM.md`.
    /// Call before `run`.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// The configured evaluate-phase parallelism degree.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Spawns a process (the analogue of `SC_THREAD`). The body runs when
    /// the simulation starts and the process terminates when it returns.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        let name = name.into();
        let pid = self.shared.with_state(|st| {
            assert!(
                !st.started,
                "processes must be spawned before the simulation starts"
            );
            st.procs.push(ProcMeta::new(name.clone()));
            st.procs.len() - 1
        });
        let baton = Arc::new(Baton::new(self.handoff));
        let mut ctx = ProcCtx {
            pid,
            shared: Arc::clone(&self.shared),
            baton: Arc::clone(&baton),
        };
        let thread_baton = Arc::clone(&baton);
        let thread = std::thread::Builder::new()
            .name(format!("scperf-proc-{name}"))
            .spawn(move || {
                // Mark this OS thread as pid's, so `Event::notify_*`
                // (which carry no ProcCtx) can route buffered effects
                // to the right log during parallel rounds.
                crate::parallel::set_current_pid(pid);
                if !thread_baton.wait_first_dispatch() {
                    return; // killed before ever running
                }
                let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                clear_panic_suppression();
                let msg = match result {
                    Ok(()) => None,
                    Err(payload) if payload.is::<KillToken>() => return,
                    Err(payload) => Some(panic_message(payload.as_ref())),
                };
                thread_baton.finish(msg);
            })
            .expect("failed to spawn process thread");
        baton.set_proc_thread(thread.thread().clone());
        self.procs.push(ProcHandle {
            baton,
            thread: Some(thread),
        });
        ProcId(pid)
    }

    /// Creates a named event (for testbench components and channels).
    pub fn event(&mut self, name: impl Into<String>) -> Event {
        Event::new(Arc::clone(&self.shared), name)
    }

    /// Enables trace recording into an unbounded in-memory sink. Call
    /// before `run`.
    pub fn enable_tracing(&mut self) {
        if !self.shared.tracing_fast() {
            self.shared.set_sink(Some(Box::new(MemorySink::new())));
        }
    }

    /// Enables trace recording into a ring buffer keeping roughly the
    /// last `max_events` events — bounded memory for long simulations.
    pub fn enable_tracing_ring(&mut self, max_events: usize) {
        self.shared
            .set_sink(Some(Box::new(MemorySink::ring(max_events))));
    }

    /// Installs a custom [`TraceSink`] (streaming writer, aggregator,
    /// …). Replaces any previous sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.shared.set_sink(Some(sink));
    }

    /// Disables tracing and returns the installed sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.shared.take_sink()
    }

    /// Takes the recorded trace as legacy string-based records (a view
    /// materialized from the compact event buffer). Tracing stays
    /// enabled with a fresh buffer.
    ///
    /// Returns an empty vector when tracing is disabled or a custom
    /// (non-memory) sink is installed.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        let table = self.take_events();
        table
            .events
            .iter()
            .map(|ev| crate::trace::materialize_record(&table, ev))
            .collect()
    }

    /// Takes the recorded trace as a detached [`TraceTable`] (compact
    /// events plus string table and process names). Tracing stays
    /// enabled with a fresh buffer.
    pub fn take_events(&mut self) -> TraceTable {
        self.shared.with_state(|st| {
            let (events, dropped) = match st.sink.as_mut().and_then(|s| s.as_memory()) {
                Some(mem) => {
                    let dropped = mem.dropped();
                    (mem.drain(), dropped)
                }
                None => (Vec::new(), 0),
            };
            TraceTable {
                events,
                strings: st.interner.snapshot(),
                process_names: st.procs.iter().map(|p| p.name.clone()).collect(),
                dropped,
            }
        })
    }

    /// Snapshots the kernel's metrics (delta cycles, context switches,
    /// notification counts, per-channel access counts, …). Available at
    /// any point, with or without tracing.
    ///
    /// On the direct-handoff scheduler this includes the accumulated
    /// process→scheduler resume latency (`kernel.handoff.*`): the host
    /// time from a process releasing the baton to the scheduler
    /// observing it.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.shared.with_state(|st| st.metrics_snapshot());
        m.set_counter("kernel.handoff.resumes", self.handoff_resumes);
        m.set_counter("kernel.handoff.resume_nanos", self.handoff_resume_nanos);
        if self.handoff_resumes > 0 {
            m.set_gauge(
                "kernel.handoff.mean_resume_ns",
                self.handoff_resume_nanos as f64 / self.handoff_resumes as f64,
            );
        }
        if self.jobs > 1 {
            use std::sync::atomic::Ordering::Relaxed;
            let par = &self.shared.par;
            m.set_counter("kernel.par.jobs", self.jobs as u64);
            m.set_counter("kernel.par.rounds", par.rounds.load(Relaxed));
            m.set_counter("kernel.par.workers", par.workers.load(Relaxed));
            m.set_counter("kernel.par.effects", par.effects_committed.load(Relaxed));
            m.set_counter("kernel.par.commit_nanos", par.commit_nanos.load(Relaxed));
            m.set_counter("kernel.par.seq_fallbacks", par.seq_fallbacks.load(Relaxed));
        }
        m
    }

    /// Enables/disables scheduling-state attribution: per-process
    /// waiting-time accounting and per-channel queue-depth/blocked-time
    /// counters, all in *simulated* time. Attribution is
    /// measurement-only — simulated behaviour is bit-identical whether
    /// it is on or off. Usually set through
    /// [`SimOptions::attribution`]; call before `run`.
    pub fn set_attribution(&mut self, enable: bool) {
        self.shared.set_attribution(enable);
    }

    /// Snapshots the scheduling attribution: per-process activation and
    /// wait accounting plus per-channel access/contention counters.
    /// The time-valued fields are only populated when attribution was
    /// enabled ([`SimOptions::attribution`] /
    /// [`Simulator::set_attribution`]); the snapshot's `enabled` flag
    /// records which.
    pub fn sched_stats(&self) -> SchedSnapshot {
        self.shared.with_state(|st| st.sched_snapshot())
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.shared.with_state(|st| st.now)
    }

    /// The name of a process.
    pub fn process_name(&self, pid: ProcId) -> String {
        self.shared.with_state(|st| st.procs[pid.0].name.clone())
    }

    /// Ids of all spawned processes, in spawn order.
    pub fn process_ids(&self) -> Vec<ProcId> {
        self.shared
            .with_state(|st| (0..st.procs.len()).map(ProcId).collect())
    }

    /// Number of spawned processes.
    pub fn process_count(&self) -> usize {
        self.shared.with_state(|st| st.procs.len())
    }

    /// Number of registered channels (FIFOs, signals, rendezvous).
    pub fn channel_count(&self) -> usize {
        self.shared.with_state(|st| st.chan_stats.len())
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanic`] if any process body panics; the
    /// simulator cannot be resumed afterwards.
    pub fn run(&mut self) -> Result<SimSummary, SimError> {
        self.run_until(Time::MAX)
    }

    /// Runs until no events remain or simulation time would exceed `limit`.
    /// Can be called repeatedly with growing limits to step a simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanic`] if any process body panics.
    pub fn run_until(&mut self, limit: Time) -> Result<SimSummary, SimError> {
        assert!(!self.errored, "simulator is poisoned by an earlier error");
        // Register this thread as the unpark target for process yields.
        // Every process is parked (or not yet started) here, so the
        // direct-handoff cells are safe to write.
        let scheduler = std::thread::current();
        for proc in &self.procs {
            proc.baton.set_scheduler(&scheduler);
        }
        self.shared.with_state(|st| {
            if !st.started {
                st.started = true;
                for pid in 0..st.procs.len() {
                    st.runnable.insert(pid);
                }
            }
        });
        let reason = loop {
            // Evaluate phase.
            {
                let _span = scperf_obs::profile::span("kernel.evaluate");
                let runnable = self.shared.with_state(|st| st.runnable.len());
                if self.parallel_round_possible(runnable) {
                    self.evaluate_parallel()?;
                } else {
                    if self.jobs > 1 && runnable > 0 {
                        self.shared
                            .par
                            .seq_fallbacks
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    loop {
                        let next = self.shared.with_state(|st| {
                            let pid = st.runnable.pop_first();
                            st.current = pid;
                            pid
                        });
                        let Some(pid) = next else { break };
                        self.dispatch(pid)?;
                    }
                    self.shared.with_state(|st| st.current = None);
                }
            }
            // Update phase.
            {
                let _span = scperf_obs::profile::span("kernel.update");
                self.shared.with_state(|st| st.run_update_phase());
            }
            // Delta notification phase.
            let progressed = self.shared.with_state(|st| {
                if st.next_runnable.is_empty() {
                    false
                } else {
                    st.runnable = std::mem::take(&mut st.next_runnable);
                    st.delta += 1;
                    true
                }
            });
            if progressed {
                continue;
            }
            // Timed notification phase.
            match self.shared.with_state(|st| st.advance_time(limit)) {
                AdvanceOutcome::Advanced => continue,
                AdvanceOutcome::LimitReached => break StopReason::TimeLimit,
                AdvanceOutcome::Exhausted => break StopReason::EventsExhausted,
            }
        };
        Ok(self.shared.with_state(|st| SimSummary {
            end_time: st.now,
            deltas: st.delta,
            activations: st.activations,
            reason,
        }))
    }

    fn dispatch(&mut self, pid: usize) -> Result<(), SimError> {
        if self.jobs > 1 {
            // A previous parallel round may have registered a pool
            // worker as this baton's yield target; point it back at
            // the scheduler thread. (Safe: the process is parked.)
            self.procs[pid].baton.set_scheduler(&std::thread::current());
        }
        let (outcome, latency) = self.procs[pid].baton.dispatch();
        if let Some(lat) = latency {
            self.handoff_resume_nanos += lat.as_nanos() as u64;
            self.handoff_resumes += 1;
        }
        let waiting = matches!(outcome, RunState::Waiting);
        self.shared.with_state(|st| {
            st.activations += 1;
            if st.attribution {
                let now = st.now;
                let p = &mut st.procs[pid];
                p.activations += 1;
                if waiting {
                    // The wake paths in `KernelState` close the span.
                    p.wait_since = Some(now);
                }
            }
        });
        match outcome {
            RunState::Waiting => Ok(()),
            RunState::Done(None) => {
                self.shared.with_state(|st| st.procs[pid].alive = false);
                if let Some(t) = self.procs[pid].thread.take() {
                    let _ = t.join();
                }
                Ok(())
            }
            RunState::Done(Some(message)) => {
                self.errored = true;
                let process = self.shared.with_state(|st| {
                    st.procs[pid].alive = false;
                    st.procs[pid].name.clone()
                });
                if let Some(t) = self.procs[pid].thread.take() {
                    let _ = t.join();
                }
                Err(SimError::ProcessPanic { process, message })
            }
            other => unreachable!("dispatch observed unexpected state {other:?}"),
        }
    }

    /// A parallel round needs `jobs > 1`, at least two runnable
    /// processes, and no feature that forces the sequential path
    /// (attribution's wait-span accounting is order-sensitive). A
    /// reset-and-reused simulator whose new life spawned more processes
    /// than its effect-log table holds also falls back.
    fn parallel_round_possible(&self, runnable: usize) -> bool {
        self.jobs > 1
            && runnable >= 2
            && !self.shared.attribution_fast()
            && self.shared.par.logs_fit(self.procs.len())
    }

    /// Runs one evaluate phase in parallel: snapshot the runnable set,
    /// dispatch ascending-pid chunks across the pool (chunk 0 inline on
    /// the scheduler thread), then commit every buffered effect in
    /// canonical pid order. See `docs/PARALLELISM.md` for the contract.
    fn evaluate_parallel(&mut self) -> Result<(), SimError> {
        use std::sync::atomic::Ordering;

        // Snapshot *without draining*: the commit loop pops `runnable`
        // exactly like the sequential kernel, so depth-derived metrics
        // (ready_peak) evolve identically.
        let members: Vec<usize> = self
            .shared
            .with_state(|st| st.runnable.iter().copied().collect());
        let nprocs = self.procs.len();
        let gate = self.shared.par.begin_round(members.clone(), nprocs);
        let workers = self.jobs.min(members.len());
        if workers > 1 && self.pool.is_none() {
            self.pool = Some(scperf_sync::WorkerPool::new("scperf-par", self.jobs - 1));
        }

        type Outcomes = scperf_sync::Mutex<Vec<(usize, RunState, Option<std::time::Duration>)>>;
        let outcomes: Arc<Outcomes> = Arc::new(scperf_sync::Mutex::new(Vec::new()));

        // One contiguous ascending chunk per dispatcher. Ascending
        // order within a chunk is what keeps the pid-order fences
        // deadlock-free: the smallest non-yielded pid is always at the
        // head of some dispatcher's chunk.
        let base = members.len() / workers;
        let extra = members.len() % workers;
        let mut start = 0usize;
        let mut chunks: Vec<Vec<(usize, Arc<Baton>)>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let chunk = members[start..start + len]
                .iter()
                .map(|&pid| (pid, Arc::clone(&self.procs[pid].baton)))
                .collect();
            chunks.push(chunk);
            start += len;
        }
        let mut chunk_iter = chunks.into_iter();
        let inline_chunk = chunk_iter.next().expect("at least one chunk");
        for chunk in chunk_iter {
            let gate = Arc::clone(&gate);
            let outcomes = Arc::clone(&outcomes);
            let pool = self.pool.as_ref().expect("pool exists when workers > 1");
            pool.submit(move || run_chunk(chunk, &gate, &outcomes));
        }
        run_chunk(inline_chunk, &gate, &outcomes);
        if let Some(pool) = &self.pool {
            pool.wait_idle();
        }
        // Every member has yielded; flip back to live-kernel mode so
        // the commit replay below goes through the normal paths.
        self.shared.par.end_round();
        self.shared.par.rounds.fetch_add(1, Ordering::Relaxed);
        self.shared
            .par
            .workers
            .fetch_max(workers as u64, Ordering::Relaxed);

        // Conflicting same-delta accesses detected mid-round mean the
        // model is not a determinate spec: report, don't race.
        let hazards = self.shared.par.take_hazards();
        if let Some(detail) = hazards.into_iter().next() {
            self.errored = true;
            return Err(SimError::NonDeterminate { detail });
        }

        let mut outs: Vec<Option<RunState>> = (0..nprocs).map(|_| None).collect();
        for (pid, state, latency) in std::mem::take(&mut *outcomes.lock()) {
            if let Some(lat) = latency {
                self.handoff_resume_nanos += lat.as_nanos() as u64;
                self.handoff_resumes += 1;
            }
            outs[pid] = Some(state);
        }

        // Commit: replay each member's effects in ascending pid order,
        // each log in program order, through the same KernelState entry
        // points the sequential kernel uses — reproducing sequence
        // numbers, metrics and the trace stream bit-exactly.
        let commit_start = std::time::Instant::now();
        let mut effects_committed = 0u64;
        let mut finished: Vec<usize> = Vec::new();
        let shared = Arc::clone(&self.shared);
        let result: Result<(), SimError> = shared.with_state(|st| {
            while let Some(pid) = st.runnable.pop_first() {
                st.current = Some(pid);
                for effect in self.shared.par.drain(pid) {
                    effects_committed += 1;
                    match effect {
                        Effect::Schedule { delay, action } => st.schedule(delay, action),
                        Effect::WaitEvent { ev } => {
                            st.events[ev].waiters.insert(pid);
                        }
                        Effect::NotifyDelta { ev } => st.notify_event_delta(ev),
                        Effect::NotifyImmediate { ev } => {
                            if !st.events[ev].waiters.is_empty() {
                                return Err(SimError::NonDeterminate {
                                    detail: format!(
                                        "immediate notification of event '{}' with live \
                                         waiters during a parallel evaluate round (wakes \
                                         within the current delta depend on execution \
                                         order); use notify_delta or run with jobs = 1",
                                        st.events[ev].name
                                    ),
                                });
                            }
                            st.notify_event_immediate(ev);
                        }
                        Effect::Trace {
                            label,
                            chan,
                            payload,
                        } => {
                            st.record_event(Some(pid), label, chan, payload);
                        }
                        Effect::TraceText { label, detail } => {
                            st.record_text(Some(pid), &label, &detail);
                        }
                    }
                }
                st.activations += 1;
                match outs[pid].take() {
                    Some(RunState::Waiting) | None => {}
                    Some(RunState::Done(None)) => {
                        st.procs[pid].alive = false;
                        finished.push(pid);
                    }
                    Some(RunState::Done(Some(message))) => {
                        st.procs[pid].alive = false;
                        finished.push(pid);
                        return Err(SimError::ProcessPanic {
                            process: st.procs[pid].name.clone(),
                            message,
                        });
                    }
                    Some(other) => unreachable!("parallel dispatch observed {other:?}"),
                }
            }
            st.current = None;
            Ok(())
        });
        self.shared
            .par
            .effects_committed
            .fetch_add(effects_committed, Ordering::Relaxed);
        self.shared
            .par
            .commit_nanos
            .fetch_add(commit_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        for pid in finished {
            if let Some(t) = self.procs[pid].thread.take() {
                let _ = t.join();
            }
        }
        if result.is_err() {
            self.errored = true;
        }
        result
    }

    /// Returns this simulator to its just-constructed state so a pooled
    /// slot can be reused without paying thread-pool, allocation and
    /// interner setup again: every process thread is killed and joined,
    /// the kernel state (time, queues, events, process table, metrics,
    /// channel registries, trace sink) is cleared in place, the
    /// `kernel.par.*` counters are zeroed, and the error/poison flag is
    /// cleared — a [`SimError::NonDeterminate`] in the previous life
    /// does not poison the next one. The handoff protocol, `jobs`
    /// degree, attribution flag and the lazily created dispatcher pool
    /// are kept.
    ///
    /// After a reset the simulator behaves exactly like
    /// `Simulator::with_options` with the same options: spawn processes,
    /// create channels, run. Verified bit-identical to a fresh build by
    /// the core pool determinism tests.
    pub fn reset(&mut self) {
        // Tear down the previous life's processes (same as Drop).
        self.shared.with_state(|st| st.clear_update_hooks());
        for proc in &mut self.procs {
            proc.baton.kill();
            if let Some(t) = proc.thread.take() {
                let _ = t.join();
            }
        }
        self.procs.clear();
        // Drop the sink through `set_sink` so the lock-free tracing
        // mirror stays in sync, then clear the state in place.
        self.shared.set_sink(None);
        self.shared.with_state(|st| st.reset());
        self.shared.par.reset_counters();
        self.errored = false;
        self.handoff_resume_nanos = 0;
        self.handoff_resumes = 0;
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

/// Dispatches one ascending chunk of a parallel round: registers the
/// calling thread as each baton's yield target, runs the process until
/// it yields, and marks it yielded on the round gate (releasing any
/// higher-pid fences waiting on it).
fn run_chunk(
    chunk: Vec<(usize, Arc<Baton>)>,
    gate: &crate::parallel::RoundGate,
    outcomes: &scperf_sync::Mutex<Vec<(usize, RunState, Option<std::time::Duration>)>>,
) {
    let me = std::thread::current();
    for (pid, baton) in chunk {
        // Safe: the process is parked and this dispatcher holds its
        // baton, which is exactly the set_scheduler contract.
        baton.set_scheduler(&me);
        let (state, latency) = baton.dispatch();
        gate.mark_yielded(pid);
        outcomes.lock().push((pid, state, latency));
    }
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator::new()
    }
}

impl Drop for Simulator {
    fn drop(&mut self) {
        // Break the kernel ↔ channel reference cycle.
        self.shared.with_state(|st| st.clear_update_hooks());
        for proc in &mut self.procs {
            proc.baton.kill();
            if let Some(t) = proc.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("processes", &self.procs.len())
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_finishes_immediately() {
        let mut sim = Simulator::new();
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ZERO);
        assert_eq!(s.reason, StopReason::EventsExhausted);
        assert_eq!(s.activations, 0);
    }

    #[test]
    fn single_process_advances_time() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(5));
            ctx.wait(Time::ns(7));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(12));
        assert_eq!(s.reason, StopReason::EventsExhausted);
    }

    #[test]
    fn processes_interleave_by_time() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let mut sim = Simulator::new();
        let tx1 = tx.clone();
        sim.spawn("a", move |ctx| {
            ctx.wait(Time::ns(10));
            tx1.send(("a", ctx.now())).unwrap();
        });
        sim.spawn("b", move |ctx| {
            ctx.wait(Time::ns(5));
            tx.send(("b", ctx.now())).unwrap();
        });
        sim.run().unwrap();
        let order: Vec<_> = rx.try_iter().collect();
        assert_eq!(order, vec![("b", Time::ns(5)), ("a", Time::ns(10))]);
    }

    #[test]
    fn same_instant_wakes_in_pid_order() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let mut sim = Simulator::new();
        for name in ["x", "y", "z"] {
            let tx = tx.clone();
            sim.spawn(name, move |ctx| {
                ctx.wait(Time::ns(3));
                tx.send(name).unwrap();
            });
        }
        sim.run().unwrap();
        let order: Vec<_> = rx.try_iter().collect();
        assert_eq!(order, vec!["x", "y", "z"]);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(100));
        });
        let s = sim.run_until(Time::ns(10)).unwrap();
        assert_eq!(s.reason, StopReason::TimeLimit);
        assert_eq!(s.end_time, Time::ns(10));
        let s = sim.run().unwrap();
        assert_eq!(s.reason, StopReason::EventsExhausted);
        assert_eq!(s.end_time, Time::ns(100));
    }

    #[test]
    fn zero_wait_is_one_timestep() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            let d0 = ctx.delta_count();
            ctx.wait(Time::ZERO);
            assert_eq!(ctx.now(), Time::ZERO);
            assert!(ctx.delta_count() > d0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn event_wait_and_notify() {
        let mut sim = Simulator::new();
        let ev = sim.event("go");
        let ev2 = ev.clone();
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
            assert_eq!(ctx.now(), Time::ns(42));
        });
        sim.spawn("notifier", move |ctx| {
            ctx.wait(Time::ns(42));
            ev2.notify_delta();
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(42));
    }

    #[test]
    fn immediate_notification_runs_same_evaluate_phase() {
        let mut sim = Simulator::new();
        let ev = sim.event("now");
        let ev2 = ev.clone();
        // waiter (pid 0) waits first, notifier (pid 1) fires immediately at
        // time zero; the waiter must complete in the same delta.
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
            assert_eq!(ctx.delta_count(), 0);
        });
        sim.spawn("notifier", move |_ctx| {
            ev2.notify_immediate();
        });
        sim.run().unwrap();
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulator::new();
        sim.spawn("bad", |_ctx| panic!("deliberate test panic"));
        let err = sim.run().unwrap_err();
        match err {
            SimError::ProcessPanic { process, message } => {
                assert_eq!(process, "bad");
                assert!(message.contains("deliberate"));
            }
            other => panic!("expected ProcessPanic, got {other:?}"),
        }
    }

    #[test]
    fn drop_kills_blocked_processes() {
        let mut sim = Simulator::new();
        let ev = sim.event("never");
        sim.spawn("stuck", move |ctx| {
            ctx.wait_event(&ev); // never notified
            unreachable!();
        });
        let s = sim.run().unwrap();
        assert_eq!(s.reason, StopReason::EventsExhausted);
        drop(sim); // must not hang or print panic noise
    }

    #[test]
    fn tracing_records_emitted_events() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(1));
            ctx.emit_trace("custom", "hello");
        });
        sim.run().unwrap();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].label, "custom");
        assert_eq!(trace[0].process, "p");
        assert_eq!(trace[0].time, Time::ns(1));
    }

    #[test]
    fn activations_are_counted() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(1));
            ctx.wait(Time::ns(1));
        });
        let s = sim.run().unwrap();
        // initial dispatch + 2 wakes = 3 activations
        assert_eq!(s.activations, 3);
    }

    #[test]
    fn attribution_accounts_waits_in_simulated_time() {
        let mut sim = crate::SimOptions::new().attribution(true).build();
        let ev = sim.event("go");
        let ev2 = ev.clone();
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
        });
        sim.spawn("notifier", move |ctx| {
            ctx.wait(Time::ns(42));
            ev2.notify_delta();
        });
        sim.run().unwrap();
        let stats = sim.sched_stats();
        assert!(stats.enabled);
        let waiter = &stats.processes[0];
        assert_eq!(waiter.name, "waiter");
        assert_eq!(waiter.waits, 1);
        assert_eq!(waiter.wait, Time::ns(42));
        assert_eq!(waiter.activations, 2);
        // Timed waits are wait episodes too: the notifier slept 42ns.
        let notifier = &stats.processes[1];
        assert_eq!(notifier.waits, 1);
        assert_eq!(notifier.wait, Time::ns(42));
    }

    #[test]
    fn attribution_tracks_channel_depth_and_blocked_time() {
        let mut sim = crate::SimOptions::new().attribution(true).build();
        let f = sim.fifo::<u32>("ch", 2);
        let (w, r) = (f.clone(), f);
        sim.spawn("w", move |ctx| {
            for i in 0..4 {
                w.write(ctx, i); // fills to depth 2, then blocks
            }
        });
        sim.spawn("r", move |ctx| {
            ctx.wait(Time::ns(10));
            for _ in 0..4 {
                let _ = r.read(ctx);
            }
        });
        sim.run().unwrap();
        let stats = sim.sched_stats();
        let ch = &stats.channels[0];
        assert_eq!(ch.name, "ch");
        assert_eq!(ch.writes, 4);
        assert_eq!(ch.reads, 4);
        assert_eq!(ch.max_depth, 2);
        assert!(ch.blocks > 0);
        // The writer blocked on a full FIFO until the reader started
        // draining at 10ns.
        assert!(ch.blocked >= Time::ns(10), "blocked = {:?}", ch.blocked);
        let m = sim.metrics();
        assert!(m.counter("kernel.sched.w.wait_ns").unwrap() >= 10);
        assert!(m.counter("channel.ch.max_depth").unwrap() == 2);
        assert!(m.counter("channel.ch.blocked_ns").unwrap() >= 10);
    }

    #[test]
    fn attribution_is_bit_identical_and_off_stays_zero() {
        let run = |attr: bool| {
            let mut sim = crate::SimOptions::new().attribution(attr).build();
            let f = sim.fifo::<u32>("ch", 1);
            let (w, r) = (f.clone(), f);
            sim.spawn("w", move |ctx| {
                for i in 0..8 {
                    w.write(ctx, i);
                    ctx.wait(Time::ns(3));
                }
            });
            sim.spawn("r", move |ctx| {
                for _ in 0..8 {
                    let _ = r.read(ctx);
                    ctx.wait(Time::ns(5));
                }
            });
            let summary = sim.run().unwrap();
            (summary, sim.sched_stats())
        };
        let (s_on, st_on) = run(true);
        let (s_off, st_off) = run(false);
        assert_eq!(s_on, s_off, "attribution must not change simulated results");
        assert!(st_on.enabled && !st_off.enabled);
        assert!(st_on.processes.iter().any(|p| p.waits > 0));
        assert!(st_off
            .processes
            .iter()
            .all(|p| p.waits == 0 && p.wait == Time::ZERO && p.activations == 0));
        assert!(st_off
            .channels
            .iter()
            .all(|c| c.max_depth == 0 && c.blocked == Time::ZERO));
    }

    fn elaborate_fifo_pair(sim: &mut Simulator) {
        let f = sim.fifo::<u32>("ch", 2);
        let (w, r) = (f.clone(), f);
        sim.spawn("w", move |ctx| {
            for i in 0..4 {
                w.write(ctx, i);
                ctx.wait(Time::ns(3));
            }
        });
        sim.spawn("r", move |ctx| {
            for _ in 0..4 {
                let _ = r.read(ctx);
                ctx.wait(Time::ns(5));
            }
        });
    }

    #[test]
    fn reset_reuses_a_simulator_bit_identically() {
        let mut fresh = Simulator::new();
        fresh.enable_tracing();
        elaborate_fifo_pair(&mut fresh);
        let s_fresh = fresh.run().unwrap();
        let t_fresh = fresh.take_trace();

        // Run an unrelated model first, then reset and rebuild the same
        // model: summary and full trace must match the fresh run.
        let mut reused = Simulator::new();
        reused.enable_tracing();
        reused.spawn("other", |ctx| {
            ctx.wait(Time::us(1));
            ctx.emit_trace("leftover", "state that must not leak");
        });
        reused.run().unwrap();
        reused.reset();
        reused.enable_tracing();
        elaborate_fifo_pair(&mut reused);
        let s_reused = reused.run().unwrap();
        assert_eq!(s_fresh, s_reused);
        assert_eq!(t_fresh, reused.take_trace());
    }

    #[test]
    fn reset_clears_the_poison_flag_after_a_panic() {
        let mut sim = Simulator::new();
        sim.spawn("bad", |_ctx| panic!("deliberate test panic"));
        assert!(sim.run().is_err());
        sim.reset();
        sim.spawn("good", |ctx| ctx.wait(Time::ns(7)));
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(7));
    }

    #[test]
    #[should_panic(expected = "before the simulation starts")]
    fn spawn_after_start_panics() {
        let mut sim = Simulator::new();
        sim.run().unwrap();
        sim.spawn("late", |_| {});
    }
}
