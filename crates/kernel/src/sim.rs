//! The simulator: elaboration (spawning processes, creating channels) and
//! the scheduler loop.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use scperf_obs::{MemorySink, MetricsSnapshot, TraceSink, TraceTable};

use crate::baton::{
    clear_panic_suppression, install_silent_kill_hook, panic_message, KillToken, RunState,
};
use crate::config::{SimOptions, TraceMode};
use crate::event::Event;
use crate::handoff::{Baton, HandoffKind};
use crate::process::{ProcCtx, ProcId};
use crate::state::{AdvanceOutcome, ProcMeta, SchedSnapshot, Shared};
use crate::time::Time;
use crate::trace::TraceRecord;

/// Why a call to [`Simulator::run`] / [`Simulator::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No runnable processes and no pending notifications remain.
    EventsExhausted,
    /// The time limit passed to [`Simulator::run_until`] was reached.
    TimeLimit,
}

/// Statistics describing a finished (or paused) simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSummary {
    /// Simulation time when the run stopped.
    pub end_time: Time,
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Total process activations (dispatches).
    pub activations: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// Errors surfaced by the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A process body panicked; carries the process name and panic message.
    ProcessPanic {
        /// Name of the panicking process.
        process: String,
        /// Stringified panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProcessPanic { process, message } => {
                write!(f, "process '{process}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct ProcHandle {
    baton: Arc<Baton>,
    thread: Option<JoinHandle<()>>,
}

/// A discrete-event simulator with SystemC semantics.
///
/// Elaborate the model by spawning processes ([`Simulator::spawn`]) and
/// creating channels, then call [`Simulator::run`]. Each process runs on its
/// own OS thread but the kernel hands out a single run-baton, so execution
/// is cooperative and deterministic: within a delta cycle, runnable
/// processes execute in spawn order.
///
/// # Examples
///
/// ```
/// use scperf_kernel::{Simulator, Time};
///
/// let mut sim = Simulator::new();
/// let fifo = sim.fifo::<u32>("data", 2);
/// let (tx, rx) = (fifo.clone(), fifo);
/// sim.spawn("producer", move |ctx| {
///     for i in 0..4 {
///         tx.write(ctx, i);
///     }
/// });
/// sim.spawn("consumer", move |ctx| {
///     let mut sum = 0;
///     for _ in 0..4 {
///         sum += rx.read(ctx);
///     }
///     assert_eq!(sum, 6);
/// });
/// let summary = sim.run()?;
/// assert_eq!(summary.end_time, Time::ZERO); // untimed model: all in delta cycles
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
pub struct Simulator {
    shared: Arc<Shared>,
    procs: Vec<ProcHandle>,
    errored: bool,
    handoff: HandoffKind,
    /// Accumulated process→scheduler resume latency (direct handoff
    /// only), exported through [`Simulator::metrics`].
    handoff_resume_nanos: u64,
    handoff_resumes: u64,
}

impl Simulator {
    /// Creates an empty simulator using the default handoff protocol
    /// ([`HandoffKind::default_kind`]).
    pub fn new() -> Simulator {
        Simulator::new_with_handoff(HandoffKind::default_kind())
    }

    /// Creates an empty simulator from a [`SimOptions`] value: the
    /// handoff protocol plus the trace-sink wiring, in one place. This
    /// is the constructor the `scperf_core::SimConfig` session builder
    /// threads its kernel half through.
    pub fn with_options(options: SimOptions) -> Simulator {
        let mut sim = Simulator::new_with_handoff(options.handoff);
        if options.attribution {
            sim.set_attribution(true);
        }
        match options.sink {
            Some(sink) => sim.set_trace_sink(sink),
            None => match options.trace {
                TraceMode::Off => {}
                TraceMode::Unbounded => sim.enable_tracing(),
                TraceMode::Ring(n) => sim.enable_tracing_ring(n),
            },
        }
        sim
    }

    /// Creates an empty simulator with an explicit scheduler↔process
    /// handoff protocol. [`HandoffKind::Direct`] is the fast path;
    /// [`HandoffKind::CondvarBaton`] is the original mutex+condvar
    /// protocol, kept for debugging and as the A/B baseline of the
    /// kernel microbenches. Both produce bit-identical traces.
    #[deprecated(
        since = "0.4.0",
        note = "use `SimOptions::new().handoff(kind).build()` (or the \
                `scperf_core::SimConfig` session builder)"
    )]
    pub fn with_handoff(kind: HandoffKind) -> Simulator {
        Simulator::new_with_handoff(kind)
    }

    fn new_with_handoff(kind: HandoffKind) -> Simulator {
        install_silent_kill_hook();
        Simulator {
            shared: Shared::new(),
            procs: Vec::new(),
            errored: false,
            handoff: kind,
            handoff_resume_nanos: 0,
            handoff_resumes: 0,
        }
    }

    /// The handoff protocol this simulator dispatches processes with.
    pub fn handoff_kind(&self) -> HandoffKind {
        self.handoff
    }

    /// Spawns a process (the analogue of `SC_THREAD`). The body runs when
    /// the simulation starts and the process terminates when it returns.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> ProcId
    where
        F: FnOnce(&mut ProcCtx) + Send + 'static,
    {
        let name = name.into();
        let pid = self.shared.with_state(|st| {
            assert!(
                !st.started,
                "processes must be spawned before the simulation starts"
            );
            st.procs.push(ProcMeta::new(name.clone()));
            st.procs.len() - 1
        });
        let baton = Arc::new(Baton::new(self.handoff));
        let mut ctx = ProcCtx {
            pid,
            shared: Arc::clone(&self.shared),
            baton: Arc::clone(&baton),
        };
        let thread_baton = Arc::clone(&baton);
        let thread = std::thread::Builder::new()
            .name(format!("scperf-proc-{name}"))
            .spawn(move || {
                if !thread_baton.wait_first_dispatch() {
                    return; // killed before ever running
                }
                let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                clear_panic_suppression();
                let msg = match result {
                    Ok(()) => None,
                    Err(payload) if payload.is::<KillToken>() => return,
                    Err(payload) => Some(panic_message(payload.as_ref())),
                };
                thread_baton.finish(msg);
            })
            .expect("failed to spawn process thread");
        baton.set_proc_thread(thread.thread().clone());
        self.procs.push(ProcHandle {
            baton,
            thread: Some(thread),
        });
        ProcId(pid)
    }

    /// Creates a named event (for testbench components and channels).
    pub fn event(&mut self, name: impl Into<String>) -> Event {
        Event::new(Arc::clone(&self.shared), name)
    }

    /// Enables trace recording into an unbounded in-memory sink. Call
    /// before `run`.
    pub fn enable_tracing(&mut self) {
        if !self.shared.tracing_fast() {
            self.shared.set_sink(Some(Box::new(MemorySink::new())));
        }
    }

    /// Enables trace recording into a ring buffer keeping roughly the
    /// last `max_events` events — bounded memory for long simulations.
    pub fn enable_tracing_ring(&mut self, max_events: usize) {
        self.shared
            .set_sink(Some(Box::new(MemorySink::ring(max_events))));
    }

    /// Installs a custom [`TraceSink`] (streaming writer, aggregator,
    /// …). Replaces any previous sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.shared.set_sink(Some(sink));
    }

    /// Disables tracing and returns the installed sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.shared.take_sink()
    }

    /// Takes the recorded trace as legacy string-based records (a view
    /// materialized from the compact event buffer). Tracing stays
    /// enabled with a fresh buffer.
    ///
    /// Returns an empty vector when tracing is disabled or a custom
    /// (non-memory) sink is installed.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        let table = self.take_events();
        table
            .events
            .iter()
            .map(|ev| crate::trace::materialize_record(&table, ev))
            .collect()
    }

    /// Takes the recorded trace as a detached [`TraceTable`] (compact
    /// events plus string table and process names). Tracing stays
    /// enabled with a fresh buffer.
    pub fn take_events(&mut self) -> TraceTable {
        self.shared.with_state(|st| {
            let (events, dropped) = match st.sink.as_mut().and_then(|s| s.as_memory()) {
                Some(mem) => {
                    let dropped = mem.dropped();
                    (mem.drain(), dropped)
                }
                None => (Vec::new(), 0),
            };
            TraceTable {
                events,
                strings: st.interner.snapshot(),
                process_names: st.procs.iter().map(|p| p.name.clone()).collect(),
                dropped,
            }
        })
    }

    /// Snapshots the kernel's metrics (delta cycles, context switches,
    /// notification counts, per-channel access counts, …). Available at
    /// any point, with or without tracing.
    ///
    /// On the direct-handoff scheduler this includes the accumulated
    /// process→scheduler resume latency (`kernel.handoff.*`): the host
    /// time from a process releasing the baton to the scheduler
    /// observing it.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.shared.with_state(|st| st.metrics_snapshot());
        m.set_counter("kernel.handoff.resumes", self.handoff_resumes);
        m.set_counter("kernel.handoff.resume_nanos", self.handoff_resume_nanos);
        if self.handoff_resumes > 0 {
            m.set_gauge(
                "kernel.handoff.mean_resume_ns",
                self.handoff_resume_nanos as f64 / self.handoff_resumes as f64,
            );
        }
        m
    }

    /// Enables/disables scheduling-state attribution: per-process
    /// waiting-time accounting and per-channel queue-depth/blocked-time
    /// counters, all in *simulated* time. Attribution is
    /// measurement-only — simulated behaviour is bit-identical whether
    /// it is on or off. Usually set through
    /// [`SimOptions::attribution`]; call before `run`.
    pub fn set_attribution(&mut self, enable: bool) {
        self.shared.set_attribution(enable);
    }

    /// Snapshots the scheduling attribution: per-process activation and
    /// wait accounting plus per-channel access/contention counters.
    /// The time-valued fields are only populated when attribution was
    /// enabled ([`SimOptions::attribution`] /
    /// [`Simulator::set_attribution`]); the snapshot's `enabled` flag
    /// records which.
    pub fn sched_stats(&self) -> SchedSnapshot {
        self.shared.with_state(|st| st.sched_snapshot())
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.shared.with_state(|st| st.now)
    }

    /// The name of a process.
    pub fn process_name(&self, pid: ProcId) -> String {
        self.shared.with_state(|st| st.procs[pid.0].name.clone())
    }

    /// Ids of all spawned processes, in spawn order.
    pub fn process_ids(&self) -> Vec<ProcId> {
        self.shared
            .with_state(|st| (0..st.procs.len()).map(ProcId).collect())
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanic`] if any process body panics; the
    /// simulator cannot be resumed afterwards.
    pub fn run(&mut self) -> Result<SimSummary, SimError> {
        self.run_until(Time::MAX)
    }

    /// Runs until no events remain or simulation time would exceed `limit`.
    /// Can be called repeatedly with growing limits to step a simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProcessPanic`] if any process body panics.
    pub fn run_until(&mut self, limit: Time) -> Result<SimSummary, SimError> {
        assert!(!self.errored, "simulator is poisoned by an earlier error");
        // Register this thread as the unpark target for process yields.
        // Every process is parked (or not yet started) here, so the
        // direct-handoff cells are safe to write.
        let scheduler = std::thread::current();
        for proc in &self.procs {
            proc.baton.set_scheduler(&scheduler);
        }
        self.shared.with_state(|st| {
            if !st.started {
                st.started = true;
                for pid in 0..st.procs.len() {
                    st.runnable.insert(pid);
                }
            }
        });
        let reason = loop {
            // Evaluate phase.
            {
                let _span = scperf_obs::profile::span("kernel.evaluate");
                loop {
                    let next = self.shared.with_state(|st| {
                        let pid = st.runnable.pop_first();
                        st.current = pid;
                        pid
                    });
                    let Some(pid) = next else { break };
                    self.dispatch(pid)?;
                }
                self.shared.with_state(|st| st.current = None);
            }
            // Update phase.
            {
                let _span = scperf_obs::profile::span("kernel.update");
                self.shared.with_state(|st| st.run_update_phase());
            }
            // Delta notification phase.
            let progressed = self.shared.with_state(|st| {
                if st.next_runnable.is_empty() {
                    false
                } else {
                    st.runnable = std::mem::take(&mut st.next_runnable);
                    st.delta += 1;
                    true
                }
            });
            if progressed {
                continue;
            }
            // Timed notification phase.
            match self.shared.with_state(|st| st.advance_time(limit)) {
                AdvanceOutcome::Advanced => continue,
                AdvanceOutcome::LimitReached => break StopReason::TimeLimit,
                AdvanceOutcome::Exhausted => break StopReason::EventsExhausted,
            }
        };
        Ok(self.shared.with_state(|st| SimSummary {
            end_time: st.now,
            deltas: st.delta,
            activations: st.activations,
            reason,
        }))
    }

    fn dispatch(&mut self, pid: usize) -> Result<(), SimError> {
        let (outcome, latency) = self.procs[pid].baton.dispatch();
        if let Some(lat) = latency {
            self.handoff_resume_nanos += lat.as_nanos() as u64;
            self.handoff_resumes += 1;
        }
        let waiting = matches!(outcome, RunState::Waiting);
        self.shared.with_state(|st| {
            st.activations += 1;
            if st.attribution {
                let now = st.now;
                let p = &mut st.procs[pid];
                p.activations += 1;
                if waiting {
                    // The wake paths in `KernelState` close the span.
                    p.wait_since = Some(now);
                }
            }
        });
        match outcome {
            RunState::Waiting => Ok(()),
            RunState::Done(None) => {
                self.shared.with_state(|st| st.procs[pid].alive = false);
                if let Some(t) = self.procs[pid].thread.take() {
                    let _ = t.join();
                }
                Ok(())
            }
            RunState::Done(Some(message)) => {
                self.errored = true;
                let process = self.shared.with_state(|st| {
                    st.procs[pid].alive = false;
                    st.procs[pid].name.clone()
                });
                if let Some(t) = self.procs[pid].thread.take() {
                    let _ = t.join();
                }
                Err(SimError::ProcessPanic { process, message })
            }
            other => unreachable!("dispatch observed unexpected state {other:?}"),
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator::new()
    }
}

impl Drop for Simulator {
    fn drop(&mut self) {
        // Break the kernel ↔ channel reference cycle.
        self.shared.with_state(|st| st.clear_update_hooks());
        for proc in &mut self.procs {
            proc.baton.kill();
            if let Some(t) = proc.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("processes", &self.procs.len())
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_finishes_immediately() {
        let mut sim = Simulator::new();
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ZERO);
        assert_eq!(s.reason, StopReason::EventsExhausted);
        assert_eq!(s.activations, 0);
    }

    #[test]
    fn single_process_advances_time() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(5));
            ctx.wait(Time::ns(7));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(12));
        assert_eq!(s.reason, StopReason::EventsExhausted);
    }

    #[test]
    fn processes_interleave_by_time() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let mut sim = Simulator::new();
        let tx1 = tx.clone();
        sim.spawn("a", move |ctx| {
            ctx.wait(Time::ns(10));
            tx1.send(("a", ctx.now())).unwrap();
        });
        sim.spawn("b", move |ctx| {
            ctx.wait(Time::ns(5));
            tx.send(("b", ctx.now())).unwrap();
        });
        sim.run().unwrap();
        let order: Vec<_> = rx.try_iter().collect();
        assert_eq!(order, vec![("b", Time::ns(5)), ("a", Time::ns(10))]);
    }

    #[test]
    fn same_instant_wakes_in_pid_order() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let mut sim = Simulator::new();
        for name in ["x", "y", "z"] {
            let tx = tx.clone();
            sim.spawn(name, move |ctx| {
                ctx.wait(Time::ns(3));
                tx.send(name).unwrap();
            });
        }
        sim.run().unwrap();
        let order: Vec<_> = rx.try_iter().collect();
        assert_eq!(order, vec!["x", "y", "z"]);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(100));
        });
        let s = sim.run_until(Time::ns(10)).unwrap();
        assert_eq!(s.reason, StopReason::TimeLimit);
        assert_eq!(s.end_time, Time::ns(10));
        let s = sim.run().unwrap();
        assert_eq!(s.reason, StopReason::EventsExhausted);
        assert_eq!(s.end_time, Time::ns(100));
    }

    #[test]
    fn zero_wait_is_one_timestep() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            let d0 = ctx.delta_count();
            ctx.wait(Time::ZERO);
            assert_eq!(ctx.now(), Time::ZERO);
            assert!(ctx.delta_count() > d0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn event_wait_and_notify() {
        let mut sim = Simulator::new();
        let ev = sim.event("go");
        let ev2 = ev.clone();
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
            assert_eq!(ctx.now(), Time::ns(42));
        });
        sim.spawn("notifier", move |ctx| {
            ctx.wait(Time::ns(42));
            ev2.notify_delta();
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(42));
    }

    #[test]
    fn immediate_notification_runs_same_evaluate_phase() {
        let mut sim = Simulator::new();
        let ev = sim.event("now");
        let ev2 = ev.clone();
        // waiter (pid 0) waits first, notifier (pid 1) fires immediately at
        // time zero; the waiter must complete in the same delta.
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
            assert_eq!(ctx.delta_count(), 0);
        });
        sim.spawn("notifier", move |_ctx| {
            ev2.notify_immediate();
        });
        sim.run().unwrap();
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulator::new();
        sim.spawn("bad", |_ctx| panic!("deliberate test panic"));
        let err = sim.run().unwrap_err();
        match err {
            SimError::ProcessPanic { process, message } => {
                assert_eq!(process, "bad");
                assert!(message.contains("deliberate"));
            }
        }
    }

    #[test]
    fn drop_kills_blocked_processes() {
        let mut sim = Simulator::new();
        let ev = sim.event("never");
        sim.spawn("stuck", move |ctx| {
            ctx.wait_event(&ev); // never notified
            unreachable!();
        });
        let s = sim.run().unwrap();
        assert_eq!(s.reason, StopReason::EventsExhausted);
        drop(sim); // must not hang or print panic noise
    }

    #[test]
    fn tracing_records_emitted_events() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(1));
            ctx.emit_trace("custom", "hello");
        });
        sim.run().unwrap();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].label, "custom");
        assert_eq!(trace[0].process, "p");
        assert_eq!(trace[0].time, Time::ns(1));
    }

    #[test]
    fn activations_are_counted() {
        let mut sim = Simulator::new();
        sim.spawn("p", |ctx| {
            ctx.wait(Time::ns(1));
            ctx.wait(Time::ns(1));
        });
        let s = sim.run().unwrap();
        // initial dispatch + 2 wakes = 3 activations
        assert_eq!(s.activations, 3);
    }

    #[test]
    fn attribution_accounts_waits_in_simulated_time() {
        let mut sim = crate::SimOptions::new().attribution(true).build();
        let ev = sim.event("go");
        let ev2 = ev.clone();
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
        });
        sim.spawn("notifier", move |ctx| {
            ctx.wait(Time::ns(42));
            ev2.notify_delta();
        });
        sim.run().unwrap();
        let stats = sim.sched_stats();
        assert!(stats.enabled);
        let waiter = &stats.processes[0];
        assert_eq!(waiter.name, "waiter");
        assert_eq!(waiter.waits, 1);
        assert_eq!(waiter.wait, Time::ns(42));
        assert_eq!(waiter.activations, 2);
        // Timed waits are wait episodes too: the notifier slept 42ns.
        let notifier = &stats.processes[1];
        assert_eq!(notifier.waits, 1);
        assert_eq!(notifier.wait, Time::ns(42));
    }

    #[test]
    fn attribution_tracks_channel_depth_and_blocked_time() {
        let mut sim = crate::SimOptions::new().attribution(true).build();
        let f = sim.fifo::<u32>("ch", 2);
        let (w, r) = (f.clone(), f);
        sim.spawn("w", move |ctx| {
            for i in 0..4 {
                w.write(ctx, i); // fills to depth 2, then blocks
            }
        });
        sim.spawn("r", move |ctx| {
            ctx.wait(Time::ns(10));
            for _ in 0..4 {
                let _ = r.read(ctx);
            }
        });
        sim.run().unwrap();
        let stats = sim.sched_stats();
        let ch = &stats.channels[0];
        assert_eq!(ch.name, "ch");
        assert_eq!(ch.writes, 4);
        assert_eq!(ch.reads, 4);
        assert_eq!(ch.max_depth, 2);
        assert!(ch.blocks > 0);
        // The writer blocked on a full FIFO until the reader started
        // draining at 10ns.
        assert!(ch.blocked >= Time::ns(10), "blocked = {:?}", ch.blocked);
        let m = sim.metrics();
        assert!(m.counter("kernel.sched.w.wait_ns").unwrap() >= 10);
        assert!(m.counter("channel.ch.max_depth").unwrap() == 2);
        assert!(m.counter("channel.ch.blocked_ns").unwrap() >= 10);
    }

    #[test]
    fn attribution_is_bit_identical_and_off_stays_zero() {
        let run = |attr: bool| {
            let mut sim = crate::SimOptions::new().attribution(attr).build();
            let f = sim.fifo::<u32>("ch", 1);
            let (w, r) = (f.clone(), f);
            sim.spawn("w", move |ctx| {
                for i in 0..8 {
                    w.write(ctx, i);
                    ctx.wait(Time::ns(3));
                }
            });
            sim.spawn("r", move |ctx| {
                for _ in 0..8 {
                    let _ = r.read(ctx);
                    ctx.wait(Time::ns(5));
                }
            });
            let summary = sim.run().unwrap();
            (summary, sim.sched_stats())
        };
        let (s_on, st_on) = run(true);
        let (s_off, st_off) = run(false);
        assert_eq!(s_on, s_off, "attribution must not change simulated results");
        assert!(st_on.enabled && !st_off.enabled);
        assert!(st_on.processes.iter().any(|p| p.waits > 0));
        assert!(st_off
            .processes
            .iter()
            .all(|p| p.waits == 0 && p.wait == Time::ZERO && p.activations == 0));
        assert!(st_off
            .channels
            .iter()
            .all(|c| c.max_depth == 0 && c.blocked == Time::ZERO));
    }

    #[test]
    #[should_panic(expected = "before the simulation starts")]
    fn spawn_after_start_panics() {
        let mut sim = Simulator::new();
        sim.run().unwrap();
        sim.spawn("late", |_| {});
    }
}
