//! Notification events.
//!
//! [`Event`] is a cloneable handle to a kernel-owned notification object,
//! the analogue of `sc_event`. Per the single-source specification
//! methodology the paper builds on (§2), *user processes never touch events
//! directly* — they interact exclusively through channels and timed waits —
//! but channels and testbench components are built from them.

use std::sync::Arc;

use crate::parallel::Effect;
use crate::state::{Shared, TimedAction};
use crate::time::Time;

/// A cloneable handle to a simulation event.
///
/// Created with [`crate::Simulator::event`] (or internally by channels).
/// Processes can block on it via [`crate::ProcCtx::wait_event`]; anyone
/// holding the handle can notify it.
#[derive(Clone)]
pub struct Event {
    pub(crate) id: usize,
    pub(crate) shared: Arc<Shared>,
}

impl Event {
    pub(crate) fn new(shared: Arc<Shared>, name: impl Into<String>) -> Event {
        let id = shared.with_state(|st| st.new_event(name));
        Event { id, shared }
    }

    /// The name given at creation.
    pub fn name(&self) -> String {
        self.shared.with_state(|st| st.events[self.id].name.clone())
    }

    /// Immediate notification: processes waiting on this event become
    /// runnable in the *current* evaluate phase (SystemC `notify()`).
    ///
    /// Under parallel evaluation (`jobs > 1`) an immediate notification
    /// that would wake a waiter *within* the current delta makes the
    /// outcome depend on process execution order; the kernel reports it
    /// as [`crate::SimError::NonDeterminate`] at the delta boundary
    /// instead of racing. Immediate notifications with no waiters stay
    /// legal (see `docs/PARALLELISM.md`).
    pub fn notify_immediate(&self) {
        if let Some(pid) = self.buffering_pid() {
            self.shared
                .par
                .append(pid, Effect::NotifyImmediate { ev: self.id });
            return;
        }
        self.shared
            .with_state(|st| st.notify_event_immediate(self.id));
    }

    /// Delta notification: waiting processes run in the next delta cycle
    /// (SystemC `notify(SC_ZERO_TIME)`).
    pub fn notify_delta(&self) {
        if let Some(pid) = self.buffering_pid() {
            self.shared
                .par
                .append(pid, Effect::NotifyDelta { ev: self.id });
            return;
        }
        self.shared.with_state(|st| st.notify_event_delta(self.id));
    }

    /// Timed notification `delay` after the current simulation time
    /// (SystemC `notify(t)`).
    pub fn notify_delayed(&self, delay: Time) {
        if let Some(pid) = self.buffering_pid() {
            self.shared.par.append(
                pid,
                Effect::Schedule {
                    delay,
                    action: TimedAction::NotifyEvent(self.id),
                },
            );
            return;
        }
        self.shared
            .with_state(|st| st.schedule(delay, TimedAction::NotifyEvent(self.id)));
    }

    /// When a parallel round is active *and* the caller is a simulation
    /// process thread, returns the pid whose effect log must buffer
    /// this notification. Events have no `ProcCtx`, so the pid comes
    /// from the process thread's thread-local.
    fn buffering_pid(&self) -> Option<usize> {
        if self.shared.par_active_fast() {
            crate::parallel::current_pid()
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("id", &self.id)
            .field("name", &self.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Simulator, Time};

    #[test]
    fn delayed_notification_fires_at_the_right_time() {
        let mut sim = Simulator::new();
        let ev = sim.event("tick");
        let ev2 = ev.clone();
        sim.spawn("waiter", move |ctx| {
            ctx.wait_event(&ev);
            assert_eq!(ctx.now(), Time::ns(25));
        });
        sim.spawn("notifier", move |_ctx| {
            ev2.notify_delayed(Time::ns(25));
        });
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(25));
    }

    #[test]
    fn notification_without_waiters_is_harmless() {
        let mut sim = Simulator::new();
        let ev = sim.event("nobody");
        sim.spawn("p", move |ctx| {
            ev.notify_immediate();
            ev.notify_delta();
            ev.notify_delayed(Time::ns(5));
            ctx.wait(Time::ns(1));
        });
        // The pending delayed notification still advances simulated time
        // to 5ns (as in SystemC) and then everything ends cleanly.
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(5));
    }

    #[test]
    fn event_name_and_debug() {
        let mut sim = Simulator::new();
        let ev = sim.event("my_event");
        assert_eq!(ev.name(), "my_event");
        let dbg = format!("{ev:?}");
        assert!(dbg.contains("my_event"));
    }

    #[test]
    fn delayed_notification_to_terminated_process_is_dropped() {
        let mut sim = Simulator::new();
        let ev = sim.event("late");
        let ev2 = ev.clone();
        sim.spawn("shortlived", move |ctx| {
            // Waits once, gets woken, terminates before the second fire.
            ctx.wait_event(&ev);
        });
        sim.spawn("notifier", move |ctx| {
            ctx.wait(Time::ns(1));
            ev2.notify_immediate();
            ev2.notify_delayed(Time::ns(10)); // no one left to hear this
        });
        // The moot notification advances time to 11ns, wakes nobody, and
        // the simulation ends.
        let s = sim.run().unwrap();
        assert_eq!(s.end_time, Time::ns(11));
    }
}
