//! The kernel's shared mutable state and the scheduler's phase primitives.
//!
//! All of this is `pub(crate)`: user code interacts with it through
//! [`crate::Simulator`], [`crate::ProcCtx`], [`crate::Event`] and the
//! channels.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::Time;
use crate::trace::TraceRecord;

/// A channel that participates in the update phase (e.g. signals, FIFOs).
///
/// `update` is called by the scheduler between the evaluate phase and delta
/// notification, with exclusive access to the kernel state so it can post
/// delta notifications.
pub(crate) trait UpdateHook: Send + Sync {
    fn update(&self, st: &mut KernelState);
}

/// Entries in the timed-notification queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TimedAction {
    /// Wake a process blocked in `wait(time)`.
    WakeProc(usize),
    /// Fire an event notified with a delay.
    NotifyEvent(usize),
}

#[derive(Debug, Default)]
pub(crate) struct EventState {
    pub(crate) name: String,
    pub(crate) waiters: BTreeSet<usize>,
}

#[derive(Debug)]
pub(crate) struct ProcMeta {
    pub(crate) name: String,
    pub(crate) alive: bool,
}

/// Everything the scheduler and the process-side handles share.
pub(crate) struct KernelState {
    pub(crate) now: Time,
    pub(crate) delta: u64,
    /// Processes runnable in the current evaluate phase, ordered by id for
    /// determinism.
    pub(crate) runnable: BTreeSet<usize>,
    /// Processes woken for the next delta cycle.
    pub(crate) next_runnable: BTreeSet<usize>,
    /// Timed notifications, ordered by (time, sequence number).
    pub(crate) timed: BinaryHeap<Reverse<(Time, u64, TimedAction)>>,
    seq: u64,
    pub(crate) events: Vec<EventState>,
    pub(crate) procs: Vec<ProcMeta>,
    /// Currently executing process (evaluate phase only).
    pub(crate) current: Option<usize>,
    /// Strong references: channels must outlive every process handle so a
    /// pending update is never lost. The resulting `Shared` ↔ channel
    /// reference cycle is broken in `Simulator::drop`.
    update_hooks: Vec<Option<Arc<dyn UpdateHook>>>,
    update_requests: BTreeSet<usize>,
    pub(crate) trace: Option<Vec<TraceRecord>>,
    pub(crate) activations: u64,
    pub(crate) started: bool,
}

impl KernelState {
    pub(crate) fn new() -> KernelState {
        KernelState {
            now: Time::ZERO,
            delta: 0,
            runnable: BTreeSet::new(),
            next_runnable: BTreeSet::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            events: Vec::new(),
            procs: Vec::new(),
            current: None,
            update_hooks: Vec::new(),
            update_requests: BTreeSet::new(),
            trace: None,
            activations: 0,
            started: false,
        }
    }

    pub(crate) fn new_event(&mut self, name: impl Into<String>) -> usize {
        let id = self.events.len();
        self.events.push(EventState {
            name: name.into(),
            waiters: BTreeSet::new(),
        });
        id
    }

    pub(crate) fn register_update_hook(&mut self, hook: Arc<dyn UpdateHook>) -> usize {
        let id = self.update_hooks.len();
        self.update_hooks.push(Some(hook));
        id
    }

    /// Breaks the `Shared` ↔ channel reference cycle at simulator teardown.
    pub(crate) fn clear_update_hooks(&mut self) {
        for h in &mut self.update_hooks {
            *h = None;
        }
    }

    pub(crate) fn request_update(&mut self, hook_id: usize) {
        self.update_requests.insert(hook_id);
    }

    /// Schedules a timed action `delay` after the current time.
    pub(crate) fn schedule(&mut self, delay: Time, action: TimedAction) {
        let at = self.now.saturating_add(delay);
        self.seq += 1;
        self.timed.push(Reverse((at, self.seq, action)));
    }

    /// Immediate notification: wakes waiters into the *current* evaluate
    /// phase (SystemC `notify()`).
    pub(crate) fn notify_event_immediate(&mut self, ev: usize) {
        let waiters = std::mem::take(&mut self.events[ev].waiters);
        for pid in waiters {
            if self.procs[pid].alive {
                self.runnable.insert(pid);
            }
        }
    }

    /// Delta notification: wakes waiters at the start of the next delta
    /// cycle (SystemC `notify(SC_ZERO_TIME)`).
    pub(crate) fn notify_event_delta(&mut self, ev: usize) {
        let waiters = std::mem::take(&mut self.events[ev].waiters);
        for pid in waiters {
            if self.procs[pid].alive {
                self.next_runnable.insert(pid);
            }
        }
    }

    /// Runs the update phase: every channel that requested an update gets
    /// its `update` callback.
    pub(crate) fn run_update_phase(&mut self) {
        while let Some(id) = self.update_requests.pop_first() {
            // Clone the Arc out so the hook may itself mutate kernel state.
            let hook = self.update_hooks[id].clone();
            if let Some(hook) = hook {
                hook.update(self);
            }
        }
    }

    /// Outcome of [`KernelState::advance_time`].
    pub(crate) fn advance_time(&mut self, limit: Time) -> AdvanceOutcome {
        loop {
            let Some(&Reverse((t, _, _))) = self.timed.peek() else {
                return AdvanceOutcome::Exhausted;
            };
            if t > limit {
                self.now = limit;
                return AdvanceOutcome::LimitReached;
            }
            self.now = t;
            self.delta += 1;
            // Fire everything scheduled for exactly this instant.
            while let Some(&Reverse((t2, _, _))) = self.timed.peek() {
                if t2 != t {
                    break;
                }
                let Reverse((_, _, action)) = self.timed.pop().expect("peeked entry");
                match action {
                    TimedAction::WakeProc(pid) => {
                        if self.procs[pid].alive {
                            self.runnable.insert(pid);
                        }
                    }
                    TimedAction::NotifyEvent(ev) => self.notify_event_immediate(ev),
                }
            }
            if !self.runnable.is_empty() {
                return AdvanceOutcome::Advanced;
            }
            // Every action at `t` was moot (dead waiters, eventless
            // notification) — keep advancing.
        }
    }

    pub(crate) fn record_trace(&mut self, pid: Option<usize>, label: &str, detail: String) {
        // Split borrows: read metadata before taking the trace buffer.
        let time = self.now;
        let delta = self.delta;
        let pid = pid.or(self.current);
        let proc_name = pid.map(|p| self.procs[p].name.clone()).unwrap_or_default();
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceRecord {
                time,
                delta,
                process: proc_name,
                label: label.to_owned(),
                detail,
            });
        }
    }

    pub(crate) fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdvanceOutcome {
    /// Time moved forward (or stayed, for zero-delay wakes) and at least one
    /// process became runnable.
    Advanced,
    /// The next timed action lies beyond the run limit.
    LimitReached,
    /// No timed actions remain.
    Exhausted,
}

/// The shared handle: one `Arc<Shared>` per simulator, cloned into every
/// process context, event and channel.
pub(crate) struct Shared {
    state: Mutex<KernelState>,
}

impl Shared {
    pub(crate) fn new() -> Arc<Shared> {
        Arc::new(Shared {
            state: Mutex::new(KernelState::new()),
        })
    }

    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut KernelState) -> R) -> R {
        f(&mut self.state.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_procs(n: usize) -> KernelState {
        let mut st = KernelState::new();
        for i in 0..n {
            st.procs.push(ProcMeta {
                name: format!("p{i}"),
                alive: true,
            });
        }
        st
    }

    #[test]
    fn schedule_orders_by_time_then_sequence() {
        let mut st = state_with_procs(3);
        st.schedule(Time::ns(5), TimedAction::WakeProc(2));
        st.schedule(Time::ns(1), TimedAction::WakeProc(0));
        st.schedule(Time::ns(1), TimedAction::WakeProc(1));
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(1));
        assert_eq!(st.runnable.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        st.runnable.clear();
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(5));
        assert!(st.runnable.contains(&2));
    }

    #[test]
    fn advance_respects_limit() {
        let mut st = state_with_procs(1);
        st.schedule(Time::ns(10), TimedAction::WakeProc(0));
        assert_eq!(st.advance_time(Time::ns(5)), AdvanceOutcome::LimitReached);
        assert_eq!(st.now, Time::ns(5));
        // The entry is still pending and fires when the limit is lifted.
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(10));
    }

    #[test]
    fn advance_skips_moot_instants() {
        let mut st = state_with_procs(2);
        st.procs[0].alive = false;
        st.schedule(Time::ns(1), TimedAction::WakeProc(0));
        st.schedule(Time::ns(2), TimedAction::WakeProc(1));
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(2));
        assert!(st.runnable.contains(&1));
    }

    #[test]
    fn exhausted_when_no_timed_actions() {
        let mut st = state_with_procs(1);
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Exhausted);
    }

    #[test]
    fn event_notification_routing() {
        let mut st = state_with_procs(2);
        let ev = st.new_event("e");
        st.events[ev].waiters.insert(0);
        st.events[ev].waiters.insert(1);
        st.notify_event_delta(ev);
        assert!(st.runnable.is_empty());
        assert_eq!(st.next_runnable.len(), 2);

        st.next_runnable.clear();
        st.events[ev].waiters.insert(0);
        st.notify_event_immediate(ev);
        assert!(st.runnable.contains(&0));
    }

    #[test]
    fn dead_processes_are_not_woken() {
        let mut st = state_with_procs(1);
        st.procs[0].alive = false;
        let ev = st.new_event("e");
        st.events[ev].waiters.insert(0);
        st.notify_event_delta(ev);
        assert!(st.next_runnable.is_empty());
    }
}
