//! The kernel's shared mutable state and the scheduler's phase primitives.
//!
//! All of this is `pub(crate)`: user code interacts with it through
//! [`crate::Simulator`], [`crate::ProcCtx`], [`crate::Event`] and the
//! channels.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use scperf_obs::{Interner, MetricsSnapshot, Payload, Sym, TraceEvent, TraceSink};
use scperf_sync::Mutex;

use crate::time::Time;
use crate::wheel::{TimerWheel, WheelPop};

/// A channel that participates in the update phase (e.g. signals, FIFOs).
///
/// `update` is called by the scheduler between the evaluate phase and delta
/// notification, with exclusive access to the kernel state so it can post
/// delta notifications.
pub(crate) trait UpdateHook: Send + Sync {
    fn update(&self, st: &mut KernelState);
}

/// Entries in the timed-notification queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TimedAction {
    /// Wake a process blocked in `wait(time)`.
    WakeProc(usize),
    /// Fire an event notified with a delay.
    NotifyEvent(usize),
}

#[derive(Debug, Default)]
pub(crate) struct EventState {
    pub(crate) name: String,
    pub(crate) waiters: BTreeSet<usize>,
}

#[derive(Debug)]
pub(crate) struct ProcMeta {
    pub(crate) name: String,
    pub(crate) alive: bool,
    /// Attribution: simulated instant this process last blocked, when
    /// it is currently waiting. `None` while runnable/running (or when
    /// attribution is off — the fields below then stay zero).
    pub(crate) wait_since: Option<Time>,
    /// Attribution: total simulated time spent blocked.
    pub(crate) wait_total: Time,
    /// Attribution: number of completed wait episodes.
    pub(crate) waits: u64,
    /// Attribution: number of times this process was dispatched.
    pub(crate) activations: u64,
}

impl ProcMeta {
    pub(crate) fn new(name: String) -> ProcMeta {
        ProcMeta {
            name,
            alive: true,
            wait_since: None,
            wait_total: Time::ZERO,
            waits: 0,
            activations: 0,
        }
    }
}

/// Always-on per-channel access counters. Channels bump these with
/// relaxed atomics on their own hot path (no kernel lock, no
/// allocation); the kernel owns a registry of them for snapshots.
#[derive(Debug, Default)]
pub(crate) struct ChanStats {
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) blocks: AtomicU64,
    /// Attribution: high-water mark of the buffered element count
    /// (FIFOs only; stays 0 elsewhere and when attribution is off).
    pub(crate) max_depth: AtomicU64,
    /// Attribution: total simulated picoseconds processes spent blocked
    /// on this channel (0 when attribution is off).
    pub(crate) blocked_ps: AtomicU64,
}

pub(crate) struct ChanStatsEntry {
    pub(crate) name: String,
    pub(crate) stats: Arc<ChanStats>,
}

/// Scheduler-internal counters, updated under the kernel lock.
#[derive(Debug, Default)]
pub(crate) struct KernelMetrics {
    pub(crate) immediate_notifications: u64,
    pub(crate) delta_notifications: u64,
    pub(crate) timed_scheduled: u64,
    pub(crate) timed_fired: u64,
    pub(crate) moot_wakes: u64,
    pub(crate) update_phases: u64,
    pub(crate) ready_peak: usize,
    pub(crate) events_recorded: u64,
}

/// Interned label symbols for the kernel's own record sites, created
/// once so the hot path never touches the intern hash map.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KernelLabels {
    pub(crate) fifo_read: Sym,
    pub(crate) fifo_write: Sym,
    pub(crate) signal_update: Sym,
    pub(crate) rendezvous_read: Sym,
    pub(crate) rendezvous_write: Sym,
}

impl KernelLabels {
    fn new(interner: &mut Interner) -> KernelLabels {
        KernelLabels {
            fifo_read: interner.intern("fifo.read"),
            fifo_write: interner.intern("fifo.write"),
            signal_update: interner.intern("signal.update"),
            rendezvous_read: interner.intern("rendezvous.read"),
            rendezvous_write: interner.intern("rendezvous.write"),
        }
    }
}

/// Everything the scheduler and the process-side handles share.
pub(crate) struct KernelState {
    pub(crate) now: Time,
    pub(crate) delta: u64,
    /// Processes runnable in the current evaluate phase, ordered by id for
    /// determinism.
    pub(crate) runnable: BTreeSet<usize>,
    /// Processes woken for the next delta cycle.
    pub(crate) next_runnable: BTreeSet<usize>,
    /// Timed notifications, fired in (time, sequence number) order.
    pub(crate) timed: TimerWheel,
    seq: u64,
    pub(crate) events: Vec<EventState>,
    pub(crate) procs: Vec<ProcMeta>,
    /// Currently executing process (evaluate phase only).
    pub(crate) current: Option<usize>,
    /// Strong references: channels must outlive every process handle so a
    /// pending update is never lost. The resulting `Shared` ↔ channel
    /// reference cycle is broken in `Simulator::drop`.
    update_hooks: Vec<Option<Arc<dyn UpdateHook>>>,
    update_requests: BTreeSet<usize>,
    /// Structured trace sink; `None` disables tracing entirely.
    pub(crate) sink: Option<Box<dyn TraceSink>>,
    /// Symbol table for labels, channel names and text payloads.
    pub(crate) interner: Interner,
    pub(crate) labels: KernelLabels,
    pub(crate) metrics: KernelMetrics,
    pub(crate) chan_stats: Vec<ChanStatsEntry>,
    pub(crate) activations: u64,
    pub(crate) started: bool,
    /// Attribution accounting toggle (mirrored lock-free in
    /// [`Shared::attribution_fast`] for channel hot paths).
    pub(crate) attribution: bool,
}

impl KernelState {
    pub(crate) fn new() -> KernelState {
        let mut interner = Interner::new();
        let labels = KernelLabels::new(&mut interner);
        KernelState {
            now: Time::ZERO,
            delta: 0,
            runnable: BTreeSet::new(),
            next_runnable: BTreeSet::new(),
            timed: TimerWheel::new(),
            seq: 0,
            events: Vec::new(),
            procs: Vec::new(),
            current: None,
            update_hooks: Vec::new(),
            update_requests: BTreeSet::new(),
            sink: None,
            interner,
            labels,
            metrics: KernelMetrics::default(),
            chan_stats: Vec::new(),
            activations: 0,
            started: false,
            attribution: false,
        }
    }

    /// Closes an attribution wait episode for `pid` at the current
    /// simulated time. Cheap no-op when the process was not blocked
    /// (attribution off, or a spurious wake).
    fn end_wait(&mut self, pid: usize) {
        if let Some(since) = self.procs[pid].wait_since.take() {
            let p = &mut self.procs[pid];
            p.wait_total = p.wait_total.saturating_add(self.now.saturating_sub(since));
            p.waits += 1;
        }
    }

    pub(crate) fn new_event(&mut self, name: impl Into<String>) -> usize {
        let id = self.events.len();
        self.events.push(EventState {
            name: name.into(),
            waiters: BTreeSet::new(),
        });
        id
    }

    pub(crate) fn register_update_hook(&mut self, hook: Arc<dyn UpdateHook>) -> usize {
        let id = self.update_hooks.len();
        self.update_hooks.push(Some(hook));
        id
    }

    /// Breaks the `Shared` ↔ channel reference cycle at simulator teardown.
    pub(crate) fn clear_update_hooks(&mut self) {
        for h in &mut self.update_hooks {
            *h = None;
        }
    }

    /// Returns the state to its just-constructed condition so a pooled
    /// simulator slot can be reused without rebuilding: time, delta
    /// counter, ready queues, time wheel, events, process table, update
    /// hooks, metrics and channel registries are all cleared, and the
    /// interner is rebuilt. Rebuilding the interner is safe for the
    /// immutable [`KernelLabels`] copy in [`Shared::labels`]: the five
    /// kernel labels are interned first and in a fixed order, so the
    /// fresh interner assigns them the same `Sym` ids. The trace sink
    /// is dropped (the caller re-syncs the lock-free tracing mirror and
    /// reinstalls a sink if it wants one); the `attribution` flag keeps
    /// its value, matching its lock-free mirror.
    pub(crate) fn reset(&mut self) {
        self.now = Time::ZERO;
        self.delta = 0;
        self.runnable.clear();
        self.next_runnable.clear();
        self.timed = TimerWheel::new();
        self.seq = 0;
        self.events.clear();
        self.procs.clear();
        self.current = None;
        self.update_hooks.clear();
        self.update_requests.clear();
        self.sink = None;
        let mut interner = Interner::new();
        self.labels = KernelLabels::new(&mut interner);
        self.interner = interner;
        self.metrics = KernelMetrics::default();
        self.chan_stats.clear();
        self.activations = 0;
        self.started = false;
    }

    pub(crate) fn request_update(&mut self, hook_id: usize) {
        self.update_requests.insert(hook_id);
    }

    /// Schedules a timed action `delay` after the current time.
    pub(crate) fn schedule(&mut self, delay: Time, action: TimedAction) {
        let at = self.now.saturating_add(delay);
        self.seq += 1;
        self.metrics.timed_scheduled += 1;
        self.timed.push(at.as_ps(), self.seq, action);
    }

    /// Immediate notification: wakes waiters into the *current* evaluate
    /// phase (SystemC `notify()`).
    pub(crate) fn notify_event_immediate(&mut self, ev: usize) {
        self.metrics.immediate_notifications += 1;
        let waiters = std::mem::take(&mut self.events[ev].waiters);
        for pid in waiters {
            if self.procs[pid].alive {
                self.runnable.insert(pid);
                self.end_wait(pid);
            }
        }
        self.note_ready_depth();
    }

    /// Delta notification: wakes waiters at the start of the next delta
    /// cycle (SystemC `notify(SC_ZERO_TIME)`).
    pub(crate) fn notify_event_delta(&mut self, ev: usize) {
        self.metrics.delta_notifications += 1;
        let waiters = std::mem::take(&mut self.events[ev].waiters);
        for pid in waiters {
            if self.procs[pid].alive {
                self.next_runnable.insert(pid);
                // Delta wakes land at the same simulated instant, so
                // this contributes zero time but counts the episode.
                self.end_wait(pid);
            }
        }
    }

    fn note_ready_depth(&mut self) {
        let depth = self.runnable.len().max(self.next_runnable.len());
        if depth > self.metrics.ready_peak {
            self.metrics.ready_peak = depth;
        }
    }

    /// Runs the update phase: every channel that requested an update gets
    /// its `update` callback.
    pub(crate) fn run_update_phase(&mut self) {
        if !self.update_requests.is_empty() {
            self.metrics.update_phases += 1;
        }
        while let Some(id) = self.update_requests.pop_first() {
            // Clone the Arc out so the hook may itself mutate kernel state.
            let hook = self.update_hooks[id].clone();
            if let Some(hook) = hook {
                hook.update(self);
            }
        }
    }

    /// Outcome of [`KernelState::advance_time`].
    pub(crate) fn advance_time(&mut self, limit: Time) -> AdvanceOutcome {
        loop {
            // Fire everything scheduled for the earliest pending instant.
            let (t, actions) = match self.timed.pop_next(limit.as_ps()) {
                WheelPop::Empty => return AdvanceOutcome::Exhausted,
                WheelPop::Beyond => {
                    self.now = limit;
                    self.timed.fast_forward(limit.as_ps());
                    return AdvanceOutcome::LimitReached;
                }
                WheelPop::Fired { time, actions } => (Time::ps(time), actions),
            };
            self.now = t;
            self.delta += 1;
            for (_, action) in actions {
                self.metrics.timed_fired += 1;
                match action {
                    TimedAction::WakeProc(pid) => {
                        if self.procs[pid].alive {
                            self.runnable.insert(pid);
                            // `self.now` is already the wake instant.
                            self.end_wait(pid);
                        } else {
                            self.metrics.moot_wakes += 1;
                        }
                    }
                    TimedAction::NotifyEvent(ev) => self.notify_event_immediate(ev),
                }
            }
            if !self.runnable.is_empty() {
                self.note_ready_depth();
                return AdvanceOutcome::Advanced;
            }
            // Every action at `t` was moot (dead waiters, eventless
            // notification) — keep advancing.
        }
    }

    /// Records one structured trace event. No-op without a sink; with
    /// one, this copies a few words plus the payload — no `String`
    /// clones (the legacy hot path cloned process + label + detail per
    /// record).
    pub(crate) fn record_event(
        &mut self,
        pid: Option<usize>,
        label: Sym,
        chan: Sym,
        payload: Payload,
    ) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let pid = pid
            .or(self.current)
            .map(|p| p as u32)
            .unwrap_or(scperf_obs::NO_PROCESS);
        self.metrics.events_recorded += 1;
        sink.record(
            &self.interner,
            &TraceEvent {
                time_ps: self.now.as_ps(),
                delta: self.delta,
                pid,
                label,
                chan,
                payload,
            },
        );
    }

    /// Records a user-emitted event with a free-form text detail.
    pub(crate) fn record_text(&mut self, pid: Option<usize>, label: &str, detail: &str) {
        if self.sink.is_none() {
            return;
        }
        let label = self.interner.intern(label);
        self.record_event(pid, label, Sym::NONE, Payload::text(detail));
    }

    pub(crate) fn tracing_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Registers a channel's always-on access counters; returns the
    /// handle the channel bumps from its own lock.
    pub(crate) fn register_chan_stats(&mut self, name: &str) -> Arc<ChanStats> {
        let stats = Arc::new(ChanStats::default());
        self.chan_stats.push(ChanStatsEntry {
            name: name.to_owned(),
            stats: Arc::clone(&stats),
        });
        stats
    }

    /// Builds a metrics snapshot of the kernel's internals: scheduler
    /// counters plus per-channel access counts.
    pub(crate) fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set_counter("kernel.delta_cycles", self.delta);
        m.set_counter("kernel.context_switches", self.activations);
        m.set_counter("kernel.processes", self.procs.len() as u64);
        m.set_counter("kernel.events", self.events.len() as u64);
        m.set_counter(
            "kernel.notifications.immediate",
            self.metrics.immediate_notifications,
        );
        m.set_counter(
            "kernel.notifications.delta",
            self.metrics.delta_notifications,
        );
        m.set_counter("kernel.timed.scheduled", self.metrics.timed_scheduled);
        m.set_counter("kernel.timed.fired", self.metrics.timed_fired);
        m.set_counter("kernel.timed.moot_wakes", self.metrics.moot_wakes);
        m.set_counter("kernel.wheel.pushes", self.timed.stats.pushes);
        m.set_counter(
            "kernel.wheel.overflow_pushes",
            self.timed.stats.overflow_pushes,
        );
        m.set_counter("kernel.wheel.scan_steps", self.timed.stats.scan_steps);
        m.set_gauge("kernel.timed.pending", self.timed.len() as f64);
        m.set_counter("kernel.update_phases", self.metrics.update_phases);
        m.set_counter("kernel.ready_queue.peak", self.metrics.ready_peak as u64);
        m.set_counter("kernel.trace.events_recorded", self.metrics.events_recorded);
        m.set_gauge("kernel.sim_time_ns", self.now.as_ps() as f64 / 1e3);
        for entry in &self.chan_stats {
            let base = format!("channel.{}", entry.name);
            m.set_counter(
                format!("{base}.reads"),
                entry.stats.reads.load(Ordering::Relaxed),
            );
            m.set_counter(
                format!("{base}.writes"),
                entry.stats.writes.load(Ordering::Relaxed),
            );
            m.set_counter(
                format!("{base}.blocks"),
                entry.stats.blocks.load(Ordering::Relaxed),
            );
            if self.attribution {
                m.set_counter(
                    format!("{base}.max_depth"),
                    entry.stats.max_depth.load(Ordering::Relaxed),
                );
                m.set_counter(
                    format!("{base}.blocked_ns"),
                    entry.stats.blocked_ps.load(Ordering::Relaxed) / 1_000,
                );
            }
        }
        if self.attribution {
            for p in &self.procs {
                let base = format!("kernel.sched.{}", p.name);
                m.set_counter(format!("{base}.wait_ns"), p.wait_total.as_ps() / 1_000);
                m.set_counter(format!("{base}.waits"), p.waits);
                m.set_counter(format!("{base}.activations"), p.activations);
            }
        }
        m
    }

    /// Builds the structured attribution snapshot surfaced through
    /// [`crate::Simulator::sched_stats`].
    pub(crate) fn sched_snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            enabled: self.attribution,
            processes: self
                .procs
                .iter()
                .map(|p| ProcSchedStats {
                    name: p.name.clone(),
                    activations: p.activations,
                    waits: p.waits,
                    wait: p.wait_total,
                })
                .collect(),
            channels: self
                .chan_stats
                .iter()
                .map(|e| ChannelSchedStats {
                    name: e.name.clone(),
                    reads: e.stats.reads.load(Ordering::Relaxed),
                    writes: e.stats.writes.load(Ordering::Relaxed),
                    blocks: e.stats.blocks.load(Ordering::Relaxed),
                    max_depth: e.stats.max_depth.load(Ordering::Relaxed),
                    blocked: Time::ps(e.stats.blocked_ps.load(Ordering::Relaxed)),
                })
                .collect(),
        }
    }
}

/// Per-process scheduling attribution, in *simulated* time. Part of a
/// [`SchedSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSchedStats {
    /// Process name as given to `spawn`.
    pub name: String,
    /// Number of times the scheduler dispatched this process.
    pub activations: u64,
    /// Number of completed wait episodes (a process still blocked at
    /// the end of the run is not counted).
    pub waits: u64,
    /// Total simulated time spent blocked across those episodes.
    pub wait: Time,
}

/// Per-channel access and contention counters. Part of a
/// [`SchedSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSchedStats {
    /// Channel name.
    pub name: String,
    /// Completed read operations.
    pub reads: u64,
    /// Completed write operations.
    pub writes: u64,
    /// Times a process blocked on this channel (full/empty/absent peer).
    pub blocks: u64,
    /// High-water mark of the buffered element count (FIFOs; 0 for
    /// unbuffered channels or when attribution is off).
    pub max_depth: u64,
    /// Total simulated time processes spent blocked on this channel
    /// (zero when attribution is off).
    pub blocked: Time,
}

/// Snapshot of the kernel's scheduling attribution: who waited, for how
/// long, and on which channels. Obtained from
/// [`crate::Simulator::sched_stats`]. The time-valued fields are only
/// populated when [`crate::SimOptions::attribution`] was enabled;
/// `enabled` records which.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedSnapshot {
    /// Whether attribution accounting was on for this run.
    pub enabled: bool,
    /// Per-process stats, in spawn order.
    pub processes: Vec<ProcSchedStats>,
    /// Per-channel stats, in registration order.
    pub channels: Vec<ChannelSchedStats>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdvanceOutcome {
    /// Time moved forward (or stayed, for zero-delay wakes) and at least one
    /// process became runnable.
    Advanced,
    /// The next timed action lies beyond the run limit.
    LimitReached,
    /// No timed actions remain.
    Exhausted,
}

/// The shared handle: one `Arc<Shared>` per simulator, cloned into every
/// process context, event and channel.
pub(crate) struct Shared {
    state: Mutex<KernelState>,
    /// Mirror of `KernelState::tracing_enabled()`, readable without the
    /// kernel lock so channels can skip payload capture entirely when
    /// tracing is off (the zero-allocation disabled path).
    tracing: AtomicBool,
    /// Mirror of `KernelState::attribution`, readable without the
    /// kernel lock so channels can skip wait-span timestamping and
    /// depth tracking entirely when attribution is off.
    attribution: AtomicBool,
    /// Parallel-evaluate round state (effect logs, gate, counters).
    pub(crate) par: crate::parallel::ParShared,
    /// Copy of `KernelState::labels`, readable without the kernel lock
    /// so parallel rounds can build buffered trace effects lock-free.
    pub(crate) labels: KernelLabels,
}

impl Shared {
    pub(crate) fn new() -> Arc<Shared> {
        let state = KernelState::new();
        let labels = state.labels;
        Arc::new(Shared {
            state: Mutex::new(state),
            tracing: AtomicBool::new(false),
            attribution: AtomicBool::new(false),
            par: crate::parallel::ParShared::new(),
            labels,
        })
    }

    /// Lock-free check: is a parallel evaluate round in flight? When
    /// true, process-side kernel effects must be buffered via
    /// [`Shared::par`] instead of mutating the kernel state.
    #[inline]
    pub(crate) fn par_active_fast(&self) -> bool {
        self.par.active_fast()
    }

    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut KernelState) -> R) -> R {
        f(&mut self.state.lock())
    }

    /// Lock-free check used by channels before capturing payloads.
    pub(crate) fn tracing_fast(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Lock-free check used by channels before attribution accounting.
    pub(crate) fn attribution_fast(&self) -> bool {
        self.attribution.load(Ordering::Relaxed)
    }

    /// Enables/disables attribution accounting, keeping the lock-free
    /// mirror flag in sync.
    pub(crate) fn set_attribution(&self, enable: bool) {
        self.with_state(|st| {
            self.attribution.store(enable, Ordering::Relaxed);
            st.attribution = enable;
        });
    }

    /// Installs (or removes) the trace sink, keeping the lock-free
    /// mirror flag in sync.
    pub(crate) fn set_sink(&self, sink: Option<Box<dyn TraceSink>>) {
        self.with_state(|st| {
            self.tracing.store(sink.is_some(), Ordering::Relaxed);
            st.sink = sink;
        });
    }

    /// Takes the current sink out (e.g. to drain a `MemorySink`),
    /// leaving tracing disabled.
    pub(crate) fn take_sink(&self) -> Option<Box<dyn TraceSink>> {
        self.with_state(|st| {
            self.tracing.store(false, Ordering::Relaxed);
            st.sink.take()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_procs(n: usize) -> KernelState {
        let mut st = KernelState::new();
        for i in 0..n {
            st.procs.push(ProcMeta::new(format!("p{i}")));
        }
        st
    }

    #[test]
    fn schedule_orders_by_time_then_sequence() {
        let mut st = state_with_procs(3);
        st.schedule(Time::ns(5), TimedAction::WakeProc(2));
        st.schedule(Time::ns(1), TimedAction::WakeProc(0));
        st.schedule(Time::ns(1), TimedAction::WakeProc(1));
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(1));
        assert_eq!(st.runnable.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        st.runnable.clear();
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(5));
        assert!(st.runnable.contains(&2));
    }

    #[test]
    fn advance_respects_limit() {
        let mut st = state_with_procs(1);
        st.schedule(Time::ns(10), TimedAction::WakeProc(0));
        assert_eq!(st.advance_time(Time::ns(5)), AdvanceOutcome::LimitReached);
        assert_eq!(st.now, Time::ns(5));
        // The entry is still pending and fires when the limit is lifted.
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(10));
    }

    #[test]
    fn advance_skips_moot_instants() {
        let mut st = state_with_procs(2);
        st.procs[0].alive = false;
        st.schedule(Time::ns(1), TimedAction::WakeProc(0));
        st.schedule(Time::ns(2), TimedAction::WakeProc(1));
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Advanced);
        assert_eq!(st.now, Time::ns(2));
        assert!(st.runnable.contains(&1));
    }

    #[test]
    fn exhausted_when_no_timed_actions() {
        let mut st = state_with_procs(1);
        assert_eq!(st.advance_time(Time::MAX), AdvanceOutcome::Exhausted);
    }

    #[test]
    fn event_notification_routing() {
        let mut st = state_with_procs(2);
        let ev = st.new_event("e");
        st.events[ev].waiters.insert(0);
        st.events[ev].waiters.insert(1);
        st.notify_event_delta(ev);
        assert!(st.runnable.is_empty());
        assert_eq!(st.next_runnable.len(), 2);

        st.next_runnable.clear();
        st.events[ev].waiters.insert(0);
        st.notify_event_immediate(ev);
        assert!(st.runnable.contains(&0));
    }

    #[test]
    fn reset_reproduces_fresh_state_and_label_syms() {
        let mut st = state_with_procs(2);
        let fresh_labels = st.labels;
        st.schedule(Time::ns(5), TimedAction::WakeProc(1));
        let _ = st.new_event("e");
        st.interner.intern("user-label-that-shifts-sym-ids");
        st.activations = 7;
        st.started = true;
        st.reset();
        assert_eq!(st.now, Time::ZERO);
        assert_eq!(st.delta, 0);
        assert!(st.runnable.is_empty() && st.next_runnable.is_empty());
        assert_eq!(st.timed.len(), 0);
        assert!(st.events.is_empty() && st.procs.is_empty());
        assert_eq!(st.activations, 0);
        assert!(!st.started);
        // The fixed intern order reproduces identical label symbols, so
        // the immutable copy in `Shared::labels` stays valid.
        assert_eq!(st.labels.fifo_read, fresh_labels.fifo_read);
        assert_eq!(st.labels.signal_update, fresh_labels.signal_update);
        assert_eq!(st.labels.rendezvous_write, fresh_labels.rendezvous_write);
    }

    #[test]
    fn dead_processes_are_not_woken() {
        let mut st = state_with_procs(1);
        st.procs[0].alive = false;
        let ev = st.new_event("e");
        st.events[ev].waiters.insert(0);
        st.notify_event_delta(ev);
        assert!(st.next_runnable.is_empty());
    }
}
