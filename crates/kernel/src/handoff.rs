//! Direct-handoff scheduling: the kernel's hot-path replacement for the
//! mutex+condvar run-baton.
//!
//! Every process activation in the cooperative kernel is a round trip:
//! the scheduler hands execution to one process thread and blocks until
//! the process yields it back. The original [`crate::baton`] paid a mutex
//! acquisition, a condvar notification and a condvar wait on *each* side
//! of that round trip. The paper's strict-timed methodology assumes the
//! kernel's own overhead is negligible next to segment estimation, so
//! this module cuts the protocol down to the minimum the OS allows:
//!
//! * one shared [`AtomicU8`] encodes who holds the baton
//!   (`WAITING`/`RUNNING`/`DONE`/`KILL`),
//! * the handing-over side flips the state with a release store and
//!   issues exactly one [`Thread::unpark`] on the other side's thread,
//! * the blocked side **spins briefly** (bounded, with
//!   [`std::hint::spin_loop`]) re-checking the state before falling back
//!   to [`std::thread::park`] — short activations (a FIFO write between
//!   two waits) complete without any sleeping syscall at all.
//!
//! There is no mutex on the hot path. The only locks left are cold:
//! the panic-message slot written once at process termination.
//!
//! # Safety argument for the unsynchronized cells
//!
//! `sched_thread` and `yield_stamp` live in [`UnsafeCell`]s, synchronized
//! by the baton protocol itself rather than by a lock:
//!
//! * the *scheduler* writes `sched_thread` only while it holds the baton
//!   (every process is `WAITING`, `DONE`, or not yet started — none of
//!   them read the cell in those states), and the write
//!   happens-before the process's next read via the release store of
//!   `RUNNING` / acquire load in the process's park loop;
//! * the *process* reads `sched_thread` and writes `yield_stamp` only
//!   while **it** holds the baton (state is `RUNNING`, the scheduler is
//!   blocked in [`DirectHandoff::dispatch`]), and its writes
//!   happen-before the scheduler's reads via the release store of
//!   `WAITING`/`DONE` / acquire load in the scheduler's park loop.
//!
//! Exactly one side holds the baton at any instant — that is the
//! kernel's core invariant — so the cells are never accessed
//! concurrently.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use scperf_sync::Mutex;

use crate::baton::{kill_unwind, CondvarBaton, RunState};

/// Which scheduler ↔ process handoff protocol a [`crate::Simulator`]
/// uses. See [`crate::SimOptions::handoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandoffKind {
    /// Lock-free direct handoff built on `std::thread::park`/`unpark`
    /// with a bounded spin phase. The default.
    Direct,
    /// The original mutex+condvar run-baton, kept as a debugging
    /// fallback. Compile with the `condvar-baton` cargo feature (or set
    /// `SCPERF_HANDOFF=condvar`) to make it the default again.
    CondvarBaton,
}

impl HandoffKind {
    /// The kind new simulators use: the `condvar-baton` feature flips
    /// the default to the fallback protocol, and the `SCPERF_HANDOFF`
    /// environment variable (`direct` / `condvar`) overrides both.
    pub fn default_kind() -> HandoffKind {
        static KIND: OnceLock<HandoffKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("SCPERF_HANDOFF").as_deref() {
            Ok("condvar") => HandoffKind::CondvarBaton,
            Ok("direct") => HandoffKind::Direct,
            _ if cfg!(feature = "condvar-baton") => HandoffKind::CondvarBaton,
            _ => HandoffKind::Direct,
        })
    }
}

/// Baton states packed into one atomic byte.
const WAITING: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;
const KILL: u8 = 3;

/// Bounded spin iterations before parking. Short enough that a core is
/// never burned for more than a few hundred nanoseconds when the other
/// side is genuinely busy; long enough that a prompt handoff (the common
/// case in fine-grained models) never reaches the parking syscall.
const SPIN_LIMIT: u32 = 128;

/// The effective spin budget for this host. On a single-CPU machine the
/// peer thread *cannot* make progress while we spin — every `pause`
/// iteration only delays the context switch that must happen anyway (and
/// `pause` costs ~140 cycles on modern x86), so the budget drops to zero
/// and both sides park immediately.
fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| match thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_LIMIT,
        _ => 0,
    })
}

/// The park/unpark direct-handoff protocol for one process.
pub(crate) struct DirectHandoff {
    state: AtomicU8,
    /// The process's OS thread, set once right after spawn.
    proc_thread: OnceLock<Thread>,
    /// The scheduler's OS thread, (re)registered at the start of every
    /// `run_until` call. See the module-level safety argument.
    sched_thread: UnsafeCell<Option<Thread>>,
    /// Host-clock stamp taken by the process just before it returns the
    /// baton; the scheduler turns it into the resume-latency metric.
    yield_stamp: UnsafeCell<Option<Instant>>,
    /// Panic message from a terminated process (cold path).
    panic_msg: Mutex<Option<String>>,
}

// SAFETY: the `UnsafeCell`s are synchronized by the baton protocol — see
// the module-level safety argument.
unsafe impl Sync for DirectHandoff {}

impl DirectHandoff {
    pub(crate) fn new() -> DirectHandoff {
        DirectHandoff {
            state: AtomicU8::new(WAITING),
            proc_thread: OnceLock::new(),
            sched_thread: UnsafeCell::new(None),
            yield_stamp: UnsafeCell::new(None),
            panic_msg: Mutex::new(None),
        }
    }

    /// Registers the process's OS thread (scheduler side, once, right
    /// after the thread is spawned).
    pub(crate) fn set_proc_thread(&self, t: Thread) {
        let _ = self.proc_thread.set(t);
    }

    /// Registers the scheduler's OS thread. Must only be called while
    /// the scheduler holds the baton (e.g. at the start of a run).
    pub(crate) fn set_scheduler(&self, t: &Thread) {
        // SAFETY: no process reads the cell unless it holds the baton;
        // the caller holds it. See the module-level safety argument.
        unsafe { *self.sched_thread.get() = Some(t.clone()) };
    }

    /// Scheduler side: hand the baton to the process and block until it
    /// comes back. Returns the state observed when the baton returned
    /// plus the process→scheduler resume latency, if measurable.
    pub(crate) fn dispatch(&self) -> (RunState, Option<Duration>) {
        debug_assert_eq!(self.state.load(Ordering::Acquire), WAITING);
        self.state.store(RUNNING, Ordering::Release);
        self.proc_thread
            .get()
            .expect("process thread registered before dispatch")
            .unpark();
        let limit = spin_limit();
        let mut spins = 0;
        let observed = loop {
            match self.state.load(Ordering::Acquire) {
                RUNNING => {
                    if spins < limit {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        thread::park();
                    }
                }
                s => break s,
            }
        };
        // SAFETY: the process stored its stamp before releasing the
        // baton; we hold it now. See the module-level safety argument.
        let latency = unsafe { (*self.yield_stamp.get()).take() }.map(|t0| t0.elapsed());
        let state = match observed {
            WAITING => RunState::Waiting,
            DONE => RunState::Done(self.panic_msg.lock().take()),
            s => unreachable!("dispatch observed unexpected handoff state {s}"),
        };
        (state, latency)
    }

    /// Process side: give the baton back to the scheduler and block
    /// until it is handed over again.
    ///
    /// # Panics
    ///
    /// Unwinds with [`crate::baton::KillToken`] when the simulator is
    /// shutting down.
    pub(crate) fn yield_to_scheduler(&self) {
        let sched = self.release_to_scheduler(WAITING);
        sched.unpark();
        let limit = spin_limit();
        let mut spins = 0;
        loop {
            match self.state.load(Ordering::Acquire) {
                RUNNING => return,
                KILL => kill_unwind(),
                _ => {
                    if spins < limit {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        thread::park();
                    }
                }
            }
        }
    }

    /// Process side: initial park before the body has ever run. Returns
    /// `false` when the thread was killed before ever being dispatched.
    pub(crate) fn wait_first_dispatch(&self) -> bool {
        loop {
            match self.state.load(Ordering::Acquire) {
                RUNNING => return true,
                KILL => return false,
                _ => thread::park(),
            }
        }
    }

    /// Process side: report termination (normal or panicked) and release
    /// the baton forever.
    pub(crate) fn finish(&self, panic_msg: Option<String>) {
        *self.panic_msg.lock() = panic_msg;
        let sched = self.release_to_scheduler(DONE);
        sched.unpark();
    }

    /// Scheduler side: order the thread to unwind. Harmless if the
    /// thread already finished.
    pub(crate) fn kill(&self) {
        let mut s = self.state.load(Ordering::Acquire);
        while s != DONE {
            match self
                .state
                .compare_exchange_weak(s, KILL, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(cur) => s = cur,
            }
        }
        if let Some(t) = self.proc_thread.get() {
            t.unpark();
        }
    }

    /// Stamps the yield time, clones the scheduler handle and publishes
    /// `next_state` with release ordering. Must only be called by the
    /// process while it holds the baton.
    fn release_to_scheduler(&self, next_state: u8) -> Thread {
        // SAFETY: we hold the baton (state is RUNNING); the scheduler is
        // blocked and touches neither cell. See the module-level safety
        // argument.
        let sched = unsafe {
            *self.yield_stamp.get() = Some(Instant::now());
            (*self.sched_thread.get())
                .clone()
                .expect("scheduler thread registered before first dispatch")
        };
        self.state.store(next_state, Ordering::Release);
        sched
    }
}

impl std::fmt::Debug for DirectHandoff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectHandoff")
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish()
    }
}

/// The per-process handoff object used by the scheduler and the process
/// context: one of the two protocols, chosen per simulator at
/// construction time.
#[derive(Debug)]
pub(crate) enum Baton {
    Direct(DirectHandoff),
    Condvar(CondvarBaton),
}

impl Baton {
    pub(crate) fn new(kind: HandoffKind) -> Baton {
        match kind {
            HandoffKind::Direct => Baton::Direct(DirectHandoff::new()),
            HandoffKind::CondvarBaton => Baton::Condvar(CondvarBaton::new()),
        }
    }

    pub(crate) fn set_proc_thread(&self, t: Thread) {
        if let Baton::Direct(h) = self {
            h.set_proc_thread(t);
        }
    }

    pub(crate) fn set_scheduler(&self, t: &Thread) {
        if let Baton::Direct(h) = self {
            h.set_scheduler(t);
        }
    }

    /// Scheduler side: returns the observed state and, on the direct
    /// protocol, the process→scheduler resume latency.
    pub(crate) fn dispatch(&self) -> (RunState, Option<Duration>) {
        match self {
            Baton::Direct(h) => h.dispatch(),
            Baton::Condvar(b) => (b.dispatch(), None),
        }
    }

    pub(crate) fn yield_to_scheduler(&self) {
        match self {
            Baton::Direct(h) => h.yield_to_scheduler(),
            Baton::Condvar(b) => b.yield_to_scheduler(),
        }
    }

    pub(crate) fn wait_first_dispatch(&self) -> bool {
        match self {
            Baton::Direct(h) => h.wait_first_dispatch(),
            Baton::Condvar(b) => b.wait_first_dispatch(),
        }
    }

    pub(crate) fn finish(&self, panic_msg: Option<String>) {
        match self {
            Baton::Direct(h) => h.finish(panic_msg),
            Baton::Condvar(b) => b.finish(panic_msg),
        }
    }

    pub(crate) fn kill(&self) {
        match self {
            Baton::Direct(h) => h.kill(),
            Baton::Condvar(b) => b.kill(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn round_trip(kind: HandoffKind) {
        let baton = Arc::new(Baton::new(kind));
        let b2 = Arc::clone(&baton);
        let t = thread::spawn(move || {
            assert!(b2.wait_first_dispatch());
            b2.yield_to_scheduler();
            b2.finish(None);
        });
        baton.set_proc_thread(t.thread().clone());
        baton.set_scheduler(&thread::current());
        assert_eq!(baton.dispatch().0, RunState::Waiting);
        assert_eq!(baton.dispatch().0, RunState::Done(None));
        t.join().unwrap();
    }

    #[test]
    fn direct_round_trip() {
        round_trip(HandoffKind::Direct);
    }

    #[test]
    fn condvar_round_trip() {
        round_trip(HandoffKind::CondvarBaton);
    }

    #[test]
    fn direct_kill_before_first_dispatch() {
        let baton = Arc::new(Baton::new(HandoffKind::Direct));
        let b2 = Arc::clone(&baton);
        let t = thread::spawn(move || b2.wait_first_dispatch());
        baton.set_proc_thread(t.thread().clone());
        baton.kill();
        assert!(!t.join().unwrap());
    }

    #[test]
    fn direct_reports_resume_latency() {
        let baton = Arc::new(Baton::new(HandoffKind::Direct));
        let b2 = Arc::clone(&baton);
        let t = thread::spawn(move || {
            assert!(b2.wait_first_dispatch());
            b2.finish(None);
        });
        baton.set_proc_thread(t.thread().clone());
        baton.set_scheduler(&thread::current());
        let (state, latency) = baton.dispatch();
        assert_eq!(state, RunState::Done(None));
        assert!(
            latency.is_some(),
            "direct handoff must stamp resume latency"
        );
        t.join().unwrap();
    }

    #[test]
    fn many_rapid_round_trips() {
        // Hammer the spin/park boundary: enough round trips that both
        // the spin fast path and the park slow path are exercised.
        for kind in [HandoffKind::Direct, HandoffKind::CondvarBaton] {
            let baton = Arc::new(Baton::new(kind));
            let b2 = Arc::clone(&baton);
            let t = thread::spawn(move || {
                assert!(b2.wait_first_dispatch());
                for i in 0..10_000 {
                    if i % 97 == 0 {
                        // Occasionally linger so the scheduler side
                        // exhausts its spin budget and parks.
                        std::thread::yield_now();
                    }
                    b2.yield_to_scheduler();
                }
                b2.finish(None);
            });
            baton.set_proc_thread(t.thread().clone());
            baton.set_scheduler(&thread::current());
            for _ in 0..10_000 {
                assert_eq!(baton.dispatch().0, RunState::Waiting);
            }
            assert_eq!(baton.dispatch().0, RunState::Done(None));
            t.join().unwrap();
        }
    }
}
