//! VCD (Value Change Dump) export of simulation traces — the analogue of
//! SystemC's `sc_trace`/`sc_create_vcd_trace_file`.
//!
//! The kernel's [`TraceRecord`]s already carry every signal update with
//! its timestamp; [`trace_to_vcd`] renders the signal-valued subset as a
//! standard VCD document viewable in GTKWave & co. Values are parsed from
//! the record details (`name=value`); integer values become vectored
//! variables, anything else a real.
//!
//! # Examples
//!
//! ```
//! use scperf_kernel::{vcd, Simulator, Time};
//!
//! let mut sim = Simulator::new();
//! sim.enable_tracing();
//! let s = sim.signal("req", 0_i32);
//! let sw = s.clone();
//! sim.spawn("driver", move |ctx| {
//!     for i in 1..=3 {
//!         ctx.wait(Time::ns(10));
//!         sw.write(ctx, i);
//!     }
//! });
//! sim.run()?;
//! let doc = vcd::trace_to_vcd(&sim.take_trace(), "1ns");
//! assert!(doc.contains("$var"));
//! assert!(doc.contains("#10"));
//! # Ok::<(), scperf_kernel::SimError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::time::Time;
use crate::trace::TraceRecord;

/// Errors from VCD export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcdError {
    /// The timescale string did not parse as `<multiplier><unit>`.
    Malformed {
        /// The offending input.
        input: String,
    },
    /// The multiplier parsed but is not one of 1, 10 or 100 (the only
    /// values IEEE 1364 allows in a `$timescale` declaration).
    BadMultiplier {
        /// The offending input.
        input: String,
        /// The parsed multiplier.
        multiplier: u64,
    },
    /// The unit is not one of `ps`, `ns`, `us`, `ms` (or `s`).
    BadUnit {
        /// The offending input.
        input: String,
        /// The parsed unit suffix.
        unit: String,
    },
}

impl fmt::Display for VcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcdError::Malformed { input } => write!(
                f,
                "unsupported timescale '{input}': expected <multiplier><unit>, e.g. '1ns' or '10ps'"
            ),
            VcdError::BadMultiplier { input, multiplier } => write!(
                f,
                "unsupported timescale '{input}': multiplier {multiplier} is not 1, 10 or 100"
            ),
            VcdError::BadUnit { input, unit } => write!(
                f,
                "unsupported timescale '{input}': unknown unit '{unit}' (use ps/ns/us/ms/s)"
            ),
        }
    }
}

impl std::error::Error for VcdError {}

/// Parses a VCD `$timescale` declaration body (e.g. `"1ns"`, `"10ps"`,
/// `"100 us"`) into the number of picoseconds per VCD time unit.
///
/// IEEE 1364 allows multipliers 1, 10 and 100 with units down to `fs`;
/// this kernel's [`Time`] has picosecond resolution, so the supported
/// units are `ps`, `ns`, `us`, `ms` and `s`.
///
/// # Errors
///
/// Returns a [`VcdError`] describing which part of the declaration was
/// rejected.
pub fn parse_timescale(timescale: &str) -> Result<u64, VcdError> {
    let body = timescale.trim();
    let split = body
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| VcdError::Malformed {
            input: timescale.to_owned(),
        })?;
    let (digits, unit) = body.split_at(split);
    let multiplier: u64 = digits.parse().map_err(|_| VcdError::Malformed {
        input: timescale.to_owned(),
    })?;
    if !matches!(multiplier, 1 | 10 | 100) {
        return Err(VcdError::BadMultiplier {
            input: timescale.to_owned(),
            multiplier,
        });
    }
    let ps_per_unit: u64 = match unit.trim() {
        "ps" => 1,
        "ns" => 1_000,
        "us" => 1_000_000,
        "ms" => 1_000_000_000,
        "s" => 1_000_000_000_000,
        other => {
            return Err(VcdError::BadUnit {
                input: timescale.to_owned(),
                unit: other.to_owned(),
            })
        }
    };
    Ok(multiplier * ps_per_unit)
}

/// A parsed signal value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    /// Integer (rendered as a 32-bit vector).
    Int(i64),
    /// Anything else (rendered as a real via its hash — placeholder for
    /// non-numeric payloads).
    Other(String),
}

fn parse_detail(detail: &str) -> Option<(&str, Value)> {
    let (name, value) = detail.split_once('=')?;
    if let Ok(i) = value.parse::<i64>() {
        Some((name, Value::Int(i)))
    } else if let Ok(b) = value.parse::<bool>() {
        Some((name, Value::Int(b as i64)))
    } else {
        Some((name, Value::Other(value.to_owned())))
    }
}

/// VCD identifier codes: `!`, `"`, `#`, … (printable ASCII 33..=126).
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    code
}

/// Converts the signal-update records of a trace into a VCD document.
///
/// `timescale` is the VCD timescale declaration (e.g. `"1ns"`, `"10ps"`);
/// record timestamps are converted to that unit. Records whose `label` is
/// not `"signal.update"` are ignored.
///
/// # Panics
///
/// Panics on an invalid timescale declaration; use
/// [`trace_to_vcd_checked`] to handle the error instead.
pub fn trace_to_vcd(trace: &[TraceRecord], timescale: &str) -> String {
    match trace_to_vcd_checked(trace, timescale) {
        Ok(doc) => doc,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`trace_to_vcd`], but returns a [`VcdError`] instead of
/// panicking when the timescale declaration is invalid.
pub fn trace_to_vcd_checked(trace: &[TraceRecord], timescale: &str) -> Result<String, VcdError> {
    let ps_per_unit = parse_timescale(timescale)?;
    // Collect signals in order of first appearance.
    let mut ids: BTreeMap<String, String> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for r in trace {
        if r.label != "signal.update" {
            continue;
        }
        if let Some((name, _)) = parse_detail(&r.detail) {
            if !ids.contains_key(name) {
                ids.insert(name.to_owned(), id_code(order.len()));
                order.push(name.to_owned());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "$date scperf $end");
    let _ = writeln!(out, "$version scperf-kernel VCD export $end");
    let _ = writeln!(out, "$timescale {timescale} $end");
    let _ = writeln!(out, "$scope module top $end");
    for name in &order {
        let _ = writeln!(out, "$var wire 32 {} {} $end", ids[name], name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let _ = writeln!(out, "$dumpvars");
    for name in &order {
        let _ = writeln!(out, "b0 {}", ids[name]);
    }
    let _ = writeln!(out, "$end");
    let mut last_time: Option<Time> = None;
    for r in trace {
        if r.label != "signal.update" {
            continue;
        }
        let Some((name, value)) = parse_detail(&r.detail) else {
            continue;
        };
        if last_time != Some(r.time) {
            let _ = writeln!(out, "#{}", r.time.as_ps() / ps_per_unit);
            last_time = Some(r.time);
        }
        let id = &ids[name];
        match value {
            Value::Int(i) => {
                let _ = writeln!(out, "b{:b} {}", i as u32, id);
            }
            Value::Other(s) => {
                // Encode non-numeric payloads by length (placeholder).
                let _ = writeln!(out, "b{:b} {}", s.len() as u32, id);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn rec(time_ns: u64, detail: &str) -> TraceRecord {
        TraceRecord {
            time: Time::ns(time_ns),
            delta: 0,
            process: String::new(),
            label: "signal.update".into(),
            detail: detail.into(),
        }
    }

    #[test]
    fn header_declares_all_signals() {
        let t = vec![rec(0, "a=1"), rec(5, "b=2"), rec(9, "a=3")];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(doc.contains("$timescale 1ns $end"));
        assert!(doc.contains("$var wire 32 ! a $end"));
        assert!(doc.contains("$var wire 32 \" b $end"));
        assert!(doc.contains("$enddefinitions $end"));
    }

    #[test]
    fn timestamps_convert_to_the_timescale() {
        let t = vec![rec(10, "a=1"), rec(25, "a=2")];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(doc.contains("\n#10\n"));
        assert!(doc.contains("\n#25\n"));
        let doc_ps = trace_to_vcd(&t, "1ps");
        assert!(doc_ps.contains("\n#10000\n"));
    }

    #[test]
    fn values_are_binary_vectors() {
        let t = vec![rec(1, "a=5"), rec(2, "a=-1")];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(doc.contains("b101 !"));
        assert!(doc.contains(&format!("b{:b} !", u32::MAX)));
    }

    #[test]
    fn same_instant_updates_share_one_timestamp() {
        let t = vec![rec(7, "a=1"), rec(7, "b=2")];
        let doc = trace_to_vcd(&t, "1ns");
        assert_eq!(doc.matches("#7").count(), 1);
    }

    #[test]
    fn non_signal_records_are_ignored() {
        let t = vec![TraceRecord {
            time: Time::ns(1),
            delta: 0,
            process: "p".into(),
            label: "fifo.write".into(),
            detail: "f=1".into(),
        }];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(!doc.contains("#1\n"));
        assert!(!doc.contains("$var wire 32 ! f"));
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn end_to_end_simulation_export() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let s = sim.signal("clk_ish", 0_u32);
        let sw = s.clone();
        sim.spawn("drv", move |ctx| {
            for i in 1..=4_u32 {
                ctx.wait(Time::ns(5));
                sw.write(ctx, i);
            }
        });
        sim.run().unwrap();
        let doc = trace_to_vcd(&sim.take_trace(), "1ns");
        assert!(doc.contains("clk_ish"));
        assert!(doc.contains("#20"));
        assert!(doc.contains("b100 !"));
    }

    #[test]
    #[should_panic(expected = "unsupported timescale")]
    fn bad_timescale_is_rejected() {
        let _ = trace_to_vcd(&[], "3fs");
    }

    #[test]
    fn timescale_parser_accepts_multiplier_unit_pairs() {
        assert_eq!(parse_timescale("1ps"), Ok(1));
        assert_eq!(parse_timescale("10ps"), Ok(10));
        assert_eq!(parse_timescale("100ns"), Ok(100_000));
        assert_eq!(parse_timescale("1us"), Ok(1_000_000));
        assert_eq!(parse_timescale("10ms"), Ok(10_000_000_000));
        assert_eq!(parse_timescale("1s"), Ok(1_000_000_000_000));
        // Whitespace between multiplier and unit, as VCD files often have.
        assert_eq!(parse_timescale(" 10 ns "), Ok(10_000));
    }

    #[test]
    fn timescale_parser_rejects_bad_input_with_typed_errors() {
        match parse_timescale("3fs") {
            Err(VcdError::BadMultiplier { multiplier: 3, .. }) => {}
            other => panic!("expected BadMultiplier, got {other:?}"),
        }
        match parse_timescale("1fs") {
            Err(VcdError::BadUnit { ref unit, .. }) if unit == "fs" => {}
            other => panic!("expected BadUnit, got {other:?}"),
        }
        match parse_timescale("ns") {
            Err(VcdError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert!(matches!(
            parse_timescale("1000ns"),
            Err(VcdError::BadMultiplier {
                multiplier: 1000,
                ..
            })
        ));
        assert!(matches!(
            parse_timescale(""),
            Err(VcdError::Malformed { .. })
        ));
        assert!(matches!(
            parse_timescale("10"),
            Err(VcdError::Malformed { .. })
        ));
    }

    #[test]
    fn checked_export_reports_errors_instead_of_panicking() {
        let err = trace_to_vcd_checked(&[], "2ns").unwrap_err();
        assert!(err.to_string().contains("unsupported timescale"));
        assert!(trace_to_vcd_checked(&[], "10ns").is_ok());
    }

    #[test]
    fn multiplier_scales_timestamps() {
        let t = vec![rec(100, "a=1")];
        let doc = trace_to_vcd(&t, "10ns");
        // 100ns = 10 units of 10ns.
        assert!(doc.contains("\n#10\n"));
    }

    #[test]
    fn headers_stay_unique_past_94_signals() {
        // More signals than single-character id codes: every $var line
        // must still get a distinct identifier.
        let trace: Vec<TraceRecord> = (0..200).map(|i| rec(i, &format!("sig{i}=1"))).collect();
        let doc = trace_to_vcd(&trace, "1ns");
        let mut ids = std::collections::HashSet::new();
        let mut vars = 0;
        for line in doc.lines() {
            if let Some(rest) = line.strip_prefix("$var wire 32 ") {
                let id = rest.split_whitespace().next().unwrap();
                assert!(ids.insert(id.to_owned()), "duplicate id code {id}");
                vars += 1;
            }
        }
        assert_eq!(vars, 200);
        assert!(ids.iter().any(|id| id.len() > 1), "multi-char codes in use");
    }
}
