//! VCD (Value Change Dump) export of simulation traces — the analogue of
//! SystemC's `sc_trace`/`sc_create_vcd_trace_file`.
//!
//! The kernel's [`TraceRecord`]s already carry every signal update with
//! its timestamp; [`trace_to_vcd`] renders the signal-valued subset as a
//! standard VCD document viewable in GTKWave & co. Values are parsed from
//! the record details (`name=value`); integer values become vectored
//! variables, anything else a real.
//!
//! # Examples
//!
//! ```
//! use scperf_kernel::{vcd, Simulator, Time};
//!
//! let mut sim = Simulator::new();
//! sim.enable_tracing();
//! let s = sim.signal("req", 0_i32);
//! let sw = s.clone();
//! sim.spawn("driver", move |ctx| {
//!     for i in 1..=3 {
//!         ctx.wait(Time::ns(10));
//!         sw.write(ctx, i);
//!     }
//! });
//! sim.run()?;
//! let doc = vcd::trace_to_vcd(&sim.take_trace(), "1ns");
//! assert!(doc.contains("$var"));
//! assert!(doc.contains("#10"));
//! # Ok::<(), scperf_kernel::SimError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::Time;
use crate::trace::TraceRecord;

/// A parsed signal value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    /// Integer (rendered as a 32-bit vector).
    Int(i64),
    /// Anything else (rendered as a real via its hash — placeholder for
    /// non-numeric payloads).
    Other(String),
}

fn parse_detail(detail: &str) -> Option<(&str, Value)> {
    let (name, value) = detail.split_once('=')?;
    if let Ok(i) = value.parse::<i64>() {
        Some((name, Value::Int(i)))
    } else if let Ok(b) = value.parse::<bool>() {
        Some((name, Value::Int(b as i64)))
    } else {
        Some((name, Value::Other(value.to_owned())))
    }
}

/// VCD identifier codes: `!`, `"`, `#`, … (printable ASCII 33..=126).
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    code
}

/// Converts the signal-update records of a trace into a VCD document.
///
/// `timescale` is the VCD timescale declaration (e.g. `"1ns"`, `"1ps"`);
/// record timestamps are converted to that unit. Records whose `label` is
/// not `"signal.update"` are ignored.
pub fn trace_to_vcd(trace: &[TraceRecord], timescale: &str) -> String {
    let ps_per_unit: u64 = match timescale {
        "1ps" => 1,
        "1ns" => 1_000,
        "1us" => 1_000_000,
        "1ms" => 1_000_000_000,
        other => panic!("unsupported timescale '{other}' (use 1ps/1ns/1us/1ms)"),
    };
    // Collect signals in order of first appearance.
    let mut ids: BTreeMap<String, String> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for r in trace {
        if r.label != "signal.update" {
            continue;
        }
        if let Some((name, _)) = parse_detail(&r.detail) {
            if !ids.contains_key(name) {
                ids.insert(name.to_owned(), id_code(order.len()));
                order.push(name.to_owned());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "$date scperf $end");
    let _ = writeln!(out, "$version scperf-kernel VCD export $end");
    let _ = writeln!(out, "$timescale {timescale} $end");
    let _ = writeln!(out, "$scope module top $end");
    for name in &order {
        let _ = writeln!(out, "$var wire 32 {} {} $end", ids[name], name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let _ = writeln!(out, "$dumpvars");
    for name in &order {
        let _ = writeln!(out, "b0 {}", ids[name]);
    }
    let _ = writeln!(out, "$end");
    let mut last_time: Option<Time> = None;
    for r in trace {
        if r.label != "signal.update" {
            continue;
        }
        let Some((name, value)) = parse_detail(&r.detail) else {
            continue;
        };
        if last_time != Some(r.time) {
            let _ = writeln!(out, "#{}", r.time.as_ps() / ps_per_unit);
            last_time = Some(r.time);
        }
        let id = &ids[name];
        match value {
            Value::Int(i) => {
                let _ = writeln!(out, "b{:b} {}", i as u32, id);
            }
            Value::Other(s) => {
                // Encode non-numeric payloads by length (placeholder).
                let _ = writeln!(out, "b{:b} {}", s.len() as u32, id);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn rec(time_ns: u64, detail: &str) -> TraceRecord {
        TraceRecord {
            time: Time::ns(time_ns),
            delta: 0,
            process: String::new(),
            label: "signal.update".into(),
            detail: detail.into(),
        }
    }

    #[test]
    fn header_declares_all_signals() {
        let t = vec![rec(0, "a=1"), rec(5, "b=2"), rec(9, "a=3")];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(doc.contains("$timescale 1ns $end"));
        assert!(doc.contains("$var wire 32 ! a $end"));
        assert!(doc.contains("$var wire 32 \" b $end"));
        assert!(doc.contains("$enddefinitions $end"));
    }

    #[test]
    fn timestamps_convert_to_the_timescale() {
        let t = vec![rec(10, "a=1"), rec(25, "a=2")];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(doc.contains("\n#10\n"));
        assert!(doc.contains("\n#25\n"));
        let doc_ps = trace_to_vcd(&t, "1ps");
        assert!(doc_ps.contains("\n#10000\n"));
    }

    #[test]
    fn values_are_binary_vectors() {
        let t = vec![rec(1, "a=5"), rec(2, "a=-1")];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(doc.contains("b101 !"));
        assert!(doc.contains(&format!("b{:b} !", u32::MAX)));
    }

    #[test]
    fn same_instant_updates_share_one_timestamp() {
        let t = vec![rec(7, "a=1"), rec(7, "b=2")];
        let doc = trace_to_vcd(&t, "1ns");
        assert_eq!(doc.matches("#7").count(), 1);
    }

    #[test]
    fn non_signal_records_are_ignored() {
        let t = vec![TraceRecord {
            time: Time::ns(1),
            delta: 0,
            process: "p".into(),
            label: "fifo.write".into(),
            detail: "f=1".into(),
        }];
        let doc = trace_to_vcd(&t, "1ns");
        assert!(!doc.contains("#1\n"));
        assert!(!doc.contains("$var wire 32 ! f"));
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.bytes().all(|b| (33..=126).contains(&b)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn end_to_end_simulation_export() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let s = sim.signal("clk_ish", 0_u32);
        let sw = s.clone();
        sim.spawn("drv", move |ctx| {
            for i in 1..=4_u32 {
                ctx.wait(Time::ns(5));
                sw.write(ctx, i);
            }
        });
        sim.run().unwrap();
        let doc = trace_to_vcd(&sim.take_trace(), "1ns");
        assert!(doc.contains("clk_ish"));
        assert!(doc.contains("#20"));
        assert!(doc.contains("b100 !"));
    }

    #[test]
    #[should_panic(expected = "unsupported timescale")]
    fn bad_timescale_is_rejected() {
        let _ = trace_to_vcd(&[], "3fs");
    }
}
