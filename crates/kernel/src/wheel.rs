//! Hierarchical time wheel backing the kernel's timed-notification queue.
//!
//! The seed kernel kept timed notifications in a
//! `BinaryHeap<Reverse<(Time, u64, TimedAction)>>`: every `schedule` and
//! every pop paid an `O(log n)` sift over a single comparison-heavy heap.
//! This module replaces it with the classic discrete-event structure for
//! the job — a hierarchical timing wheel over the picosecond [`Time`]
//! axis — while preserving the kernel's observable semantics exactly:
//! actions fire in `(time, sequence)` order, so traces are bit-identical
//! to the heap-based queue.
//!
//! # Structure
//!
//! * [`LEVELS`] wheel levels of 64 slots each. Level `l` has a slot
//!   granularity of `64^l` ps; an entry scheduled `delta` ps ahead of the
//!   wheel's `base` is filed at level `floor(log64(delta))`, in the slot
//!   `(time >> 6l) & 63`. Push is O(1).
//! * Entries farther than `64^LEVELS` ps (≈ 68.7 ms of simulated time)
//!   ahead go to an **overflow level**, an ordered `BTreeMap` keyed by
//!   absolute time. Far-future timers are rare in the paper's workloads,
//!   so the map stays tiny.
//!
//! # Why no cascades?
//!
//! Tick-driven wheels (the Linux timer wheel) re-file every higher-level
//! slot into lower levels as the cursor passes it — the "cascade". This
//! kernel never ticks: [`crate::state::KernelState::advance_time`] jumps
//! straight to the earliest pending instant. The wheel therefore leaves
//! entries at their insertion level forever and instead *scans lazily* at
//! pop time: per level, a 64-bit occupancy bitmap rotated by the cursor
//! position finds the earliest non-empty slot in a couple of machine
//! instructions. Two invariants make the scan exact:
//!
//! 1. `base` never passes a stored entry (it only advances to popped
//!    times), so every level-`l` entry keeps `0 <= time - base <
//!    64^(l+1)` — less than one full wheel revolution. Slot order by
//!    rotation distance from the cursor is therefore time order.
//! 2. The only aliasing a revolution allows is an entry one full wrap
//!    ahead landing in the *cursor's own slot*, so that slot's minimum is
//!    always checked explicitly alongside the rotation scan.
//!
//! The per-pop scan work is surfaced as `scan_steps` in
//! [`WheelStats`] (the observability counterpart of a tick wheel's
//! cascade count).

use std::collections::BTreeMap;

use crate::state::TimedAction;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond `64^LEVELS` ps relative, entries
/// overflow to the BTreeMap.
const LEVELS: usize = 6;
/// Relative horizon covered by the wheel levels, in picoseconds.
const SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: u64,
    seq: u64,
    action: TimedAction,
}

#[derive(Debug)]
struct Level {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: Vec<Vec<Entry>>,
}

impl Level {
    fn new() -> Level {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// Always-on counters describing the wheel's work, exported through the
/// kernel metrics snapshot.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WheelStats {
    /// Entries filed into a wheel level.
    pub(crate) pushes: u64,
    /// Entries filed into the overflow BTreeMap (beyond the wheel span).
    pub(crate) overflow_pushes: u64,
    /// Slots inspected while locating earliest entries — the lazy-scan
    /// analogue of a tick wheel's cascade work.
    pub(crate) scan_steps: u64,
}

/// Result of [`TimerWheel::pop_next`].
#[derive(Debug)]
pub(crate) enum WheelPop {
    /// All actions scheduled for the earliest pending instant, in
    /// sequence (FIFO) order.
    Fired { time: u64, actions: Vec<Entry2> },
    /// The earliest pending instant lies beyond the caller's limit.
    Beyond,
    /// The queue is empty.
    Empty,
}

/// A fired `(seq, action)` pair. Public-in-crate alias kept small so
/// `WheelPop` stays copy-friendly to destructure.
pub(crate) type Entry2 = (u64, TimedAction);

/// The timed-notification queue: hierarchical wheel plus overflow map.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    /// Lower bound on every stored time; advanced on every pop.
    base: u64,
    levels: Vec<Level>,
    overflow: BTreeMap<u64, Vec<Entry2>>,
    len: usize,
    pub(crate) stats: WheelStats,
}

impl TimerWheel {
    pub(crate) fn new() -> TimerWheel {
        TimerWheel {
            base: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BTreeMap::new(),
            len: 0,
            stats: WheelStats::default(),
        }
    }

    /// Number of pending entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Files an action at absolute time `at` with FIFO tie-break `seq`.
    ///
    /// `at` must not lie in the past (`at >= base`); the kernel only
    /// schedules at `now + delay` and `base` trails `now`.
    pub(crate) fn push(&mut self, at: u64, seq: u64, action: TimedAction) {
        debug_assert!(at >= self.base, "timed action scheduled in the past");
        let delta = at - self.base;
        if delta >= SPAN {
            self.stats.overflow_pushes += 1;
            self.overflow.entry(at).or_default().push((seq, action));
        } else {
            self.stats.pushes += 1;
            let level = level_for(delta);
            let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let lvl = &mut self.levels[level];
            lvl.slots[slot].push(Entry {
                time: at,
                seq,
                action,
            });
            lvl.occupied |= 1 << slot;
        }
        self.len += 1;
    }

    /// The earliest pending time, if any.
    pub(crate) fn next_time(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            if let Some(t) = self.level_min(level) {
                best = Some(best.map_or(t, |b: u64| b.min(t)));
            }
        }
        if let Some((&t, _)) = self.overflow.first_key_value() {
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        best
    }

    /// Pops every action scheduled for the earliest pending instant, in
    /// sequence order, provided that instant is `<= limit`. Advances
    /// `base` to the popped instant.
    pub(crate) fn pop_next(&mut self, limit: u64) -> WheelPop {
        let Some(t) = self.next_time() else {
            return WheelPop::Empty;
        };
        if t > limit {
            return WheelPop::Beyond;
        }
        let mut out: Vec<Entry2> = Vec::new();
        // An entry at time `t` can only live in the level-l slot
        // addressed by `t` (for any level) or in the overflow map.
        for level in 0..LEVELS {
            let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let lvl = &mut self.levels[level];
            if lvl.occupied & (1 << slot) == 0 {
                continue;
            }
            let v = &mut lvl.slots[slot];
            let mut i = 0;
            while i < v.len() {
                if v[i].time == t {
                    let e = v.swap_remove(i);
                    out.push((e.seq, e.action));
                } else {
                    i += 1;
                }
            }
            if v.is_empty() {
                lvl.occupied &= !(1 << slot);
            }
        }
        if let Some(v) = self.overflow.remove(&t) {
            out.extend(v);
        }
        debug_assert!(!out.is_empty(), "next_time pointed at an empty instant");
        self.len -= out.len();
        out.sort_unstable_by_key(|&(seq, _)| seq);
        self.base = t;
        WheelPop::Fired {
            time: t,
            actions: out,
        }
    }

    /// Advances `base` to `t` without firing anything. Callable only when
    /// every pending entry lies strictly beyond `t` (e.g. after a
    /// `run_until` limit was reached); keeps subsequent pushes filing at
    /// the tightest possible level.
    pub(crate) fn fast_forward(&mut self, t: u64) {
        if t > self.base {
            debug_assert!(self.next_time().is_none_or(|n| n > t));
            self.base = t;
        }
    }

    /// Minimum pending time within one level, or `None` if the level is
    /// empty.
    fn level_min(&mut self, level: usize) -> Option<u64> {
        let shift = SLOT_BITS * level as u32;
        let lvl = &self.levels[level];
        if lvl.occupied == 0 {
            return None;
        }
        let cursor = ((self.base >> shift) & (SLOTS as u64 - 1)) as u32;
        let mut best: Option<u64> = None;
        // The cursor's own slot may mix entries from the current block
        // with entries one full revolution ahead, so it is always
        // inspected explicitly.
        if lvl.occupied & (1 << cursor) != 0 {
            self.stats.scan_steps += 1;
            best = self.levels[level].slots[cursor as usize]
                .iter()
                .map(|e| e.time)
                .min();
        }
        // All other slots are alias-free: the first non-empty one in
        // rotation order from the cursor holds the earliest block.
        let rest = self.levels[level].occupied & !(1 << cursor);
        if rest != 0 {
            self.stats.scan_steps += 1;
            let pos = rest.rotate_right(cursor).trailing_zeros();
            let slot = ((cursor + pos) & (SLOTS as u32 - 1)) as usize;
            let m = self.levels[level].slots[slot].iter().map(|e| e.time).min();
            best = match (best, m) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        best
    }
}

/// The wheel level covering a relative offset of `delta` ps:
/// `floor(log64(delta))`, with `delta == 0` on level 0.
#[inline]
fn level_for(delta: u64) -> usize {
    if delta < SLOTS as u64 {
        0
    } else {
        (63 - delta.leading_zeros() as usize) / SLOT_BITS as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn wake(pid: usize) -> TimedAction {
        TimedAction::WakeProc(pid)
    }

    fn drain(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        loop {
            match w.pop_next(u64::MAX) {
                WheelPop::Fired { time, actions } => {
                    for (seq, _) in actions {
                        out.push((time, seq));
                    }
                }
                WheelPop::Empty => return out,
                WheelPop::Beyond => unreachable!("no limit"),
            }
        }
    }

    #[test]
    fn levels_are_assigned_by_magnitude() {
        assert_eq!(level_for(0), 0);
        assert_eq!(level_for(63), 0);
        assert_eq!(level_for(64), 1);
        assert_eq!(level_for(4095), 1);
        assert_eq!(level_for(4096), 2);
        assert_eq!(level_for(SPAN - 1), LEVELS - 1);
    }

    #[test]
    fn fires_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(5_000, 1, wake(0));
        w.push(1_000, 2, wake(1));
        w.push(1_000, 3, wake(2));
        w.push(0, 4, wake(3));
        assert_eq!(
            drain(&mut w),
            vec![(0, 4), (1_000, 2), (1_000, 3), (5_000, 1)]
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn respects_limit() {
        let mut w = TimerWheel::new();
        w.push(10_000, 1, wake(0));
        assert!(matches!(w.pop_next(5_000), WheelPop::Beyond));
        assert!(matches!(w.pop_next(10_000), WheelPop::Fired { .. }));
    }

    #[test]
    fn overflow_entries_fire_and_interleave_with_wheel() {
        let mut w = TimerWheel::new();
        // Far beyond the wheel span: goes to the overflow map.
        let far = SPAN * 3 + 17;
        w.push(far, 1, wake(0));
        assert_eq!(w.stats.overflow_pushes, 1);
        // Near entry fires first.
        w.push(500, 2, wake(1));
        assert_eq!(drain(&mut w), vec![(500, 2), (far, 1)]);
    }

    #[test]
    fn same_time_in_wheel_and_overflow_merges_by_seq() {
        let mut w = TimerWheel::new();
        let t = SPAN + 100;
        w.push(t, 1, wake(0)); // overflow (delta >= SPAN)
        w.push(100, 2, wake(1));
        // Fire the near entry; base advances to 100, so t is now within
        // the wheel span and files into a level.
        assert!(matches!(w.pop_next(u64::MAX), WheelPop::Fired { .. }));
        w.push(t, 3, wake(2)); // wheel level, same instant as the overflow entry
        match w.pop_next(u64::MAX) {
            WheelPop::Fired { time, actions } => {
                assert_eq!(time, t);
                let seqs: Vec<u64> = actions.iter().map(|&(s, _)| s).collect();
                assert_eq!(seqs, vec![1, 3], "seq order across wheel and overflow");
            }
            other => panic!("expected fire, got {other:?}"),
        }
    }

    #[test]
    fn cursor_slot_aliasing_does_not_mask_nearer_entries() {
        // Regression shape for the one aliasing a revolution allows: an
        // entry almost a full level-1 revolution ahead lands in the
        // cursor's own slot and must not shadow a nearer entry in a
        // later slot.
        let mut w = TimerWheel::new();
        // Advance base to 90 via a fired entry.
        w.push(90, 1, wake(0));
        assert!(matches!(w.pop_next(u64::MAX), WheelPop::Fired { .. }));
        // base = 90; level-1 cursor slot is (90 >> 6) & 63 = 1.
        // `far` files at level 1 into slot (4160 >> 6) & 63 = 1 (cursor),
        // `near` at level 1 into slot (200 >> 6) & 63 = 3.
        w.push(4_160, 2, wake(1));
        w.push(200, 3, wake(2));
        assert_eq!(drain(&mut w), vec![(200, 3), (4_160, 2)]);
    }

    #[test]
    fn matches_binary_heap_oracle_on_random_workloads() {
        // Deterministic xorshift; no external RNG crates offline.
        let mut s: u64 = 0x9E3779B97F4A7C15;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for round in 0..50 {
            let mut wheel = TimerWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64, TimedAction)>> = BinaryHeap::new();
            let mut now = 0_u64;
            let mut seq = 0_u64;
            let mut fired_wheel = Vec::new();
            let mut fired_heap = Vec::new();
            for _ in 0..200 {
                // Schedule a burst at the current instant.
                let burst = 1 + (rng() % 4);
                for _ in 0..burst {
                    let delta = match rng() % 5 {
                        0 => rng() % 64,                // level 0
                        1 => rng() % 4_096,             // level <= 1
                        2 => rng() % 1_000_000,         // level <= 3
                        3 => rng() % SPAN,              // any level
                        _ => SPAN + rng() % (SPAN * 4), // overflow
                    };
                    seq += 1;
                    let action = wake((seq % 7) as usize);
                    wheel.push(now + delta, seq, action);
                    heap.push(Reverse((now + delta, seq, action)));
                }
                // Pop one instant from both.
                let limit = if round % 3 == 0 {
                    now + rng() % (2 * SPAN)
                } else {
                    u64::MAX
                };
                match wheel.pop_next(limit) {
                    WheelPop::Fired { time, actions } => {
                        for (sq, a) in actions {
                            fired_wheel.push((time, sq, a));
                        }
                        now = time;
                    }
                    WheelPop::Beyond | WheelPop::Empty => {}
                }
                // Heap oracle pops every entry at its earliest instant.
                if let Some(&Reverse((t, _, _))) = heap.peek() {
                    if t <= limit {
                        while let Some(&Reverse((t2, sq, a))) = heap.peek() {
                            if t2 != t {
                                break;
                            }
                            heap.pop();
                            fired_heap.push((t2, sq, a));
                        }
                    }
                }
                assert_eq!(fired_wheel, fired_heap, "divergence in round {round}");
            }
            // Drain both completely.
            for (t, sq) in drain(&mut wheel) {
                fired_wheel.push((t, sq, wake(0)));
            }
            while let Some(Reverse((t, sq, _))) = heap.pop() {
                fired_heap.push((t, sq, wake(0)));
            }
            let strip = |v: &[(u64, u64, TimedAction)]| {
                v.iter().map(|&(t, s, _)| (t, s)).collect::<Vec<_>>()
            };
            assert_eq!(strip(&fired_wheel), strip(&fired_heap));
        }
    }
}
