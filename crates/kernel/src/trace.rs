//! Simulation traces.
//!
//! When tracing is enabled the kernel records one [`TraceRecord`] per
//! channel access, timed wait and user-emitted event. Traces serve two
//! purposes in the methodology:
//!
//! 1. The strict-timed vs untimed comparison of the paper's Figure 5.
//! 2. The non-determinism check of §6: if the *functional* content of the
//!    trace changes when timing back-annotation reorders process execution,
//!    the specification was non-deterministic (potentially wrong).

use std::fmt;

use scperf_obs::{Sym, TraceEvent, TraceTable, NO_PROCESS};

use crate::time::Time;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the occurrence.
    pub time: Time,
    /// Global delta-cycle counter value.
    pub delta: u64,
    /// Name of the process that caused it (empty for kernel-level records).
    pub process: String,
    /// Record class, e.g. `"fifo.write"`, `"signal.update"`, `"capture"`.
    pub label: String,
    /// Free-form payload, typically the transferred value.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} δ{}] {:<12} {:<14} {}",
            self.time, self.delta, self.process, self.label, self.detail
        )
    }
}

/// Materializes one compact [`TraceEvent`] into the legacy string-based
/// [`TraceRecord`] view, reproducing the exact strings the old
/// `String`-per-field hot path produced (`"name=value"` details for
/// channel events, the raw text for user-emitted records, an empty
/// process name for kernel-level events).
pub fn materialize_record(table: &TraceTable, ev: &TraceEvent) -> TraceRecord {
    let process = if ev.pid == NO_PROCESS {
        String::new()
    } else {
        table
            .process_names
            .get(ev.pid as usize)
            .cloned()
            .unwrap_or_default()
    };
    let detail = if ev.chan == Sym::NONE {
        ev.payload.to_string()
    } else {
        format!("{}={}", table.resolve(ev.chan), ev.payload)
    };
    TraceRecord {
        time: Time::ps(ev.time_ps),
        delta: ev.delta,
        process,
        label: table.resolve(ev.label).to_string(),
        detail,
    }
}

/// The functional projection of a trace: only (process, label, detail),
/// with time and delta stripped.
///
/// Two simulations of a *deterministic* model — one untimed, one
/// strict-timed — must agree on each process's functional projection even
/// though global interleaving changes.
pub fn functional_projection(trace: &[TraceRecord]) -> Vec<(String, String, String)> {
    trace
        .iter()
        .map(|r| (r.process.clone(), r.label.clone(), r.detail.clone()))
        .collect()
}

/// Compares the *per-stream* functional content of two traces, ignoring
/// global ordering. A stream is a process; kernel-level records (empty
/// process name, e.g. signal updates) are grouped by the channel they
/// describe (the `name=` prefix of the detail), since updates of distinct
/// signals are causally independent. Returns the streams whose observable
/// behaviour differs; an empty list means the model behaved
/// deterministically across the two runs.
///
/// This is the check the paper proposes in §6: running the same model
/// untimed and strict-timed and diffing the results detects specifications
/// whose outcome depends on scheduling order.
pub fn compare_traces(a: &[TraceRecord], b: &[TraceRecord]) -> Vec<String> {
    use std::collections::BTreeMap;
    fn stream_key(r: &TraceRecord) -> String {
        if r.process.is_empty() {
            let channel = r.detail.split('=').next().unwrap_or("");
            format!("{}:{}", r.label, channel)
        } else {
            r.process.clone()
        }
    }
    fn collect(t: &[TraceRecord]) -> BTreeMap<String, Vec<(&str, &str)>> {
        let mut map: BTreeMap<String, Vec<(&str, &str)>> = BTreeMap::new();
        for r in t {
            map.entry(stream_key(r))
                .or_default()
                .push((&r.label, &r.detail));
        }
        map
    }
    let per_stream_a = collect(a);
    let per_stream_b = collect(b);
    let mut differing = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        per_stream_a.keys().chain(per_stream_b.keys()).collect();
    for name in names {
        if per_stream_a.get(name) != per_stream_b.get(name) {
            differing.push(name.clone());
        }
    }
    differing
}

/// Renders a trace as an aligned text timeline (used by the Figure 5
/// reproduction).
pub fn render_timeline(trace: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in trace {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time_ns: u64, delta: u64, process: &str, label: &str, detail: &str) -> TraceRecord {
        TraceRecord {
            time: Time::ns(time_ns),
            delta,
            process: process.into(),
            label: label.into(),
            detail: detail.into(),
        }
    }

    #[test]
    fn identical_traces_compare_equal() {
        let t = vec![rec(0, 0, "p0", "w", "1"), rec(1, 1, "p1", "r", "1")];
        assert!(compare_traces(&t, &t).is_empty());
    }

    #[test]
    fn reordering_across_processes_is_not_a_difference() {
        let a = vec![rec(0, 0, "p0", "w", "1"), rec(0, 0, "p1", "w", "2")];
        let b = vec![rec(5, 2, "p1", "w", "2"), rec(9, 3, "p0", "w", "1")];
        assert!(compare_traces(&a, &b).is_empty());
    }

    #[test]
    fn value_change_is_a_difference() {
        let a = vec![rec(0, 0, "p0", "w", "1")];
        let b = vec![rec(0, 0, "p0", "w", "2")];
        assert_eq!(compare_traces(&a, &b), vec!["p0".to_owned()]);
    }

    #[test]
    fn missing_process_is_a_difference() {
        let a = vec![rec(0, 0, "p0", "w", "1")];
        let b: Vec<TraceRecord> = Vec::new();
        assert_eq!(compare_traces(&a, &b), vec!["p0".to_owned()]);
    }

    #[test]
    fn projection_strips_time() {
        let a = functional_projection(&[rec(7, 3, "p", "l", "d")]);
        assert_eq!(a, vec![("p".into(), "l".into(), "d".into())]);
    }

    #[test]
    fn display_is_stable() {
        let r = rec(10, 2, "p0", "fifo.write", "42");
        let s = r.to_string();
        assert!(s.contains("10ns"));
        assert!(s.contains("fifo.write"));
        assert!(s.contains("42"));
    }
}
