//! Predefined channels.
//!
//! Under the paper's single-source specification methodology (§2), processes
//! have no sensitivity lists and never touch events directly: *all*
//! inter-process interaction goes through predefined channels plus timed
//! waits. The kernel ships the three channel families the methodology's
//! models of computation need:
//!
//! * [`Fifo`] — bounded blocking FIFO (`sc_fifo` semantics, KPN-style),
//! * [`Signal`] — update-phase-committed state (`sc_signal` semantics, SR-style),
//! * [`Rendezvous`] — unbuffered synchronous channel (CSP-style),
//!
//! plus the synchronization primitives [`SimMutex`] (`sc_mutex`) and
//! [`SimSemaphore`] (`sc_semaphore`) for resource-arbitration testbenches.

mod fifo;
mod rendezvous;
mod signal;
mod sync;

pub use fifo::Fifo;
pub use rendezvous::Rendezvous;
pub use signal::Signal;
pub use sync::{SimMutex, SimSemaphore};
