//! Unbuffered synchronous (CSP-style) channel.
//!
//! A write completes only when a reader has consumed the value, and a read
//! completes only when a writer has produced one — the rendezvous of CSP,
//! one of the models of computation the single-source methodology supports
//! (Herrera et al., "Modeling of CSP, KPN and SR systems with SystemC").
//!
//! The channel is intended for exactly one writer and one reader process.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use scperf_obs::{Payload, Sym};
use scperf_sync::Mutex;

use crate::event::Event;
use crate::parallel::Effect;
use crate::process::ProcCtx;
use crate::sim::Simulator;
use crate::state::ChanStats;

struct RendezvousInner<T> {
    name: String,
    /// The channel name interned in the kernel's symbol table.
    name_sym: Sym,
    slot: Mutex<Option<T>>,
    data_ev: Event,
    consumed_ev: Event,
    stats: Arc<ChanStats>,
}

/// A cloneable handle to a rendezvous channel. Create with
/// [`Simulator::rendezvous`].
pub struct Rendezvous<T> {
    inner: Arc<RendezvousInner<T>>,
}

impl<T> Clone for Rendezvous<T> {
    fn clone(&self) -> Rendezvous<T> {
        Rendezvous {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Simulator {
    /// Creates a rendezvous (unbuffered, fully synchronous) channel.
    pub fn rendezvous<T: Send + std::fmt::Debug + 'static>(
        &mut self,
        name: impl Into<String>,
    ) -> Rendezvous<T> {
        let name = name.into();
        let data_ev = self.event(format!("{name}.data"));
        let consumed_ev = self.event(format!("{name}.consumed"));
        let (name_sym, stats) = self
            .shared()
            .with_state(|st| (st.interner.intern(&name), st.register_chan_stats(&name)));
        Rendezvous {
            inner: Arc::new(RendezvousInner {
                name,
                name_sym,
                slot: Mutex::new(None),
                data_ev,
                consumed_ev,
                stats,
            }),
        }
    }
}

impl<T: Send + std::fmt::Debug + 'static> Rendezvous<T> {
    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Offers `value` and blocks until the reader has consumed it.
    pub fn write(&self, ctx: &mut ProcCtx, value: T) {
        // Wait for the slot to be free (a previous offer still pending).
        let mut value = Some(value);
        loop {
            // The slot is immediately visible to the reader (rendezvous
            // cannot use update-phase buffering), so under parallel
            // evaluation slot accesses must happen in canonical pid
            // order: wait for every lower-pid round member first.
            ctx.par_fence();
            let placed = {
                let mut slot = self.inner.slot.lock();
                if slot.is_none() {
                    let v = value.take().expect("value still pending");
                    // Snapshot the value only when tracing is live — the
                    // legacy path formatted a `String` for every write.
                    let payload = ctx.shared.tracing_fast().then(|| Payload::capture(&v));
                    *slot = Some(v);
                    Some(payload)
                } else {
                    None
                }
            };
            match placed {
                Some(payload) => {
                    self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
                    if let Some(payload) = payload {
                        let shared = Arc::clone(&ctx.shared);
                        if shared.par_active_fast() {
                            shared.par.append(
                                ctx.pid,
                                Effect::Trace {
                                    label: shared.labels.rendezvous_write,
                                    chan: self.inner.name_sym,
                                    payload,
                                },
                            );
                        } else {
                            shared.with_state(|st| {
                                let label = st.labels.rendezvous_write;
                                st.record_event(Some(ctx.pid), label, self.inner.name_sym, payload);
                            });
                        }
                    }
                    self.inner.data_ev.notify_delta();
                    break;
                }
                None => {
                    self.inner.stats.blocks.fetch_add(1, Ordering::Relaxed);
                    self.timed_wait(ctx, &self.inner.consumed_ev);
                }
            }
        }
        // Block until the reader takes the value (the rendezvous itself).
        loop {
            ctx.par_fence();
            if self.inner.slot.lock().is_none() {
                break;
            }
            self.inner.stats.blocks.fetch_add(1, Ordering::Relaxed);
            self.timed_wait(ctx, &self.inner.consumed_ev);
        }
    }

    /// Blocks until a writer offers a value, consumes it and releases the
    /// writer.
    pub fn read(&self, ctx: &mut ProcCtx) -> T {
        loop {
            // See `write`: slot accesses are serialized in pid order
            // under parallel evaluation.
            ctx.par_fence();
            let taken = self.inner.slot.lock().take();
            match taken {
                Some(v) => {
                    self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
                    if ctx.shared.tracing_fast() {
                        let payload = Payload::capture(&v);
                        let shared = Arc::clone(&ctx.shared);
                        if shared.par_active_fast() {
                            shared.par.append(
                                ctx.pid,
                                Effect::Trace {
                                    label: shared.labels.rendezvous_read,
                                    chan: self.inner.name_sym,
                                    payload,
                                },
                            );
                        } else {
                            shared.with_state(|st| {
                                let label = st.labels.rendezvous_read;
                                st.record_event(Some(ctx.pid), label, self.inner.name_sym, payload);
                            });
                        }
                    }
                    self.inner.consumed_ev.notify_delta();
                    return v;
                }
                None => {
                    self.inner.stats.blocks.fetch_add(1, Ordering::Relaxed);
                    self.timed_wait(ctx, &self.inner.data_ev);
                }
            }
        }
    }

    /// Waits on `ev`, charging the blocked span (in simulated time) to
    /// this channel when attribution is on.
    fn timed_wait(&self, ctx: &mut ProcCtx, ev: &Event) {
        let t0 = ctx.shared.attribution_fast().then(|| ctx.now());
        ctx.wait_event(ev);
        if let Some(t0) = t0 {
            let span = ctx.now().saturating_sub(t0).as_ps();
            self.inner
                .stats
                .blocked_ps
                .fetch_add(span, Ordering::Relaxed);
        }
    }
}

impl<T> std::fmt::Debug for Rendezvous<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rendezvous")
            .field("name", &self.inner.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use std::sync::mpsc;

    #[test]
    fn write_blocks_until_read() {
        let mut sim = Simulator::new();
        let ch = sim.rendezvous::<u32>("r");
        let (w, r) = (ch.clone(), ch);
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        sim.spawn("w", move |ctx| {
            w.write(ctx, 11);
            tx.send(("write done", ctx.now())).unwrap();
        });
        sim.spawn("r", move |ctx| {
            ctx.wait(Time::ns(20));
            let v = r.read(ctx);
            tx2.send(("read done", ctx.now())).unwrap();
            assert_eq!(v, 11);
        });
        sim.run().unwrap();
        let got: Vec<_> = rx.try_iter().collect();
        // The reader consumes at 20ns; the writer can only complete after.
        assert_eq!(got[0].0, "read done");
        assert!(got[1].1 >= Time::ns(20));
    }

    #[test]
    fn read_blocks_until_write() {
        let mut sim = Simulator::new();
        let ch = sim.rendezvous::<u32>("r");
        let (w, r) = (ch.clone(), ch);
        sim.spawn("r", move |ctx| {
            let v = r.read(ctx);
            assert_eq!(v, 5);
            assert!(ctx.now() >= Time::ns(30));
        });
        sim.spawn("w", move |ctx| {
            ctx.wait(Time::ns(30));
            w.write(ctx, 5);
        });
        sim.run().unwrap();
    }

    #[test]
    fn repeated_rendezvous_preserves_order() {
        let mut sim = Simulator::new();
        let ch = sim.rendezvous::<u32>("r");
        let (w, r) = (ch.clone(), ch);
        let (tx, rx) = mpsc::channel();
        sim.spawn("w", move |ctx| {
            for i in 0..5 {
                w.write(ctx, i);
            }
        });
        sim.spawn("r", move |ctx| {
            for _ in 0..5 {
                tx.send(r.read(ctx)).unwrap();
            }
        });
        sim.run().unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }
}
