//! Synchronization primitives: the analogues of `sc_mutex` and
//! `sc_semaphore`.
//!
//! Like their SystemC counterparts these are *simulation-level* primitives
//! arbitrating simulated processes; the host-thread safety underneath is
//! provided by the kernel itself. Lock hand-off is deterministic: waiters
//! are woken through a delta-notified event and re-acquire in process-id
//! order.

use std::sync::Arc;

use scperf_sync::Mutex as HostMutex;

use crate::event::Event;
use crate::process::ProcCtx;
use crate::sim::Simulator;

struct SimMutexInner {
    name: String,
    /// Holder's process id, if locked.
    holder: HostMutex<Option<usize>>,
    released_ev: Event,
}

/// A simulated mutex (the analogue of `sc_mutex`). Create with
/// [`Simulator::sim_mutex`].
///
/// # Examples
///
/// ```
/// use scperf_kernel::{Simulator, Time};
///
/// let mut sim = Simulator::new();
/// let m = sim.sim_mutex("bus");
/// for name in ["a", "b"] {
///     let m = m.clone();
///     sim.spawn(name, move |ctx| {
///         m.lock(ctx);
///         ctx.wait(Time::ns(10)); // exclusive use of the bus
///         m.unlock(ctx);
///     });
/// }
/// let summary = sim.run()?;
/// assert_eq!(summary.end_time, Time::ns(20)); // fully serialized
/// # Ok::<(), scperf_kernel::SimError>(())
/// ```
pub struct SimMutex {
    inner: Arc<SimMutexInner>,
}

impl Clone for SimMutex {
    fn clone(&self) -> SimMutex {
        SimMutex {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Simulator {
    /// Creates a simulated mutex.
    pub fn sim_mutex(&mut self, name: impl Into<String>) -> SimMutex {
        let name = name.into();
        let released_ev = self.event(format!("{name}.released"));
        SimMutex {
            inner: Arc::new(SimMutexInner {
                name,
                holder: HostMutex::new(None),
                released_ev,
            }),
        }
    }
}

impl SimMutex {
    /// The mutex's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Acquires the mutex, suspending the calling process while another
    /// process holds it.
    ///
    /// # Panics
    ///
    /// Panics if the calling process already holds it (like `sc_mutex`,
    /// it is not recursive).
    pub fn lock(&self, ctx: &mut ProcCtx) {
        loop {
            // Lock state is immediately visible to other processes, so
            // under parallel evaluation acquisition happens in
            // canonical pid order (the documented hand-off order).
            ctx.par_fence();
            {
                let mut holder = self.inner.holder.lock();
                match *holder {
                    None => {
                        *holder = Some(ctx.pid().index());
                        return;
                    }
                    Some(h) => {
                        assert!(
                            h != ctx.pid().index(),
                            "mutex '{}' is not recursive",
                            self.inner.name
                        );
                    }
                }
            }
            ctx.wait_event(&self.inner.released_ev);
        }
    }

    /// Attempts to acquire without blocking; `true` on success.
    pub fn try_lock(&self, ctx: &mut ProcCtx) -> bool {
        ctx.par_fence();
        let mut holder = self.inner.holder.lock();
        if holder.is_none() {
            *holder = Some(ctx.pid().index());
            true
        } else {
            false
        }
    }

    /// Releases the mutex and wakes waiters (next delta cycle).
    ///
    /// # Panics
    ///
    /// Panics if the calling process does not hold the mutex.
    pub fn unlock(&self, ctx: &mut ProcCtx) {
        ctx.par_fence();
        {
            let mut holder = self.inner.holder.lock();
            assert_eq!(
                *holder,
                Some(ctx.pid().index()),
                "process releasing mutex '{}' does not hold it",
                self.inner.name
            );
            *holder = None;
        }
        self.inner.released_ev.notify_delta();
    }
}

impl std::fmt::Debug for SimMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimMutex")
            .field("name", &self.inner.name)
            .finish()
    }
}

struct SimSemaphoreInner {
    name: String,
    count: HostMutex<u32>,
    posted_ev: Event,
}

/// A simulated counting semaphore (the analogue of `sc_semaphore`).
/// Create with [`Simulator::sim_semaphore`].
pub struct SimSemaphore {
    inner: Arc<SimSemaphoreInner>,
}

impl Clone for SimSemaphore {
    fn clone(&self) -> SimSemaphore {
        SimSemaphore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Simulator {
    /// Creates a counting semaphore with `initial` permits.
    pub fn sim_semaphore(&mut self, name: impl Into<String>, initial: u32) -> SimSemaphore {
        let name = name.into();
        let posted_ev = self.event(format!("{name}.posted"));
        SimSemaphore {
            inner: Arc::new(SimSemaphoreInner {
                name,
                count: HostMutex::new(initial),
                posted_ev,
            }),
        }
    }
}

impl SimSemaphore {
    /// The semaphore's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Current number of available permits.
    pub fn value(&self) -> u32 {
        *self.inner.count.lock()
    }

    /// Acquires one permit, suspending while none are available
    /// (`sc_semaphore::wait`).
    pub fn acquire(&self, ctx: &mut ProcCtx) {
        loop {
            // See `SimMutex::lock`: permits are handed out in pid order
            // under parallel evaluation.
            ctx.par_fence();
            {
                let mut count = self.inner.count.lock();
                if *count > 0 {
                    *count -= 1;
                    return;
                }
            }
            ctx.wait_event(&self.inner.posted_ev);
        }
    }

    /// Attempts to acquire without blocking (`sc_semaphore::trywait`).
    pub fn try_acquire(&self, ctx: &mut ProcCtx) -> bool {
        ctx.par_fence();
        let mut count = self.inner.count.lock();
        if *count > 0 {
            *count -= 1;
            true
        } else {
            false
        }
    }

    /// Releases one permit and wakes waiters (`sc_semaphore::post`).
    pub fn release(&self, ctx: &mut ProcCtx) {
        ctx.par_fence();
        *self.inner.count.lock() += 1;
        self.inner.posted_ev.notify_delta();
    }
}

impl std::fmt::Debug for SimSemaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSemaphore")
            .field("name", &self.inner.name)
            .field("value", &self.value())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn mutex_serializes_critical_sections() {
        let mut sim = Simulator::new();
        let m = sim.sim_mutex("m");
        let peak = Arc::new(AtomicU32::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        for i in 0..4 {
            let m = m.clone();
            let peak = Arc::clone(&peak);
            let inside = Arc::clone(&inside);
            sim.spawn(format!("p{i}"), move |ctx| {
                m.lock(ctx);
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                ctx.wait(Time::ns(10));
                inside.fetch_sub(1, Ordering::SeqCst);
                m.unlock(ctx);
            });
        }
        let s = sim.run().unwrap();
        assert_eq!(peak.load(Ordering::SeqCst), 1, "mutual exclusion violated");
        assert_eq!(s.end_time, Time::ns(40));
    }

    #[test]
    fn try_lock_does_not_block() {
        let mut sim = Simulator::new();
        let m = sim.sim_mutex("m");
        let (m1, m2) = (m.clone(), m);
        sim.spawn("holder", move |ctx| {
            assert!(m1.try_lock(ctx));
            ctx.wait(Time::ns(100));
            m1.unlock(ctx);
        });
        sim.spawn("prober", move |ctx| {
            ctx.wait(Time::ns(10));
            assert!(!m2.try_lock(ctx));
            ctx.wait(Time::ns(100));
            assert!(m2.try_lock(ctx));
            m2.unlock(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn semaphore_admits_up_to_n() {
        let mut sim = Simulator::new();
        let sem = sim.sim_semaphore("pool", 2);
        let peak = Arc::new(AtomicU32::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        for i in 0..6 {
            let sem = sem.clone();
            let peak = Arc::clone(&peak);
            let inside = Arc::clone(&inside);
            sim.spawn(format!("w{i}"), move |ctx| {
                sem.acquire(ctx);
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                ctx.wait(Time::ns(10));
                inside.fetch_sub(1, Ordering::SeqCst);
                sem.release(ctx);
            });
        }
        let s = sim.run().unwrap();
        assert_eq!(peak.load(Ordering::SeqCst), 2);
        // 6 jobs, 2 at a time, 10ns each = 30ns.
        assert_eq!(s.end_time, Time::ns(30));
    }

    #[test]
    fn semaphore_value_tracks_permits() {
        let mut sim = Simulator::new();
        let sem = sim.sim_semaphore("s", 3);
        let probe = sem.clone();
        sim.spawn("p", move |ctx| {
            assert_eq!(sem.value(), 3);
            sem.acquire(ctx);
            assert_eq!(sem.value(), 2);
            assert!(sem.try_acquire(ctx));
            assert_eq!(sem.value(), 1);
            sem.release(ctx);
            sem.release(ctx);
        });
        sim.run().unwrap();
        assert_eq!(probe.value(), 3);
    }

    #[test]
    fn non_holder_unlock_panics_the_process() {
        let mut sim = Simulator::new();
        let m = sim.sim_mutex("m");
        sim.spawn("bad", move |ctx| {
            m.unlock(ctx);
        });
        let err = sim.run().unwrap_err();
        assert!(err.to_string().contains("does not hold"));
    }
}
