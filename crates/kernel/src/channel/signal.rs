//! Signal channel with `sc_signal` semantics: writes are committed in the
//! update phase and a value-changed event fires one delta later.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use scperf_obs::{Payload, Sym};
use scperf_sync::Mutex;

use crate::event::Event;
use crate::process::ProcCtx;
use crate::sim::Simulator;
use crate::state::{ChanStats, KernelState, UpdateHook};

struct SignalBuf<T> {
    current: T,
    next: Option<T>,
    /// Parallel round the writer tracker belongs to (only touched while
    /// a parallel evaluate round is active).
    par_round: u64,
    /// Pid that wrote this round; `usize::MAX` = none. "Last write in
    /// execution order wins" is order-dependent, so a second distinct
    /// same-delta writer under parallel evaluation is a hazard.
    par_writer: usize,
}

struct SignalInner<T> {
    name: String,
    /// The signal name interned in the kernel's symbol table.
    name_sym: Sym,
    buf: Mutex<SignalBuf<T>>,
    changed_ev: Event,
    stats: Arc<ChanStats>,
}

impl<T: Send + Clone + PartialEq + std::fmt::Debug + 'static> UpdateHook for SignalInner<T> {
    fn update(&self, st: &mut KernelState) {
        let mut buf = self.buf.lock();
        if let Some(next) = buf.next.take() {
            if next != buf.current {
                buf.current = next;
                // Snapshot the committed value only when a sink is live;
                // the legacy path formatted a `String` on every commit.
                let payload = st.tracing_enabled().then(|| Payload::capture(&buf.current));
                drop(buf);
                st.notify_event_delta(self.changed_ev.id);
                if let Some(payload) = payload {
                    let label = st.labels.signal_update;
                    st.record_event(None, label, self.name_sym, payload);
                }
            }
        }
    }
}

/// A cloneable handle to a signal (the analogue of `sc_signal<T>`).
/// Create with [`Simulator::signal`].
///
/// Reads never block and always return the *committed* value; a write only
/// becomes visible after the update phase of the delta in which it was
/// performed. When several processes write the same signal in one delta,
/// the last write (in execution order) wins — as in SystemC, well-formed
/// models have a single driver per signal.
pub struct Signal<T> {
    inner: Arc<SignalInner<T>>,
    hook_id: usize,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Signal<T> {
        Signal {
            inner: Arc::clone(&self.inner),
            hook_id: self.hook_id,
        }
    }
}

impl Simulator {
    /// Creates a signal initialized to `initial`.
    pub fn signal<T>(&mut self, name: impl Into<String>, initial: T) -> Signal<T>
    where
        T: Send + Clone + PartialEq + std::fmt::Debug + 'static,
    {
        let name = name.into();
        let changed_ev = self.event(format!("{name}.changed"));
        let shared = Arc::clone(self.shared());
        let (name_sym, stats) =
            shared.with_state(|st| (st.interner.intern(&name), st.register_chan_stats(&name)));
        let inner = Arc::new(SignalInner {
            name,
            name_sym,
            buf: Mutex::new(SignalBuf {
                current: initial,
                next: None,
                par_round: 0,
                par_writer: usize::MAX,
            }),
            changed_ev,
            stats,
        });
        let hook_id = shared
            .with_state(|st| st.register_update_hook(Arc::clone(&inner) as Arc<dyn UpdateHook>));
        Signal { inner, hook_id }
    }
}

impl<T: Send + Clone + PartialEq + std::fmt::Debug + 'static> Signal<T> {
    /// The signal's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The committed value.
    pub fn read(&self) -> T {
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.buf.lock().current.clone()
    }

    /// Schedules `value` to be committed in the update phase of the current
    /// delta cycle.
    pub fn write(&self, ctx: &mut ProcCtx, value: T) {
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        {
            let mut buf = self.inner.buf.lock();
            if ctx.shared.par_active_fast() {
                let round = ctx.shared.par.round_id();
                if buf.par_round != round {
                    buf.par_round = round;
                    buf.par_writer = usize::MAX;
                }
                if buf.par_writer != usize::MAX && buf.par_writer != ctx.pid {
                    ctx.shared.par.report_hazard(format!(
                        "signal '{}': processes P{} and P{} both write in the same delta \
                         cycle (last-writer-wins depends on execution order)",
                        self.inner.name,
                        buf.par_writer.min(ctx.pid),
                        buf.par_writer.max(ctx.pid)
                    ));
                }
                buf.par_writer = ctx.pid;
            }
            buf.next = Some(value);
        }
        let shared = Arc::clone(&ctx.shared);
        shared.with_state(|st| st.request_update(self.hook_id));
    }

    /// The event notified (delta) whenever the committed value changes.
    pub fn value_changed_event(&self) -> &Event {
        &self.inner.changed_ev
    }

    /// Blocks the calling process until the committed value changes
    /// (testbench convenience; user processes under the paper's methodology
    /// communicate through FIFOs and rendezvous channels instead).
    pub fn wait_value_change(&self, ctx: &mut ProcCtx) -> T {
        ctx.wait_event(&self.inner.changed_ev);
        self.read()
    }
}

impl<T> std::fmt::Debug for Signal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signal")
            .field("name", &self.inner.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use std::sync::mpsc;

    #[test]
    fn write_commits_at_update_phase() {
        let mut sim = Simulator::new();
        let s = sim.signal("s", 0_u32);
        let (sw, sr) = (s.clone(), s.clone());
        sim.spawn("w", move |ctx| {
            sw.write(ctx, 5);
            assert_eq!(sw.read(), 0, "write must not be visible before update");
            ctx.wait(Time::ZERO);
            assert_eq!(sw.read(), 5);
        });
        sim.run().unwrap();
        assert_eq!(sr.read(), 5);
    }

    #[test]
    fn value_changed_event_fires_once_per_change() {
        let mut sim = Simulator::new();
        let s = sim.signal("s", 0_u32);
        let (sw, sr) = (s.clone(), s.clone());
        let (tx, rx) = mpsc::channel();
        sim.spawn("listener", move |ctx| {
            let v = sr.wait_value_change(ctx);
            tx.send(v).unwrap();
        });
        sim.spawn("driver", move |ctx| {
            ctx.wait(Time::ns(5));
            sw.write(ctx, 0); // no change: must not wake the listener
            ctx.wait(Time::ns(5));
            sw.write(ctx, 9);
        });
        sim.run().unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn last_writer_in_delta_wins() {
        let mut sim = Simulator::new();
        let s = sim.signal("s", 0_u32);
        let s1 = s.clone();
        let s2 = s.clone();
        let sr = s.clone();
        sim.spawn("a", move |ctx| s1.write(ctx, 1));
        sim.spawn("b", move |ctx| s2.write(ctx, 2));
        sim.run().unwrap();
        assert_eq!(sr.read(), 2);
    }

    #[test]
    fn signal_update_is_traced() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let s = sim.signal("sig", false);
        let sw = s.clone();
        sim.spawn("w", move |ctx| sw.write(ctx, true));
        sim.run().unwrap();
        let trace = sim.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].label, "signal.update");
        assert!(trace[0].detail.contains("sig=true"));
    }
}
