//! Bounded blocking FIFO channel with `sc_fifo` semantics.
//!
//! Values written in one delta cycle become visible to readers only after
//! the update phase, and space freed by reads becomes visible to writers
//! only after the update phase — exactly the OSCI `sc_fifo` protocol. This
//! is what keeps an untimed model deterministic regardless of the order in
//! which runnable processes execute within a delta.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use scperf_obs::{Payload, Sym};
use scperf_sync::Mutex;

use crate::event::Event;
use crate::parallel::Effect;
use crate::process::ProcCtx;
use crate::sim::Simulator;
use crate::state::{ChanStats, KernelState, UpdateHook};

struct FifoBuf<T> {
    q: VecDeque<T>,
    /// Number of committed (readable) items at the front of `q`.
    readable: usize,
    /// Items written since the last update phase.
    written: usize,
    /// Items read since the last update phase.
    read: usize,
    /// Parallel round the conflict trackers below belong to (stale
    /// values from earlier rounds are ignored). Only touched while a
    /// parallel evaluate round is active.
    par_round: u64,
    /// Pid that read (or attempted to) this round; `usize::MAX` = none.
    par_reader: usize,
    /// Pid that wrote (or attempted to) this round; `usize::MAX` = none.
    par_writer: usize,
}

impl<T> FifoBuf<T> {
    /// Rolls the same-round conflict trackers over to `round`.
    fn par_roll(&mut self, round: u64) {
        if self.par_round != round {
            self.par_round = round;
            self.par_reader = usize::MAX;
            self.par_writer = usize::MAX;
        }
    }
}

struct FifoInner<T> {
    name: String,
    /// The channel name interned in the kernel's symbol table.
    name_sym: Sym,
    capacity: usize,
    buf: Mutex<FifoBuf<T>>,
    data_ev: Event,
    space_ev: Event,
    stats: Arc<ChanStats>,
}

impl<T: Send + std::fmt::Debug> UpdateHook for FifoInner<T> {
    fn update(&self, st: &mut KernelState) {
        let mut buf = self.buf.lock();
        buf.readable = buf.q.len();
        if buf.written > 0 {
            buf.written = 0;
            st.notify_event_delta(self.data_ev.id);
        }
        if buf.read > 0 {
            buf.read = 0;
            st.notify_event_delta(self.space_ev.id);
        }
    }
}

/// A cloneable handle to a bounded blocking FIFO (the analogue of
/// `sc_fifo<T>`). Create with [`Simulator::fifo`].
///
/// Reads block while the FIFO is empty; writes block while it is full.
/// Handles are cheap to clone; typically one clone goes to the producer and
/// one to the consumer.
pub struct Fifo<T> {
    inner: Arc<FifoInner<T>>,
    hook_id: usize,
}

impl<T> Clone for Fifo<T> {
    fn clone(&self) -> Fifo<T> {
        Fifo {
            inner: Arc::clone(&self.inner),
            hook_id: self.hook_id,
        }
    }
}

impl Simulator {
    /// Creates a bounded FIFO channel with space for `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`Simulator::rendezvous`] for
    /// unbuffered synchronous communication).
    pub fn fifo<T: Send + std::fmt::Debug + 'static>(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
    ) -> Fifo<T> {
        assert!(capacity > 0, "fifo capacity must be at least 1");
        let name = name.into();
        let data_ev = self.event(format!("{name}.data"));
        let space_ev = self.event(format!("{name}.space"));
        let shared = Arc::clone(self.shared());
        let (name_sym, stats) =
            shared.with_state(|st| (st.interner.intern(&name), st.register_chan_stats(&name)));
        let inner = Arc::new(FifoInner {
            name,
            name_sym,
            capacity,
            buf: Mutex::new(FifoBuf {
                q: VecDeque::with_capacity(capacity),
                readable: 0,
                written: 0,
                read: 0,
                par_round: 0,
                par_reader: usize::MAX,
                par_writer: usize::MAX,
            }),
            data_ev,
            space_ev,
            stats,
        });
        let hook_id = shared
            .with_state(|st| st.register_update_hook(Arc::clone(&inner) as Arc<dyn UpdateHook>));
        Fifo { inner, hook_id }
    }
}

impl<T: Send + std::fmt::Debug + 'static> Fifo<T> {
    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The channel's capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of committed items currently readable.
    pub fn num_available(&self) -> usize {
        let buf = self.inner.buf.lock();
        buf.readable - buf.read
    }

    /// Number of free slots visible to writers.
    pub fn num_free(&self) -> usize {
        let buf = self.inner.buf.lock();
        self.inner.capacity - buf.readable - buf.written
    }

    /// Same-delta conflict detection under parallel evaluation: a
    /// second distinct reader (or writer) process in one round makes
    /// the outcome order-dependent — which one gets the last item or
    /// slot — so it is reported as a non-determinate construct instead
    /// of being silently raced. One reader plus one writer per delta
    /// is always fine: `sc_fifo` update-phase semantics decouple them.
    fn par_track(&self, ctx: &ProcCtx, buf: &mut FifoBuf<T>, is_read: bool) {
        if !ctx.shared.par_active_fast() {
            return;
        }
        buf.par_roll(ctx.shared.par.round_id());
        let slot = if is_read {
            &mut buf.par_reader
        } else {
            &mut buf.par_writer
        };
        if *slot != usize::MAX && *slot != ctx.pid {
            let role = if is_read { "read" } else { "write" };
            ctx.shared.par.report_hazard(format!(
                "fifo '{}': processes P{} and P{} both {role} in the same delta cycle",
                self.inner.name,
                (*slot).min(ctx.pid),
                (*slot).max(ctx.pid)
            ));
        }
        *slot = ctx.pid;
    }

    /// Blocking read: suspends the calling process until a committed value
    /// is available (the analogue of `sc_fifo::read`).
    pub fn read(&self, ctx: &mut ProcCtx) -> T {
        loop {
            let taken = {
                let mut buf = self.inner.buf.lock();
                self.par_track(ctx, &mut buf, true);
                if buf.readable > buf.read {
                    let v = buf.q.pop_front().expect("readable item present");
                    buf.read += 1;
                    Some(v)
                } else {
                    None
                }
            };
            match taken {
                Some(v) => {
                    self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
                    // Capture the payload outside the kernel lock, and only
                    // when a sink is installed: with tracing off the read
                    // path performs no allocation at all.
                    let payload = ctx.shared.tracing_fast().then(|| Payload::capture(&v));
                    let shared = Arc::clone(&ctx.shared);
                    if shared.par_active_fast() {
                        // The update request is live (an idempotent,
                        // order-independent set insert); the trace
                        // record is buffered for pid-order commit.
                        shared.with_state(|st| st.request_update(self.hook_id));
                        if let Some(payload) = payload {
                            shared.par.append(
                                ctx.pid,
                                Effect::Trace {
                                    label: shared.labels.fifo_read,
                                    chan: self.inner.name_sym,
                                    payload,
                                },
                            );
                        }
                    } else {
                        shared.with_state(|st| {
                            st.request_update(self.hook_id);
                            if let Some(payload) = payload {
                                let label = st.labels.fifo_read;
                                st.record_event(Some(ctx.pid), label, self.inner.name_sym, payload);
                            }
                        });
                    }
                    return v;
                }
                None => {
                    self.inner.stats.blocks.fetch_add(1, Ordering::Relaxed);
                    // Attribution: measure the blocked span in simulated
                    // time (lock-free gate; off = no extra kernel calls).
                    let t0 = ctx.shared.attribution_fast().then(|| ctx.now());
                    ctx.wait_event(&self.inner.data_ev);
                    if let Some(t0) = t0 {
                        let span = ctx.now().saturating_sub(t0).as_ps();
                        self.inner
                            .stats
                            .blocked_ps
                            .fetch_add(span, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Blocking write: suspends the calling process until space is free
    /// (the analogue of `sc_fifo::write`).
    pub fn write(&self, ctx: &mut ProcCtx, value: T) {
        let mut value = Some(value);
        loop {
            let wrote = {
                let mut buf = self.inner.buf.lock();
                self.par_track(ctx, &mut buf, false);
                if self.inner.capacity - buf.readable - buf.written > 0 {
                    let v = value.take().expect("value still pending");
                    // Only snapshot the value when tracing is live — the
                    // legacy path built a `String` here unconditionally.
                    let payload = ctx.shared.tracing_fast().then(|| Payload::capture(&v));
                    buf.q.push_back(v);
                    buf.written += 1;
                    if ctx.shared.attribution_fast() {
                        self.inner
                            .stats
                            .max_depth
                            .fetch_max(buf.q.len() as u64, Ordering::Relaxed);
                    }
                    Some(payload)
                } else {
                    None
                }
            };
            match wrote {
                Some(payload) => {
                    self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&ctx.shared);
                    if shared.par_active_fast() {
                        shared.with_state(|st| st.request_update(self.hook_id));
                        if let Some(payload) = payload {
                            shared.par.append(
                                ctx.pid,
                                Effect::Trace {
                                    label: shared.labels.fifo_write,
                                    chan: self.inner.name_sym,
                                    payload,
                                },
                            );
                        }
                    } else {
                        shared.with_state(|st| {
                            st.request_update(self.hook_id);
                            if let Some(payload) = payload {
                                let label = st.labels.fifo_write;
                                st.record_event(Some(ctx.pid), label, self.inner.name_sym, payload);
                            }
                        });
                    }
                    return;
                }
                None => {
                    self.inner.stats.blocks.fetch_add(1, Ordering::Relaxed);
                    let t0 = ctx.shared.attribution_fast().then(|| ctx.now());
                    ctx.wait_event(&self.inner.space_ev);
                    if let Some(t0) = t0 {
                        let span = ctx.now().saturating_sub(t0).as_ps();
                        self.inner
                            .stats
                            .blocked_ps
                            .fetch_add(span, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Non-blocking read; `None` when no committed value is available.
    pub fn try_read(&self, ctx: &mut ProcCtx) -> Option<T> {
        let taken = {
            let mut buf = self.inner.buf.lock();
            self.par_track(ctx, &mut buf, true);
            if buf.readable > buf.read {
                let v = buf.q.pop_front().expect("readable item present");
                buf.read += 1;
                Some(v)
            } else {
                None
            }
        };
        if taken.is_some() {
            self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&ctx.shared);
            shared.with_state(|st| st.request_update(self.hook_id));
        }
        taken
    }

    /// The event notified (delta) when new data becomes readable.
    pub fn data_written_event(&self) -> &Event {
        &self.inner.data_ev
    }
}

impl<T> std::fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fifo")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use std::sync::mpsc;

    #[test]
    fn values_pass_in_order() {
        let mut sim = Simulator::new();
        let f = sim.fifo::<u32>("f", 2);
        let (w, r) = (f.clone(), f);
        sim.spawn("w", move |ctx| {
            for i in 0..10 {
                w.write(ctx, i);
            }
        });
        let (tx, rx) = mpsc::channel();
        sim.spawn("r", move |ctx| {
            for _ in 0..10 {
                tx.send(r.read(ctx)).unwrap();
            }
        });
        sim.run().unwrap();
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn write_blocks_when_full() {
        let mut sim = Simulator::new();
        let f = sim.fifo::<u32>("f", 1);
        let (w, r) = (f.clone(), f);
        let (tx, rx) = mpsc::channel();
        sim.spawn("w", move |ctx| {
            w.write(ctx, 1);
            w.write(ctx, 2); // blocks until reader drains
        });
        sim.spawn("r", move |ctx| {
            ctx.wait(Time::ns(50));
            tx.send((r.read(ctx), ctx.now())).unwrap();
            tx.send((r.read(ctx), ctx.now())).unwrap();
        });
        sim.run().unwrap();
        let got: Vec<_> = rx.try_iter().collect();
        assert_eq!(got[0].0, 1);
        assert_eq!(got[1].0, 2);
        assert!(got[0].1 >= Time::ns(50));
    }

    #[test]
    fn same_delta_write_not_visible_until_update() {
        // Reader polls with try_read in the same delta the writer writes:
        // sc_fifo semantics say it must see nothing yet.
        let mut sim = Simulator::new();
        let f = sim.fifo::<u32>("f", 4);
        let (w, r) = (f.clone(), f.clone());
        let (tx, rx) = mpsc::channel();
        sim.spawn("w", move |ctx| {
            w.write(ctx, 7);
            // keep the process alive into the next delta so the probe can run
            ctx.wait(Time::ZERO);
        });
        sim.spawn("probe", move |ctx| {
            // runs in the same evaluate phase as the write (pid order: w first)
            let same_delta = r.try_read(ctx);
            tx.send(same_delta).unwrap();
            ctx.wait(Time::ZERO);
            let next = r.try_read(ctx);
            tx.send(next).unwrap();
        });
        sim.run().unwrap();
        let got: Vec<Option<u32>> = rx.try_iter().collect();
        assert_eq!(got, vec![None, Some(7)]);
    }

    #[test]
    fn num_available_and_free_track_commits() {
        let mut sim = Simulator::new();
        let f = sim.fifo::<u8>("f", 3);
        let w = f.clone();
        let probe = f.clone();
        sim.spawn("w", move |ctx| {
            assert_eq!(w.num_free(), 3);
            w.write(ctx, 1);
            assert_eq!(w.num_free(), 2);
            assert_eq!(w.num_available(), 0); // not committed yet
            ctx.wait(Time::ZERO);
            assert_eq!(w.num_available(), 1);
        });
        sim.run().unwrap();
        assert_eq!(probe.num_available(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let mut sim = Simulator::new();
        let _ = sim.fifo::<u8>("bad", 0);
    }

    #[test]
    fn tracing_records_channel_ops() {
        let mut sim = Simulator::new();
        sim.enable_tracing();
        let f = sim.fifo::<u32>("ch", 1);
        let (w, r) = (f.clone(), f);
        sim.spawn("w", move |ctx| w.write(ctx, 9));
        sim.spawn("r", move |ctx| {
            let _ = r.read(ctx);
        });
        sim.run().unwrap();
        let trace = sim.take_trace();
        let labels: Vec<&str> = trace.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["fifo.write", "fifo.read"]);
        assert!(trace[0].detail.contains("ch=9"));
    }
}
