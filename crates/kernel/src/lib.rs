//! # scperf-kernel — a SystemC-like discrete-event simulation kernel
//!
//! This crate is the simulation substrate for the `scperf` reproduction of
//! *Posadas et al., "System-Level Performance Analysis in SystemC", DATE
//! 2004*. Rust has no SystemC, so the kernel reimplements the subset of
//! SystemC semantics the paper's methodology relies on:
//!
//! * 64-bit simulated [`Time`] with picosecond resolution,
//! * cooperative processes ([`Simulator::spawn`], the analogue of
//!   `SC_THREAD`) that run atomically between waits,
//! * the delta-cycle scheduler with distinct **evaluate**, **update**,
//!   **delta-notification** and **timed-notification** phases,
//! * [`Event`]s with immediate / delta / timed notification,
//! * the predefined channels of the single-source methodology:
//!   [`Fifo`] (`sc_fifo`), [`Signal`] (`sc_signal`) and [`Rendezvous`]
//!   (CSP),
//! * deterministic execution: runnable processes within a delta execute in
//!   spawn order, so the same model always produces the same trace.
//!
//! Each process runs on its own OS thread, but a run-baton guarantees that
//! exactly one of {scheduler, one process} executes at any instant; this is
//! behaviourally identical to SystemC's coroutines while letting process
//! bodies be ordinary Rust closures with blocking channel calls.
//!
//! # Examples
//!
//! A two-process producer/consumer with a timed producer:
//!
//! ```
//! use scperf_kernel::{Simulator, Time};
//!
//! let mut sim = Simulator::new();
//! let ch = sim.fifo::<i64>("samples", 8);
//! let (tx, rx) = (ch.clone(), ch);
//!
//! sim.spawn("producer", move |ctx| {
//!     for i in 0..16 {
//!         tx.write(ctx, i * i);
//!         ctx.wait(Time::us(1));
//!     }
//! });
//! sim.spawn("consumer", move |ctx| {
//!     let mut acc = 0;
//!     for _ in 0..16 {
//!         acc += rx.read(ctx);
//!     }
//!     ctx.emit_trace("done", acc.to_string());
//! });
//! let summary = sim.run()?;
//! assert_eq!(summary.end_time, Time::us(16));
//! # Ok::<(), scperf_kernel::SimError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod baton;
mod channel;
mod config;
mod event;
mod handoff;
mod parallel;
mod process;
mod sim;
mod state;
mod time;
pub mod trace;
pub mod vcd;
mod wheel;

pub use channel::{Fifo, Rendezvous, Signal, SimMutex, SimSemaphore};
pub use config::{SimOptions, TraceMode};
pub use event::Event;
pub use handoff::HandoffKind;
pub use process::{ProcCtx, ProcId};
pub use sim::{SimError, SimSummary, Simulator, StopReason};
pub use state::{ChannelSchedStats, ProcSchedStats, SchedSnapshot};
pub use time::{Time, TimeFromFloatError};
pub use trace::TraceRecord;
