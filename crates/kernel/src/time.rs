//! Simulation time.
//!
//! [`Time`] is an absolute point (or duration) on the simulated time axis,
//! stored as an integral number of **picoseconds** in a `u64`. This mirrors
//! SystemC's 64-bit `sc_time` with a fixed resolution; one picosecond of
//! resolution gives a range of about 213 days of simulated time, far beyond
//! anything the estimation experiments need.
//!
//! # Examples
//!
//! ```
//! use scperf_kernel::Time;
//!
//! let t = Time::ns(10) + Time::ps(500);
//! assert_eq!(t.as_ps(), 10_500);
//! assert_eq!(t.to_string(), "10.5ns");
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulation time point or duration with picosecond resolution.
///
/// `Time` is ordered, hashable and cheap to copy. Arithmetic panics on
/// overflow in debug builds (the same behaviour as the underlying `u64`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// Zero simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time (~213 days).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time of `ps` picoseconds.
    #[inline]
    pub const fn ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates a time of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the picosecond representation. The
    /// check is explicit (`checked_mul`), so it fires in release builds
    /// too — the seed implementation used an unchecked multiply that
    /// silently wrapped with `overflow-checks` off.
    #[inline]
    pub const fn ns(ns: u64) -> Time {
        match ns.checked_mul(1_000) {
            Some(ps) => Time(ps),
            None => panic!("Time::ns overflows the picosecond representation"),
        }
    }

    /// Creates a time of `us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the picosecond representation
    /// (explicitly checked, also in release builds).
    #[inline]
    pub const fn us(us: u64) -> Time {
        match us.checked_mul(1_000_000) {
            Some(ps) => Time(ps),
            None => panic!("Time::us overflows the picosecond representation"),
        }
    }

    /// Creates a time of `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the picosecond representation
    /// (explicitly checked, also in release builds).
    #[inline]
    pub const fn ms(ms: u64) -> Time {
        match ms.checked_mul(1_000_000_000) {
            Some(ps) => Time(ps),
            None => panic!("Time::ms overflows the picosecond representation"),
        }
    }

    /// Creates a time of `s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the picosecond representation
    /// (explicitly checked, also in release builds).
    #[inline]
    pub const fn s(s: u64) -> Time {
        match s.checked_mul(1_000_000_000_000) {
            Some(ps) => Time(ps),
            None => panic!("Time::s overflows the picosecond representation"),
        }
    }

    /// Creates a time from a fractional nanosecond count, rounding to the
    /// nearest picosecond. Values beyond the representable range saturate
    /// to [`Time::MAX`].
    ///
    /// This is the conversion used when back-annotating estimated delays
    /// (which are fractional cycle counts) onto the strict-timed axis.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative input — a NaN or negative estimated
    /// delay is always an upstream modelling bug, and the seed behaviour
    /// of silently clamping it to zero let such bugs poison whole
    /// reports. Use [`Time::try_from_ns_f64`] for a checked conversion.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Time {
        match Time::try_from_ns_f64(ns) {
            Ok(t) => t,
            Err(e) => panic!("Time::from_ns_f64({ns}): {e}"),
        }
    }

    /// Creates a time from a fractional picosecond count, rounding to the
    /// nearest picosecond. Values beyond the representable range saturate
    /// to [`Time::MAX`].
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative input (see [`Time::from_ns_f64`]). Use
    /// [`Time::try_from_ps_f64`] for a checked conversion.
    #[inline]
    pub fn from_ps_f64(ps: f64) -> Time {
        match Time::try_from_ps_f64(ps) {
            Ok(t) => t,
            Err(e) => panic!("Time::from_ps_f64({ps}): {e}"),
        }
    }

    /// Checked version of [`Time::from_ns_f64`]: `Err` on NaN or
    /// negative input instead of panicking.
    #[inline]
    pub fn try_from_ns_f64(ns: f64) -> Result<Time, TimeFromFloatError> {
        Time::try_from_ps_f64(ns * 1_000.0)
    }

    /// Checked version of [`Time::from_ps_f64`]: `Err` on NaN or
    /// negative input instead of panicking. `+inf` and finite values
    /// beyond the representable range saturate to [`Time::MAX`]
    /// ("longer than any simulation").
    #[inline]
    pub fn try_from_ps_f64(ps: f64) -> Result<Time, TimeFromFloatError> {
        if ps.is_nan() {
            Err(TimeFromFloatError::Nan)
        } else if ps < 0.0 {
            Err(TimeFromFloatError::Negative)
        } else if ps >= u64::MAX as f64 {
            Ok(Time::MAX)
        } else {
            Ok(Time(ps.round() as u64))
        }
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed as fractional seconds.
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// `true` when this is [`Time::ZERO`].
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

/// Why a float→[`Time`] conversion was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeFromFloatError {
    /// The input was NaN.
    Nan,
    /// The input was negative (simulated time is an unsigned axis).
    Negative,
}

impl fmt::Display for TimeFromFloatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeFromFloatError::Nan => write!(f, "NaN is not a simulated time"),
            TimeFromFloatError::Negative => {
                write!(f, "negative values are not simulated times")
            }
        }
    }
}

impl std::error::Error for TimeFromFloatError {}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    /// Formats with the largest unit that keeps the value >= 1, e.g.
    /// `10.5ns`, `3us`, `0ps`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(u64, &str); 5] = [
            (1_000_000_000_000, "s"),
            (1_000_000_000, "ms"),
            (1_000_000, "us"),
            (1_000, "ns"),
            (1, "ps"),
        ];
        let ps = self.0;
        for &(scale, unit) in &UNITS {
            if ps >= scale || scale == 1 {
                let whole = ps / scale;
                let frac = ps % scale;
                if frac == 0 {
                    return write!(f, "{whole}{unit}");
                }
                let val = ps as f64 / scale as f64;
                return write!(f, "{val}{unit}");
            }
        }
        unreachable!()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Time::ps(7).as_ps(), 7);
        assert_eq!(Time::ns(7).as_ps(), 7_000);
        assert_eq!(Time::us(7).as_ps(), 7_000_000);
        assert_eq!(Time::ms(7).as_ps(), 7_000_000_000);
        assert_eq!(Time::s(7).as_ps(), 7_000_000_000_000);
    }

    #[test]
    fn from_f64_rounds_and_saturates_above() {
        assert_eq!(Time::from_ns_f64(1.4999).as_ps(), 1_500);
        assert_eq!(Time::from_ps_f64(0.0), Time::ZERO);
        assert_eq!(Time::from_ps_f64(-0.0), Time::ZERO);
        assert_eq!(Time::from_ps_f64(f64::INFINITY), Time::MAX);
        assert_eq!(Time::from_ps_f64(1e30), Time::MAX);
    }

    #[test]
    fn try_from_f64_rejects_nan_and_negative() {
        assert_eq!(
            Time::try_from_ps_f64(f64::NAN),
            Err(TimeFromFloatError::Nan)
        );
        assert_eq!(
            Time::try_from_ps_f64(-1.0),
            Err(TimeFromFloatError::Negative)
        );
        assert_eq!(
            Time::try_from_ns_f64(-0.001),
            Err(TimeFromFloatError::Negative)
        );
        assert_eq!(Time::try_from_ns_f64(2.5), Ok(Time::ps(2_500)));
    }

    #[test]
    #[should_panic(expected = "NaN is not a simulated time")]
    fn from_f64_panics_on_nan() {
        let _ = Time::from_ns_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative values are not simulated times")]
    fn from_f64_panics_on_negative() {
        let _ = Time::from_ns_f64(-3.0);
    }

    #[test]
    fn constructors_accept_the_largest_representable_value() {
        // Exactly at the boundary: the largest input whose picosecond
        // count still fits in u64.
        assert_eq!(Time::ns(u64::MAX / 1_000).as_ps(), u64::MAX / 1_000 * 1_000);
        assert_eq!(
            Time::us(u64::MAX / 1_000_000).as_ps(),
            u64::MAX / 1_000_000 * 1_000_000
        );
        assert_eq!(
            Time::ms(u64::MAX / 1_000_000_000).as_ps(),
            u64::MAX / 1_000_000_000 * 1_000_000_000
        );
        assert_eq!(
            Time::s(u64::MAX / 1_000_000_000_000).as_ps(),
            u64::MAX / 1_000_000_000_000 * 1_000_000_000_000
        );
    }

    #[test]
    #[should_panic(expected = "Time::ns overflows")]
    fn ns_overflow_panics_at_the_boundary() {
        let _ = Time::ns(u64::MAX / 1_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Time::us overflows")]
    fn us_overflow_panics_at_the_boundary() {
        let _ = Time::us(u64::MAX / 1_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Time::ms overflows")]
    fn ms_overflow_panics_at_the_boundary() {
        let _ = Time::ms(u64::MAX / 1_000_000_000 + 1);
    }

    #[test]
    #[should_panic(expected = "Time::s overflows")]
    fn s_overflow_panics_at_the_boundary() {
        let _ = Time::s(u64::MAX / 1_000_000_000_000 + 1);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Time::ns(3);
        let b = Time::ns(2);
        assert_eq!(a + b, Time::ns(5));
        assert_eq!(a - b, Time::ns(1));
        assert_eq!(a * 4, Time::ns(12));
        assert_eq!(a / 3, Time::ns(1));
        assert_eq!(Time::ZERO.saturating_sub(a), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(a), Time::MAX);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total, Time::ns(7));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time::ps(999) < Time::ns(1));
        assert!(Time::ns(1) < Time::us(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::ZERO.to_string(), "0ps");
        assert_eq!(Time::ps(345).to_string(), "345ps");
        assert_eq!(Time::ns(10).to_string(), "10ns");
        assert_eq!((Time::ns(10) + Time::ps(500)).to_string(), "10.5ns");
        assert_eq!(Time::us(3).to_string(), "3us");
        assert_eq!(Time::s(2).to_string(), "2s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Time::MAX.checked_add(Time::ps(1)), None);
        assert_eq!(Time::ps(1).checked_add(Time::ps(2)), Some(Time::ps(3)));
    }
}
