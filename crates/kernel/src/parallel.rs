//! Parallel-evaluate support: per-process effect logs, the round gate,
//! and the `kernel.par.*` counters.
//!
//! The paper's §4 delta-cycle semantics make the *evaluate* phase
//! order-independent for determinate specifications: within one delta,
//! runnable processes may execute in any order (or concurrently) as
//! long as their side effects on the kernel become visible in one
//! canonical order. The kernel exploits that with a buffered-effect
//! protocol (see `docs/PARALLELISM.md` for the full contract):
//!
//! 1. At the start of a parallel round the scheduler snapshots the
//!    runnable set (ascending pid), flips [`ParShared::active`], and
//!    installs a [`RoundGate`] listing the round's members.
//! 2. Process bodies run concurrently, one pool worker per pid chunk.
//!    Kernel-visible side effects (schedules, event waits/notifies,
//!    trace records) are appended to the process's own [`Effect`] log
//!    instead of mutating [`crate::state::KernelState`] directly.
//! 3. When every member has yielded, the scheduler *commits*: it
//!    replays each log in ascending-pid order — each effect in program
//!    order — through the exact same `KernelState` functions the
//!    sequential kernel uses. Sequence numbers, metrics and the trace
//!    stream therefore come out bit-identical to a sequential run.
//!
//! Primitives whose effects are visible to *other processes in the same
//! delta* (rendezvous slots, sim-mutexes, semaphores, the estimator's
//! §4 resource arbitration) cannot be buffered; they call
//! [`crate::process::ProcCtx::par_fence`], which blocks until every
//! lower-pid member of the round has yielded — serializing just those
//! interactions in canonical pid order while everything else overlaps.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use scperf_obs::{Payload, Sym};
use scperf_sync::{Condvar, Mutex};

use crate::state::TimedAction;
use crate::time::Time;

thread_local! {
    /// Pid of the simulation process running on this OS thread, if any.
    /// Set once at process-thread startup; `usize::MAX` = not a process
    /// thread. Needed because `Event::notify_*` have no `ProcCtx`.
    static CURRENT_PID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Marks the calling OS thread as running simulation process `pid`.
pub(crate) fn set_current_pid(pid: usize) {
    CURRENT_PID.with(|c| c.set(pid));
}

/// The simulation pid running on this thread, if any.
pub(crate) fn current_pid() -> Option<usize> {
    let pid = CURRENT_PID.with(|c| c.get());
    (pid != usize::MAX).then_some(pid)
}

/// One buffered kernel-visible side effect of a process running inside
/// a parallel evaluate round. Replayed in (pid, program-order) at
/// commit through the normal sequential `KernelState` entry points.
pub(crate) enum Effect {
    /// `ctx.wait(delay)` or `Event::notify_delayed`: push onto the
    /// timer wheel (reproduces the wheel's FIFO `seq` numbers because
    /// replay order equals canonical order).
    Schedule {
        /// Delay relative to the current simulated time.
        delay: Time,
        /// What fires when the timer expires.
        action: TimedAction,
    },
    /// `ctx.wait_event(ev)`: park this process on the event's waiter
    /// set.
    WaitEvent {
        /// Target event id.
        ev: usize,
    },
    /// `Event::notify_delta`: wake the waiters at the next delta.
    NotifyDelta {
        /// Target event id.
        ev: usize,
    },
    /// `Event::notify_immediate`: only legal under parallel evaluation
    /// when the event has no waiters at commit time — an immediate wake
    /// *within* the current delta would depend on execution order,
    /// which is exactly what the determinism contract forbids.
    NotifyImmediate {
        /// Target event id.
        ev: usize,
    },
    /// A channel trace record with an interned label (fifo/rendezvous
    /// read/write).
    Trace {
        /// Interned record-site label (e.g. `fifo.read`).
        label: Sym,
        /// Interned channel name.
        chan: Sym,
        /// Captured value.
        payload: Payload,
    },
    /// A free-form text trace record (`ProcCtx::emit_trace`).
    TraceText {
        /// Record-site label.
        label: String,
        /// Pre-rendered detail text.
        detail: String,
    },
}

/// Tracks which members of the current parallel round have yielded, so
/// order-sensitive primitives can wait for every lower pid first.
///
/// Deadlock-freedom: a fence only ever waits on *strictly lower* pids,
/// and per-worker chunks are ascending, so the smallest non-yielded pid
/// in the round is never blocked by the gate and can always progress.
pub(crate) struct RoundGate {
    /// Round members, ascending.
    members: Vec<usize>,
    /// Yielded flag per member (indexed like `members`).
    yielded: Mutex<Vec<bool>>,
    cv: Condvar,
}

impl RoundGate {
    pub(crate) fn new(members: Vec<usize>) -> Arc<RoundGate> {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let n = members.len();
        Arc::new(RoundGate {
            members,
            yielded: Mutex::new(vec![false; n]),
            cv: Condvar::new(),
        })
    }

    /// Records that `pid` yielded back to its dispatcher this round.
    pub(crate) fn mark_yielded(&self, pid: usize) {
        if let Ok(i) = self.members.binary_search(&pid) {
            let mut y = self.yielded.lock();
            y[i] = true;
            drop(y);
            self.cv.notify_all();
        }
    }

    /// Blocks until every member with a pid lower than `pid` has
    /// yielded. No-op for the lowest member or for non-members.
    pub(crate) fn fence(&self, pid: usize) {
        let i = match self.members.binary_search(&pid) {
            Ok(i) => i,
            Err(_) => return,
        };
        if i == 0 {
            return;
        }
        let mut y = self.yielded.lock();
        while !y[..i].iter().all(|&done| done) {
            self.cv.wait(&mut y);
        }
    }
}

/// Parallel-evaluate state hanging off [`crate::state::Shared`]: the
/// round-active flag the process-side fast paths branch on, the effect
/// logs, hazard reports, and the `kernel.par.*` counters.
pub(crate) struct ParShared {
    /// True exactly while a parallel round is executing. Process-side
    /// code buffers effects instead of touching the kernel state.
    active: AtomicBool,
    /// Monotonic round id (starts at 1); channels use it to scope their
    /// same-round conflict trackers.
    round: AtomicU64,
    /// Gate for the round in flight.
    gate: Mutex<Option<Arc<RoundGate>>>,
    /// Per-pid effect logs, sized once at the first parallel round.
    logs: OnceLock<Vec<Mutex<Vec<Effect>>>>,
    /// Non-determinate constructs observed (conflicting same-delta
    /// channel accesses). Reported after the round completes.
    hazards: Mutex<Vec<String>>,
    /// `kernel.par.rounds`: parallel rounds executed.
    pub(crate) rounds: AtomicU64,
    /// `kernel.par.workers`: max dispatchers used in any one round
    /// (including the scheduler thread running chunk 0 inline).
    pub(crate) workers: AtomicU64,
    /// `kernel.par.effects`: effects replayed at commit.
    pub(crate) effects_committed: AtomicU64,
    /// `kernel.par.commit_nanos`: host time spent in commit replay.
    pub(crate) commit_nanos: AtomicU64,
    /// `kernel.par.seq_fallbacks`: evaluate phases run sequentially
    /// although `jobs > 1` (runnable set too small, or a feature such
    /// as attribution forces the sequential path).
    pub(crate) seq_fallbacks: AtomicU64,
}

impl ParShared {
    pub(crate) fn new() -> ParShared {
        ParShared {
            active: AtomicBool::new(false),
            round: AtomicU64::new(0),
            gate: Mutex::new(None),
            logs: OnceLock::new(),
            hazards: Mutex::new(Vec::new()),
            rounds: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            effects_committed: AtomicU64::new(0),
            commit_nanos: AtomicU64::new(0),
            seq_fallbacks: AtomicU64::new(0),
        }
    }

    /// Lock-free branch used on every process-side kernel interaction.
    #[inline]
    pub(crate) fn active_fast(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Current round id (valid only while a round is active).
    pub(crate) fn round_id(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Opens a round over `members` (ascending pids): sizes the logs,
    /// bumps the round id, installs the gate and flips `active`.
    pub(crate) fn begin_round(&self, members: Vec<usize>, nprocs: usize) -> Arc<RoundGate> {
        self.logs
            .get_or_init(|| (0..nprocs).map(|_| Mutex::new(Vec::new())).collect());
        self.round.fetch_add(1, Ordering::Relaxed);
        let gate = RoundGate::new(members);
        *self.gate.lock() = Some(Arc::clone(&gate));
        self.active.store(true, Ordering::Release);
        gate
    }

    /// Closes the round: clears `active` (so commit replay goes through
    /// the live kernel paths) and drops the gate.
    pub(crate) fn end_round(&self) {
        self.active.store(false, Ordering::Release);
        *self.gate.lock() = None;
    }

    /// Appends a buffered effect to `pid`'s log.
    pub(crate) fn append(&self, pid: usize, effect: Effect) {
        self.logs.get().expect("round active")[pid]
            .lock()
            .push(effect);
    }

    /// Drains `pid`'s effect log for commit replay.
    pub(crate) fn drain(&self, pid: usize) -> Vec<Effect> {
        match self.logs.get() {
            Some(logs) => std::mem::take(&mut *logs[pid].lock()),
            None => Vec::new(),
        }
    }

    /// Blocks until all round members below `pid` have yielded (no-op
    /// when no round is active).
    pub(crate) fn fence(&self, pid: usize) {
        let gate = self.gate.lock().clone();
        if let Some(gate) = gate {
            gate.fence(pid);
        }
    }

    /// True when the per-pid effect-log table (sized once, at the first
    /// parallel round) can hold `nprocs` logs. A reused simulator that
    /// spawns more processes than its first life had falls back to
    /// sequential evaluation instead of resizing the lock-free table.
    pub(crate) fn logs_fit(&self, nprocs: usize) -> bool {
        match self.logs.get() {
            Some(logs) => logs.len() >= nprocs,
            None => true,
        }
    }

    /// Zeroes the `kernel.par.*` counters and drops any stale hazard
    /// reports, for simulator-slot reuse. The effect logs need no
    /// clearing: every commit drains them.
    pub(crate) fn reset_counters(&self) {
        self.rounds.store(0, Ordering::Relaxed);
        self.workers.store(0, Ordering::Relaxed);
        self.effects_committed.store(0, Ordering::Relaxed);
        self.commit_nanos.store(0, Ordering::Relaxed);
        self.seq_fallbacks.store(0, Ordering::Relaxed);
        self.hazards.lock().clear();
    }

    /// Records a non-determinate construct detected mid-round.
    pub(crate) fn report_hazard(&self, detail: String) {
        self.hazards.lock().push(detail);
    }

    /// Takes the hazards observed this round (sorted for determinism).
    pub(crate) fn take_hazards(&self) -> Vec<String> {
        let mut h = std::mem::take(&mut *self.hazards.lock());
        h.sort();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_releases_in_pid_order() {
        let gate = RoundGate::new(vec![2, 5, 9]);
        // Lowest member never blocks.
        gate.fence(2);
        // Non-members never block.
        gate.fence(7);
        let g = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            g.fence(9); // must wait for 2 and 5
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!t.is_finished());
        gate.mark_yielded(2);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!t.is_finished(), "pid 5 has not yielded yet");
        gate.mark_yielded(5);
        t.join().unwrap();
    }

    #[test]
    fn current_pid_is_thread_local() {
        assert_eq!(current_pid(), None);
        set_current_pid(3);
        assert_eq!(current_pid(), Some(3));
        std::thread::spawn(|| assert_eq!(current_pid(), None))
            .join()
            .unwrap();
        CURRENT_PID.with(|c| c.set(usize::MAX));
    }

    #[test]
    fn hazards_come_back_sorted() {
        let par = ParShared::new();
        par.report_hazard("zz".into());
        par.report_hazard("aa".into());
        assert_eq!(par.take_hazards(), vec!["aa".to_string(), "zz".to_string()]);
        assert!(par.take_hazards().is_empty());
    }
}
