//! Process identity and the per-process execution context.

use std::fmt;
use std::sync::Arc;

use crate::event::Event;
use crate::handoff::Baton;
use crate::parallel::Effect;
use crate::state::{Shared, TimedAction};
use crate::time::Time;

/// Identifies a process within one simulator. Ordered by spawn order; the
/// scheduler uses this order to make delta cycles deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) usize);

impl ProcId {
    /// The process's index in spawn order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The execution context handed to every process body.
///
/// All interaction between a process and the simulated world goes through
/// this context: reading the clock, timed waits, and (indirectly, via the
/// channels) event waits. A process that returns from its body terminates.
///
/// # Examples
///
/// ```
/// use scperf_kernel::{Simulator, Time};
///
/// let mut sim = Simulator::new();
/// sim.spawn("ticker", |ctx| {
///     for _ in 0..3 {
///         ctx.wait(Time::ns(10));
///     }
///     assert_eq!(ctx.now(), Time::ns(30));
/// });
/// sim.run().unwrap();
/// ```
pub struct ProcCtx {
    pub(crate) pid: usize,
    pub(crate) shared: Arc<Shared>,
    pub(crate) baton: Arc<Baton>,
}

impl ProcCtx {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        ProcId(self.pid)
    }

    /// This process's name.
    pub fn name(&self) -> String {
        self.shared.with_state(|st| st.procs[self.pid].name.clone())
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.shared.with_state(|st| st.now)
    }

    /// Number of delta cycles executed so far.
    pub fn delta_count(&self) -> u64 {
        self.shared.with_state(|st| st.delta)
    }

    /// Suspends this process for `delay` of simulated time
    /// (SystemC `wait(sc_time)`).
    ///
    /// A zero delay suspends until the next timed-notification phase at the
    /// same instant, i.e. it behaves like `wait(SC_ZERO_TIME)`.
    pub fn wait(&mut self, delay: Time) {
        if self.shared.par_active_fast() {
            self.shared.par.append(
                self.pid,
                Effect::Schedule {
                    delay,
                    action: TimedAction::WakeProc(self.pid),
                },
            );
        } else {
            self.shared
                .with_state(|st| st.schedule(delay, TimedAction::WakeProc(self.pid)));
        }
        self.baton.yield_to_scheduler();
    }

    /// Suspends this process until `event` is notified.
    ///
    /// User processes following the paper's specification methodology never
    /// call this directly — channels do — but testbench components may.
    pub fn wait_event(&mut self, event: &Event) {
        if self.shared.par_active_fast() {
            self.shared
                .par
                .append(self.pid, Effect::WaitEvent { ev: event.id });
        } else {
            self.shared.with_state(|st| {
                st.events[event.id].waiters.insert(self.pid);
            });
        }
        self.baton.yield_to_scheduler();
    }

    /// Appends a record to the simulator's trace (no-op when tracing is
    /// disabled). `label` classifies the record; `detail` carries values.
    pub fn emit_trace(&mut self, label: &str, detail: impl Into<String>) {
        if !self.shared.tracing_fast() {
            return;
        }
        let pid = self.pid;
        let detail = detail.into();
        if self.shared.par_active_fast() {
            self.shared.par.append(
                pid,
                Effect::TraceText {
                    label: label.to_string(),
                    detail,
                },
            );
        } else {
            self.shared
                .with_state(|st| st.record_text(Some(pid), label, &detail));
        }
    }

    /// Waits, inside a parallel evaluate round, until every runnable
    /// process with a lower pid has yielded for this delta. Outside a
    /// parallel round (the default `jobs = 1` kernel) this is a single
    /// atomic load and returns immediately.
    ///
    /// Order-sensitive primitives — rendezvous channels, [`crate::SimMutex`],
    /// [`crate::SimSemaphore`], and the estimator's sequential-resource
    /// arbitration in `scperf-core` — call this before touching state
    /// that other processes can observe within the same delta, so those
    /// interactions happen in canonical ascending-pid order and the
    /// parallel kernel stays bit-identical to the sequential one (see
    /// `docs/PARALLELISM.md`).
    pub fn par_fence(&self) {
        if self.shared.par_active_fast() {
            self.shared.par.fence(self.pid);
        }
    }
}

impl fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcCtx").field("pid", &self.pid).finish()
    }
}
