//! End-to-end tests for the §6 non-determinism check: run the same
//! model under two different timing back-annotations and diff the
//! per-stream functional trace content with `compare_traces`.
//!
//! A deterministic specification must produce identical per-process
//! streams however the scheduler interleaves it; a specification whose
//! output depends on arrival order (two producers racing into one
//! FIFO) must be flagged.

use scperf_kernel::trace::{compare_traces, functional_projection};
use scperf_kernel::{SimOptions, Simulator, Time, TraceMode, TraceRecord};

/// One producer → FIFO → one consumer. The producer's per-item delay is
/// a parameter; the functional content never depends on it. `jobs`
/// selects the evaluate-phase parallelism — the trace must not depend
/// on it at all (see `docs/PARALLELISM.md`).
fn run_deterministic_jobs(delay_ns: u64, jobs: usize) -> Vec<TraceRecord> {
    let mut sim = SimOptions::new()
        .jobs(jobs)
        .tracing(TraceMode::Unbounded)
        .build();
    let ch = sim.fifo::<u32>("ch", 2);
    let tx = ch.clone();
    sim.spawn("producer", move |ctx| {
        for i in 0..20u32 {
            if delay_ns > 0 {
                ctx.wait(Time::ns(delay_ns));
            }
            tx.write(ctx, i * i);
        }
    });
    let rx = ch;
    sim.spawn("consumer", move |ctx| {
        let mut sum = 0u32;
        for _ in 0..20 {
            sum = sum.wrapping_add(rx.read(ctx));
        }
        ctx.emit_trace("sum", sum.to_string());
    });
    sim.run().expect("runs");
    sim.take_trace()
}

fn run_deterministic(delay_ns: u64) -> Vec<TraceRecord> {
    run_deterministic_jobs(delay_ns, 1)
}

/// Two producers race into one FIFO; the consumer's read order (and its
/// running checksum) depends on the relative delays — a
/// scheduling-dependent, i.e. non-deterministic, specification. The
/// `seed` picks the timing annotation, standing in for the reordering a
/// timing back-annotation introduces.
fn run_racy(seed: u64) -> Vec<TraceRecord> {
    let mut sim = Simulator::new();
    sim.enable_tracing();
    let ch = sim.fifo::<u64>("shared", 4);
    for p in 0..2u64 {
        let tx = ch.clone();
        // Seed-dependent per-producer delay: different seeds reorder
        // the arrivals of the two producers.
        let delay = 1 + (seed.wrapping_mul(2654435761).wrapping_add(p)) % 7;
        sim.spawn(format!("producer{p}"), move |ctx| {
            for i in 0..10u64 {
                ctx.wait(Time::ns(delay));
                tx.write(ctx, p * 100 + i);
            }
        });
    }
    let rx = ch;
    sim.spawn("consumer", move |ctx| {
        let mut chk = 0u64;
        for _ in 0..20 {
            // Order-sensitive fold: a different interleaving gives a
            // different checksum, not just a permutation.
            chk = chk.wrapping_mul(31).wrapping_add(rx.read(ctx));
        }
        ctx.emit_trace("checksum", chk.to_string());
    });
    sim.run().expect("runs");
    sim.take_trace()
}

#[test]
fn deterministic_model_agrees_across_timings() {
    let fast = run_deterministic(0);
    let slow = run_deterministic(13);
    // Global interleaving genuinely changed…
    assert_ne!(functional_projection(&fast), functional_projection(&slow));
    // …but every per-process stream is identical: deterministic.
    assert_eq!(compare_traces(&fast, &slow), Vec::<String>::new());
}

/// Parallel evaluation is held to a stronger bar than the §6 per-stream
/// check: the *entire* trace — global interleaving included — must be
/// bit-identical to the sequential kernel, for both timing annotations.
#[test]
fn deterministic_model_is_bit_identical_across_jobs() {
    for delay in [0u64, 13] {
        let seq = run_deterministic_jobs(delay, 1);
        for jobs in [2usize, 8] {
            let par = run_deterministic_jobs(delay, jobs);
            assert_eq!(seq, par, "full trace diverged at delay={delay} jobs={jobs}");
        }
    }
}

#[test]
fn seeded_nondeterministic_model_is_flagged() {
    let a = run_racy(1);
    let b = run_racy(2);
    let differing = compare_traces(&a, &b);
    // The consumer observes a different read order, so its stream (and
    // only a scheduling-dependent stream) must be reported.
    assert!(
        differing.iter().any(|s| s == "consumer"),
        "expected the racy consumer to be flagged, got {differing:?}"
    );
    // The same seed must reproduce the same behaviour (seeded, not
    // wild, non-determinism).
    let a2 = run_racy(1);
    assert_eq!(compare_traces(&a, &a2), Vec::<String>::new());
}
