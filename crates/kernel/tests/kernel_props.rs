//! Property-based and scenario tests for the simulation kernel.

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_kernel::{trace, Simulator, StopReason, Time};

/// Builds a randomized multi-stage pipeline and returns its trace.
fn run_pipeline(
    stage_delays: &[u64],
    values: &[u32],
    capacity: usize,
) -> Vec<scperf_kernel::TraceRecord> {
    let mut sim = Simulator::new();
    sim.enable_tracing();
    let n_stages = stage_delays.len();
    let mut fifos = Vec::new();
    for i in 0..=n_stages {
        fifos.push(sim.fifo::<u32>(format!("f{i}"), capacity));
    }
    let src = fifos[0].clone();
    let values_owned = values.to_vec();
    sim.spawn("source", move |ctx| {
        for v in values_owned {
            src.write(ctx, v);
        }
    });
    for (i, &d) in stage_delays.iter().enumerate() {
        let input = fifos[i].clone();
        let output = fifos[i + 1].clone();
        let count = values.len();
        sim.spawn(format!("stage{i}"), move |ctx| {
            for _ in 0..count {
                let v = input.read(ctx);
                ctx.wait(Time::ns(d));
                output.write(ctx, v.wrapping_mul(3).wrapping_add(1));
            }
        });
    }
    let sink = fifos[n_stages].clone();
    let count = values.len();
    sim.spawn("sink", move |ctx| {
        for _ in 0..count {
            let v = sink.read(ctx);
            ctx.emit_trace("sink", v.to_string());
        }
    });
    sim.run().expect("pipeline must not panic");
    sim.take_trace()
}

proptest! {
    /// Two runs of an identical model produce bit-identical traces.
    #[test]
    fn simulation_is_deterministic(
        delays in vec(0_u64..50, 1..4),
        values in vec(any::<u32>(), 1..20),
        cap in 1_usize..4,
    ) {
        let a = run_pipeline(&delays, &values, cap);
        let b = run_pipeline(&delays, &values, cap);
        prop_assert_eq!(a, b);
    }

    /// Every value traverses the pipeline unchanged-in-order (KPN property).
    #[test]
    fn pipeline_preserves_order(
        delays in vec(0_u64..20, 1..4),
        values in vec(any::<u32>(), 1..20),
        cap in 1_usize..4,
    ) {
        let trace = run_pipeline(&delays, &values, cap);
        let sunk: Vec<u32> = trace
            .iter()
            .filter(|r| r.label == "sink")
            .map(|r| r.detail.parse().unwrap())
            .collect();
        let expected: Vec<u32> = values
            .iter()
            .map(|&v| {
                let mut v = v;
                for _ in 0..delays.len() {
                    v = v.wrapping_mul(3).wrapping_add(1);
                }
                v
            })
            .collect();
        prop_assert_eq!(sunk, expected);
    }

    /// End time equals the maximum over processes of the sum of their waits.
    #[test]
    fn end_time_is_max_of_wait_sums(waits in vec(vec(0_u64..1000, 0..10), 1..6)) {
        let mut sim = Simulator::new();
        for (i, ws) in waits.iter().enumerate() {
            let ws = ws.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                for w in ws {
                    ctx.wait(Time::ns(w));
                }
            });
        }
        let summary = sim.run().unwrap();
        let expect: u64 = waits.iter().map(|ws| ws.iter().sum()).max().unwrap();
        prop_assert_eq!(summary.end_time, Time::ns(expect));
        prop_assert_eq!(summary.reason, StopReason::EventsExhausted);
    }

    /// Simulation time never decreases along a trace.
    #[test]
    fn trace_time_is_monotone(
        delays in vec(0_u64..20, 1..4),
        values in vec(any::<u32>(), 1..20),
    ) {
        let trace = run_pipeline(&delays, &values, 2);
        for w in trace.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
            prop_assert!(w[0].delta <= w[1].delta);
        }
    }

    /// The untimed and a timed variant of a deterministic model agree on
    /// per-process functional traces (the §6 determinism check).
    #[test]
    fn untimed_and_timed_functionally_agree(values in vec(any::<u32>(), 1..20)) {
        let untimed = run_pipeline(&[0, 0], &values, 2);
        let timed = run_pipeline(&[7, 13], &values, 2);
        prop_assert!(trace::compare_traces(&untimed, &timed)
            .iter()
            .all(|p| p.starts_with("stage") || p == "source"),
            "only records that embed no values may differ");
        // The sink observes identical values in both runs.
        let sunk = |t: &[scperf_kernel::TraceRecord]| -> Vec<String> {
            t.iter().filter(|r| r.label == "sink").map(|r| r.detail.clone()).collect()
        };
        prop_assert_eq!(sunk(&untimed), sunk(&timed));
    }
}

#[test]
fn rendezvous_pipeline_is_lock_step() {
    let mut sim = Simulator::new();
    let ch = sim.rendezvous::<u64>("sync");
    let (w, r) = (ch.clone(), ch);
    sim.spawn("producer", move |ctx| {
        for i in 0..100 {
            w.write(ctx, i);
        }
    });
    sim.spawn("consumer", move |ctx| {
        for i in 0..100 {
            assert_eq!(r.read(ctx), i);
            ctx.wait(Time::ns(3));
        }
    });
    let s = sim.run().unwrap();
    // Each consume inserts a 3ns gap; the producer is throttled to it.
    assert_eq!(s.end_time, Time::ns(300));
}

#[test]
fn many_processes_contend_on_one_fifo() {
    let mut sim = Simulator::new();
    let f = sim.fifo::<u32>("shared", 1);
    let n = 8;
    for i in 0..n {
        let tx = f.clone();
        sim.spawn(format!("w{i}"), move |ctx| {
            tx.write(ctx, i);
        });
    }
    let rx = f.clone();
    let got = std::sync::Arc::new(scperf_sync::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&got);
    sim.spawn("reader", move |ctx| {
        for _ in 0..n {
            sink.lock().push(rx.read(ctx));
        }
    });
    sim.run().unwrap();
    let mut values = got.lock().clone();
    values.sort_unstable();
    assert_eq!(values, (0..n).collect::<Vec<_>>());
}
