//! The parallel-evaluate determinism contract, enforced end to end:
//! `SimSummary`, the full trace stream, and the simulated-time metrics
//! must be bit-identical for `jobs ∈ {1, 2, 8}` on determinate models,
//! and non-determinate constructs must be *reported*, not raced.
//!
//! See `docs/PARALLELISM.md` for the contract these tests pin down.

use proptest::prelude::*;
use scperf_kernel::{SimError, SimOptions, SimSummary, Time, TraceMode};

/// Runs `build` under the given parallelism and returns everything the
/// contract covers: the summary, the rendered trace stream, and the
/// metrics snapshot filtered down to simulated-time (deterministic)
/// counters.
fn observe(
    jobs: usize,
    build: impl FnOnce(&mut scperf_kernel::Simulator),
) -> (SimSummary, Vec<String>, Vec<(String, String)>) {
    let mut sim = SimOptions::new()
        .jobs(jobs)
        .tracing(TraceMode::Unbounded)
        .build();
    build(&mut sim);
    let summary = sim.run().expect("determinate model must run cleanly");
    let trace = sim
        .take_trace()
        .iter()
        .map(|r| {
            format!(
                "{}|{}|{}|{}|{}",
                r.time.as_ps(),
                r.delta,
                r.process,
                r.label,
                r.detail
            )
        })
        .collect();
    // Host-time and parallelism-bookkeeping counters legitimately vary
    // across jobs values; everything else must match bit-exactly.
    let metrics: Vec<(String, String)> = sim
        .metrics()
        .iter()
        .filter(|(name, _)| {
            !name.starts_with("kernel.par.") && !name.starts_with("kernel.handoff.")
        })
        .map(|(name, value)| (name.to_string(), format!("{value:?}")))
        .collect();
    (summary, trace, metrics)
}

/// Asserts the full contract across jobs ∈ {1, 2, 8}.
fn assert_bit_identical(build: impl Fn(&mut scperf_kernel::Simulator) + Copy) {
    let (s1, t1, m1) = observe(1, build);
    for jobs in [2usize, 8] {
        let (sj, tj, mj) = observe(jobs, build);
        assert_eq!(s1, sj, "SimSummary diverged at jobs={jobs}");
        assert_eq!(
            t1.len(),
            tj.len(),
            "trace length diverged at jobs={jobs}: {} vs {}",
            t1.len(),
            tj.len()
        );
        for (i, (a, b)) in t1.iter().zip(&tj).enumerate() {
            assert_eq!(a, b, "trace record {i} diverged at jobs={jobs}");
        }
        assert_eq!(m1, mj, "metrics diverged at jobs={jobs}");
    }
}

/// N independent producer→fifo→consumer pairs with skewed timing.
fn fifo_pairs(
    pairs: usize,
    items: u32,
    delay_ns: u64,
) -> impl Fn(&mut scperf_kernel::Simulator) + Copy {
    move |sim| {
        for p in 0..pairs {
            let f = sim.fifo::<u32>(format!("ch{p}"), 2);
            let (tx, rx) = (f.clone(), f);
            let d = delay_ns + p as u64;
            sim.spawn(format!("prod{p}"), move |ctx| {
                for i in 0..items {
                    tx.write(ctx, i.wrapping_mul(p as u32 + 1));
                    ctx.wait(Time::ns(d));
                }
            });
            sim.spawn(format!("cons{p}"), move |ctx| {
                let mut acc = 0u64;
                for _ in 0..items {
                    acc += u64::from(rx.read(ctx));
                }
                ctx.emit_trace("sum", acc.to_string());
            });
        }
    }
}

#[test]
fn fifo_workload_is_bit_identical_across_jobs() {
    assert_bit_identical(fifo_pairs(4, 40, 3));
}

#[test]
fn rendezvous_workload_is_bit_identical_across_jobs() {
    assert_bit_identical(|sim| {
        for p in 0..3 {
            let ch = sim.rendezvous::<u32>(format!("r{p}"));
            let (w, r) = (ch.clone(), ch);
            sim.spawn(format!("w{p}"), move |ctx| {
                for i in 0..20 {
                    w.write(ctx, i + p as u32);
                    if p == 1 {
                        ctx.wait(Time::ns(7));
                    }
                }
            });
            sim.spawn(format!("r{p}"), move |ctx| {
                let mut acc = 0u64;
                for _ in 0..20 {
                    acc += u64::from(r.read(ctx));
                    if p == 2 {
                        ctx.wait(Time::ns(4));
                    }
                }
                ctx.emit_trace("sum", acc.to_string());
            });
        }
    });
}

#[test]
fn signal_workload_is_bit_identical_across_jobs() {
    assert_bit_identical(|sim| {
        // One driver per signal (well-formed single-driver model) plus
        // a listener; drivers also run timed loops so rounds mix.
        for p in 0..3 {
            let s = sim.signal(format!("s{p}"), 0u32);
            let (sw, sr) = (s.clone(), s.clone());
            sim.spawn(format!("drv{p}"), move |ctx| {
                for i in 1..=10u32 {
                    sw.write(ctx, i * (p as u32 + 1));
                    ctx.wait(Time::ns(5 + p as u64));
                }
            });
            sim.spawn(format!("lst{p}"), move |ctx| {
                for _ in 0..10 {
                    let v = sr.wait_value_change(ctx);
                    ctx.emit_trace("saw", v.to_string());
                }
            });
        }
    });
}

#[test]
fn mixed_primitives_are_bit_identical_across_jobs() {
    assert_bit_identical(|sim| {
        let m = sim.sim_mutex("bus");
        let sem = sim.sim_semaphore("pool", 2);
        let f = sim.fifo::<u32>("log", 8);
        let drain = f.clone();
        for p in 0..4 {
            let m = m.clone();
            let sem = sem.clone();
            let f = f.clone();
            sim.spawn(format!("user{p}"), move |ctx| {
                for round in 0..5u32 {
                    sem.acquire(ctx);
                    m.lock(ctx);
                    ctx.wait(Time::ns(2 + p as u64));
                    f.write(ctx, round * 10 + p as u32);
                    m.unlock(ctx);
                    sem.release(ctx);
                    ctx.wait(Time::ns(3));
                }
            });
        }
        sim.spawn("drain", move |ctx| {
            let mut acc = 0u64;
            for _ in 0..20 {
                acc += u64::from(drain.read(ctx));
            }
            ctx.emit_trace("total", acc.to_string());
        });
    });
}

#[test]
fn timed_events_and_delayed_notifies_are_bit_identical() {
    assert_bit_identical(|sim| {
        let ev = sim.event("tick");
        for p in 0..4 {
            let ev = ev.clone();
            sim.spawn(format!("timer{p}"), move |ctx| {
                for i in 0..8u64 {
                    ctx.wait(Time::ns(1 + (p as u64 + i) % 5));
                    if p == 0 {
                        ev.notify_delayed(Time::ns(2));
                    }
                    ctx.emit_trace("beat", format!("{p}:{i}"));
                }
            });
        }
        let ev2 = ev.clone();
        sim.spawn("listener", move |ctx| {
            for _ in 0..8 {
                ctx.wait_event(&ev2);
                ctx.emit_trace("heard", "tick");
            }
        });
    });
}

proptest! {
    // Randomized shapes: pair count, item count and timing skew all
    // vary; the contract must hold for every determinate instance.
    #[test]
    fn random_fifo_workloads_are_bit_identical(
        pairs in 1usize..5,
        items in 1u32..30,
        delay in 0u64..6,
    ) {
        assert_bit_identical(fifo_pairs(pairs, items, delay));
    }
}

// ---- non-determinate constructs are reported, not raced ----

fn expect_non_determinate(build: impl FnOnce(&mut scperf_kernel::Simulator), needle: &str) {
    let mut sim = SimOptions::new().jobs(4).build();
    build(&mut sim);
    match sim.run() {
        Err(SimError::NonDeterminate { detail }) => {
            assert!(
                detail.contains(needle),
                "expected detail mentioning {needle:?}, got: {detail}"
            );
        }
        other => panic!("expected NonDeterminate, got {other:?}"),
    }
}

#[test]
fn conflicting_signal_writers_are_reported() {
    // The sequential kernel documents last-writer-wins for same-delta
    // signal writes (see signal.rs `last_writer_in_delta_wins`); under
    // parallel evaluation that order-dependence is reported instead.
    expect_non_determinate(
        |sim| {
            let s = sim.signal("s", 0u32);
            let s1 = s.clone();
            let s2 = s.clone();
            sim.spawn("a", move |ctx| s1.write(ctx, 1));
            sim.spawn("b", move |ctx| s2.write(ctx, 2));
        },
        "signal 's'",
    );
}

#[test]
fn conflicting_fifo_readers_are_reported() {
    expect_non_determinate(
        |sim| {
            let f = sim.fifo::<u32>("q", 4);
            let w = f.clone();
            let r1 = f.clone();
            let r2 = f;
            sim.spawn("w", move |ctx| {
                w.write(ctx, 1);
                ctx.wait(Time::ZERO);
            });
            sim.spawn("r1", move |ctx| {
                let _ = r1.read(ctx);
            });
            sim.spawn("r2", move |ctx| {
                let _ = r2.try_read(ctx);
            });
        },
        "fifo 'q'",
    );
}

#[test]
fn immediate_notify_with_waiters_is_reported() {
    expect_non_determinate(
        |sim| {
            let ev = sim.event("now");
            let ev2 = ev.clone();
            sim.spawn("waiter", move |ctx| ctx.wait_event(&ev));
            sim.spawn("notifier", move |_ctx| ev2.notify_immediate());
        },
        "'now'",
    );
}

#[test]
fn same_model_runs_clean_sequentially() {
    // The constructs above are *legal* at jobs = 1 (the sequential
    // kernel executes them in pid order); only parallel evaluation
    // must reject them.
    let mut sim = SimOptions::new().jobs(1).build();
    let s = sim.signal("s", 0u32);
    let s1 = s.clone();
    let s2 = s.clone();
    let sr = s.clone();
    sim.spawn("a", move |ctx| s1.write(ctx, 1));
    sim.spawn("b", move |ctx| s2.write(ctx, 2));
    sim.run().unwrap();
    assert_eq!(sr.read(), 2);
}

#[test]
fn attribution_forces_sequential_fallback_with_identical_results() {
    let build = fifo_pairs(3, 20, 2);
    let run = |jobs: usize| {
        let mut sim = SimOptions::new().jobs(jobs).attribution(true).build();
        build(&mut sim);
        let s = sim.run().unwrap();
        (s, sim.metrics())
    };
    let (s1, _) = run(1);
    let (s8, m8) = run(8);
    assert_eq!(s1, s8);
    // Every evaluate phase fell back (attribution is order-sensitive),
    // and the fallback is counted.
    assert_eq!(m8.counter("kernel.par.rounds"), Some(0));
    assert!(m8.counter("kernel.par.seq_fallbacks").unwrap_or(0) > 0);
}

#[test]
fn parallel_metrics_report_rounds_and_effects() {
    let build = fifo_pairs(4, 30, 1);
    let mut sim = SimOptions::new().jobs(4).build();
    build(&mut sim);
    sim.run().unwrap();
    let m = sim.metrics();
    assert_eq!(m.counter("kernel.par.jobs"), Some(4));
    assert!(m.counter("kernel.par.rounds").unwrap_or(0) > 0);
    let workers = m.counter("kernel.par.workers").unwrap_or(0);
    assert!((2..=4).contains(&workers), "workers = {workers}");
    assert!(m.counter("kernel.par.effects").unwrap_or(0) > 0);
}

#[test]
fn process_panic_is_still_reported_under_parallel_evaluation() {
    let mut sim = SimOptions::new().jobs(4).build();
    sim.spawn("calm", |ctx| ctx.wait(Time::ns(1)));
    sim.spawn("bad", |_ctx| panic!("deliberate test panic"));
    sim.spawn("calm2", |ctx| ctx.wait(Time::ns(1)));
    match sim.run() {
        Err(SimError::ProcessPanic { process, message }) => {
            assert_eq!(process, "bad");
            assert!(message.contains("deliberate"));
        }
        other => panic!("expected ProcessPanic, got {other:?}"),
    }
}
