//! Lost-wakeup regression tests for the scheduler↔process handoff.
//!
//! The direct (park/unpark) handoff replaces the original mutex+condvar
//! run-baton on the hot path. The classic failure mode of such protocols
//! is a *lost wakeup*: the scheduler unparks a process an instant before
//! the process parks, and the process then sleeps forever. Every test
//! here drives a blocking-channel pattern that would hang (and trip the
//! harness timeout) if a wakeup were lost, and runs it under **both**
//! handoff protocols so the condvar fallback stays honest too.

use scperf_kernel::trace::functional_projection;
use scperf_kernel::{HandoffKind, SimOptions, Time};

const KINDS: [HandoffKind; 2] = [HandoffKind::Direct, HandoffKind::CondvarBaton];

/// Consumer blocks on an empty FIFO; the producer only writes after a
/// timed wait, so every read requires a block → timed-wakeup → unblock
/// round trip through the handoff.
#[test]
fn fifo_read_wakes_blocked_consumer() {
    for kind in KINDS {
        let mut sim = SimOptions::new().handoff(kind).build();
        let ch = sim.fifo::<u32>("ch", 1);
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..200u32 {
                ctx.wait(Time::ns(3));
                tx.write(ctx, i);
            }
        });
        let rx = ch;
        sim.spawn("consumer", move |ctx| {
            let mut sum = 0u64;
            for _ in 0..200 {
                sum += u64::from(rx.read(ctx));
            }
            assert_eq!(sum, 199 * 200 / 2);
        });
        let summary = sim.run().expect("no deadlock");
        assert_eq!(summary.end_time, Time::ns(600), "{kind:?}");
    }
}

/// Producer blocks on a *full* FIFO; the consumer drains slowly, so every
/// write requires the symmetric blocked-writer wakeup.
#[test]
fn fifo_write_wakes_blocked_producer() {
    for kind in KINDS {
        let mut sim = SimOptions::new().handoff(kind).build();
        let ch = sim.fifo::<u32>("narrow", 1);
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..100u32 {
                tx.write(ctx, i); // blocks while the slot is occupied
            }
        });
        let rx = ch;
        sim.spawn("consumer", move |ctx| {
            for expected in 0..100u32 {
                ctx.wait(Time::ns(5));
                assert_eq!(rx.read(ctx), expected);
            }
        });
        sim.run().unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
    }
}

/// `try_read` must never block, and a poller alternating `try_read` with
/// timed waits must still observe every item exactly once.
#[test]
fn try_read_polls_without_losing_items() {
    for kind in KINDS {
        let mut sim = SimOptions::new().handoff(kind).build();
        let ch = sim.fifo::<u32>("polled", 2);
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..50u32 {
                ctx.wait(Time::ns(7));
                tx.write(ctx, i);
            }
        });
        let rx = ch;
        sim.spawn("poller", move |ctx| {
            let mut got = Vec::new();
            while got.len() < 50 {
                while let Some(v) = rx.try_read(ctx) {
                    got.push(v);
                }
                if got.len() < 50 {
                    ctx.wait(Time::ns(2));
                }
            }
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        });
        sim.run().unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
    }
}

/// Event delta- and delayed-notification both wake a waiting process; a
/// ping-pong over two events exercises back-to-back handoffs in the same
/// delta cycle.
#[test]
fn event_notification_wakes_waiter() {
    for kind in KINDS {
        let mut sim = SimOptions::new().handoff(kind).build();
        let ping = sim.event("ping");
        let pong = sim.event("pong");
        let (p1, g1) = (ping.clone(), pong.clone());
        // The waiter spawns first: delta notification snapshots the waiter
        // set at notify time, so "b" must already be parked on `ping` when
        // "a" first notifies.
        sim.spawn("b", move |ctx| {
            for _ in 0..100 {
                ctx.wait_event(&p1);
                g1.notify_delayed(Time::ns(1));
            }
        });
        sim.spawn("a", move |ctx| {
            for _ in 0..100 {
                ping.notify_delta();
                ctx.wait_event(&pong);
            }
        });
        let summary = sim.run().unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
        assert_eq!(summary.end_time, Time::ns(100), "{kind:?}");
    }
}

/// A wait far beyond the time wheel's ~68.7 ms span lands in the overflow
/// map; it must still fire, in order, interleaved with near-term waits.
#[test]
fn far_future_wait_crosses_wheel_span() {
    for kind in KINDS {
        let mut sim = SimOptions::new().handoff(kind).build();
        sim.enable_tracing();
        sim.spawn("near", |ctx| {
            for i in 0..4 {
                ctx.wait(Time::ms(10));
                ctx.emit_trace("tick", format!("near{i}"));
            }
        });
        sim.spawn("far", |ctx| {
            ctx.wait(Time::ms(100)); // > 2^36 ps wheel span → overflow path
            ctx.emit_trace("tick", "far");
        });
        let summary = sim.run().expect("runs");
        assert_eq!(summary.end_time, Time::ms(100), "{kind:?}");
        let order: Vec<String> = sim
            .take_trace()
            .into_iter()
            .filter(|r| r.label == "tick")
            .map(|r| r.detail)
            .collect();
        assert_eq!(
            order,
            vec!["near0", "near1", "near2", "near3", "far"],
            "{kind:?}"
        );
    }
}

/// `run_until` may pause the simulation at an arbitrary wall between two
/// timed events; resuming must not drop or reorder pending wakeups.
#[test]
fn run_until_stepping_preserves_pending_wakeups() {
    for kind in KINDS {
        let mut sim = SimOptions::new().handoff(kind).build();
        let ch = sim.fifo::<u32>("ch", 4);
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..10u32 {
                ctx.wait(Time::us(1));
                tx.write(ctx, i);
            }
        });
        let rx = ch;
        sim.spawn("consumer", move |ctx| {
            let mut sum = 0u32;
            for _ in 0..10 {
                sum += rx.read(ctx);
            }
            assert_eq!(sum, 45);
        });
        // Step through in awkward increments, including walls that land
        // between events and exactly on one.
        for limit_ns in [1_500, 3_000, 3_001, 9_999] {
            sim.run_until(Time::ns(limit_ns)).expect("step");
        }
        let summary = sim.run().expect("finish");
        assert_eq!(summary.end_time, Time::us(10), "{kind:?}");
    }
}

/// The two handoff protocols must be observationally identical: same
/// summary, same trace, bit for bit, on a workload that mixes blocking
/// channels, events and timed waits.
#[test]
fn handoff_protocols_produce_identical_traces() {
    fn run(kind: HandoffKind) -> (scperf_kernel::SimSummary, Vec<(String, String, String)>) {
        let mut sim = SimOptions::new().handoff(kind).build();
        sim.enable_tracing();
        let ch = sim.fifo::<u64>("ch", 2);
        let done = sim.event("done");
        let tx = ch.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..64u64 {
                if i % 3 == 0 {
                    ctx.wait(Time::ns(i));
                }
                tx.write(ctx, i.wrapping_mul(2654435761));
            }
        });
        let rx = ch;
        let done_tx = done.clone();
        sim.spawn("consumer", move |ctx| {
            let mut chk = 0u64;
            for _ in 0..64 {
                chk = chk.wrapping_mul(31).wrapping_add(rx.read(ctx));
                ctx.emit_trace("chk", chk.to_string());
            }
            done_tx.notify_delta();
        });
        sim.spawn("watcher", move |ctx| {
            ctx.wait_event(&done);
            ctx.emit_trace("watch", "done");
        });
        let summary = sim.run().expect("runs");
        let trace = functional_projection(&sim.take_trace());
        (summary, trace)
    }

    let (sum_direct, trace_direct) = run(HandoffKind::Direct);
    let (sum_condvar, trace_condvar) = run(HandoffKind::CondvarBaton);
    assert_eq!(sum_direct, sum_condvar);
    assert_eq!(trace_direct, trace_condvar);
}
