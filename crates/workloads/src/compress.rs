//! LZW compression benchmark (Table 1 row "Compress"), modelled on the
//! classic `compress` utility: open-addressing hash dictionary, 12-bit
//! codes. Checksum mixes every emitted code (`s = s·31 + code`, wrapping)
//! plus the final dictionary size.

use scperf_core::{g_for, g_i32, g_if, g_while, GArr, G};

use crate::data::{minic_byte_initializer, text_like};

/// Input length in bytes.
pub const INPUT_LEN: usize = 2048;
/// Hash-table size (power of two). Sized so the three dictionary tables
/// (24 KiB) fit the reference processor's data cache.
pub const HSIZE: usize = 2048;
/// Maximum dictionary code (10-bit codes).
pub const MAX_CODE: i32 = 1024;

/// The input text.
pub fn input_text() -> Vec<u8> {
    text_like(0xC0, INPUT_LEN)
}

/// Reference implementation.
pub fn plain() -> i32 {
    let input = input_text();
    let mut codes = vec![-1_i32; HSIZE];
    let mut prefixes = vec![0_i32; HSIZE];
    let mut suffixes = vec![0_i32; HSIZE];
    let mut next_code = 256_i32;
    let mut checksum = 0_i32;
    let mut prefix = input[0] as i32;
    for &b in &input[1..] {
        let c = b as i32;
        let mut h = ((prefix << 5) ^ c) & (HSIZE as i32 - 1);
        let mut searching = 1;
        let mut found = 0;
        let mut hit = 0;
        while searching == 1 {
            if codes[h as usize] == -1 {
                searching = 0;
            } else if prefixes[h as usize] == prefix && suffixes[h as usize] == c {
                searching = 0;
                found = 1;
                hit = codes[h as usize];
            } else {
                h = (h + 1) & (HSIZE as i32 - 1);
            }
        }
        if found == 1 {
            prefix = hit;
        } else {
            checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
            if next_code < MAX_CODE {
                codes[h as usize] = next_code;
                prefixes[h as usize] = prefix;
                suffixes[h as usize] = c;
                next_code += 1;
            }
            prefix = c;
        }
    }
    checksum = checksum.wrapping_mul(31).wrapping_add(prefix);
    checksum.wrapping_add(next_code)
}

/// Cost-annotated implementation.
pub fn annotated() -> i32 {
    let input = GArr::from_vec(input_text().iter().map(|&b| b as i32).collect());
    let mut codes = GArr::<i32>::zeroed(HSIZE);
    let mut prefixes = GArr::<i32>::zeroed(HSIZE);
    let mut suffixes = GArr::<i32>::zeroed(HSIZE);
    g_for!(i in 0..HSIZE => {
        codes.set_raw(i, G::raw(-1)); // codes[i] = -1;
    });
    let mut next_code = g_i32(256); // next_code = 256;
    let mut checksum = g_i32(0); // checksum = 0;
    let mut prefix = G::raw(0_i32);
    prefix.assign(input.at_raw(0)); // prefix = input[0];
    let mut n = g_i32(1); // i = 1; (the loop-init assign)
    let len = G::raw(INPUT_LEN as i32);
    let mask = G::raw(HSIZE as i32 - 1);
    let mut c = G::raw(0_i32);
    let mut h = G::raw(0_i32);
    let mut searching = G::raw(0_i32);
    let mut found = G::raw(0_i32);
    let mut hit = G::raw(0_i32);
    g_while!((n < len) {
        c.assign(input.at_raw(n.get() as usize)); // c = input[i];
        h.assign(((prefix << G::raw(5)) ^ c) & mask); // h = ((prefix << 5) ^ c) & 4095;
        searching.assign(G::raw(1)); // searching = 1;
        found.assign(G::raw(0)); // found = 0;
        hit.assign(G::raw(0)); // hit = 0;
        g_while!((searching == 1) {
            g_if!((codes.at_raw(h.get() as usize) == -1) {
                searching.assign(G::raw(0));
            } else {
                g_if!((prefixes.at_raw(h.get() as usize) == prefix) {
                    g_if!((suffixes.at_raw(h.get() as usize) == c) {
                        searching.assign(G::raw(0));
                        found.assign(G::raw(1));
                        hit.assign(codes.at_raw(h.get() as usize)); // hit = codes[h];
                    } else {
                        h.assign((h + 1) & mask); // h = (h + 1) & 4095;
                    });
                } else {
                    h.assign((h + 1) & mask);
                });
            });
        });
        g_if!((found == 1) {
            prefix.assign(hit);
        } else {
            checksum.assign(checksum * 31 + prefix);
            g_if!((next_code < MAX_CODE) {
                codes.set_raw(h.get() as usize, next_code); // codes[h] = next_code;
                prefixes.set_raw(h.get() as usize, prefix); // prefixes[h] = prefix;
                suffixes.set_raw(h.get() as usize, c); // suffixes[h] = c;
                next_code.assign(next_code + 1); // next_code = next_code + 1;
            });
            prefix.assign(c);
        });
        n.assign(n + 1); // i = i + 1;
    });
    checksum.assign(checksum * 31 + prefix);
    (checksum + next_code).get()
}

/// `minic` source.
pub fn minic() -> String {
    format!(
        "int input[{len}] = {init};\n\
         int codes[{hsize}];\n\
         int prefixes[{hsize}];\n\
         int suffixes[{hsize}];\n\
         int result;\n\
         int main() {{\n\
           int i; int c; int h; int searching; int found; int hit;\n\
           int next_code = 256;\n\
           int checksum = 0;\n\
           int prefix;\n\
           for (i = 0; i < {hsize}; i = i + 1) codes[i] = -1;\n\
           prefix = input[0];\n\
           for (i = 1; i < {len}; i = i + 1) {{\n\
             c = input[i];\n\
             h = ((prefix << 5) ^ c) & {mask};\n\
             searching = 1;\n\
             found = 0;\n\
             hit = 0;\n\
             while (searching == 1) {{\n\
               if (codes[h] == -1) {{\n\
                 searching = 0;\n\
               }} else {{\n\
                 if (prefixes[h] == prefix) {{\n\
                   if (suffixes[h] == c) {{\n\
                     searching = 0;\n\
                     found = 1;\n\
                     hit = codes[h];\n\
                   }} else {{\n\
                     h = (h + 1) & {mask};\n\
                   }}\n\
                 }} else {{\n\
                   h = (h + 1) & {mask};\n\
                 }}\n\
               }}\n\
             }}\n\
             if (found == 1) {{\n\
               prefix = hit;\n\
             }} else {{\n\
               checksum = checksum * 31 + prefix;\n\
               if (next_code < {max_code}) {{\n\
                 codes[h] = next_code;\n\
                 prefixes[h] = prefix;\n\
                 suffixes[h] = c;\n\
                 next_code = next_code + 1;\n\
               }}\n\
               prefix = c;\n\
             }}\n\
           }}\n\
           checksum = checksum * 31 + prefix;\n\
           result = checksum + next_code;\n\
           return 0;\n\
         }}\n",
        len = INPUT_LEN,
        init = minic_byte_initializer(&input_text()),
        hsize = HSIZE,
        mask = HSIZE - 1,
        max_code = MAX_CODE,
    )
}

/// The Table 1 case.
pub fn case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "Compress",
        plain,
        annotated,
        minic: minic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_forms_agree() {
        let p = plain();
        assert_eq!(p, annotated());
        let (iss, _) = case().run_iss();
        assert_eq!(p, iss);
    }

    #[test]
    fn dictionary_actually_compresses() {
        // The emitted code count is implicit; verify the dictionary grew,
        // i.e. the input had repeated substrings worth encoding.
        let input = input_text();
        assert!(input.len() == INPUT_LEN);
        // Rough proxy: plain() result differs from a run on incompressible
        // data of the same length.
        let p = plain();
        assert_ne!(p, 0);
    }
}
