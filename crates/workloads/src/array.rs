//! Array-operations benchmark (Table 1 row "Array"): three element-wise
//! vector kernels plus a reduction over 256-element vectors.

use scperf_core::{g_for, g_i32, GArr, G};

use crate::data::{minic_initializer, signed_values};

/// Vector length.
pub const N: usize = 256;

/// First operand vector.
pub fn vec_a() -> Vec<i32> {
    signed_values(0xA1, N, 4096)
}

/// Second operand vector.
pub fn vec_b() -> Vec<i32> {
    signed_values(0xA2, N, 4096)
}

/// Reference implementation.
pub fn plain() -> i32 {
    let a = vec_a();
    let b = vec_b();
    let mut c = vec![0_i32; N];
    let mut d = vec![0_i32; N];
    for i in 0..N {
        c[i] = a[i].wrapping_mul(b[i]) >> 6;
    }
    for i in 0..N {
        d[i] = c[i].wrapping_add(a[i]).wrapping_sub(b[i]);
    }
    let mut s = 0_i32;
    for i in 0..N {
        s = s.wrapping_add(d[i] ^ (c[i] & b[i]));
    }
    s
}

/// Cost-annotated implementation (mirrors the minic source).
pub fn annotated() -> i32 {
    let a = GArr::from_vec(vec_a());
    let b = GArr::from_vec(vec_b());
    let mut c = GArr::<i32>::zeroed(N);
    let mut d = GArr::<i32>::zeroed(N);
    g_for!(i in 0..N => {
        // c[i] = (a[i] * b[i]) >> 6;
        c.set_raw(i, (a.at_raw(i) * b.at_raw(i)) >> G::raw(6));
    });
    g_for!(i in 0..N => {
        // d[i] = c[i] + a[i] - b[i];
        d.set_raw(i, c.at_raw(i) + a.at_raw(i) - b.at_raw(i));
    });
    let mut s = g_i32(0); // s = 0;
    g_for!(i in 0..N => {
        // s = s + (d[i] ^ (c[i] & b[i]));
        s.assign(s + (d.at_raw(i) ^ (c.at_raw(i) & b.at_raw(i))));
    });
    s.get()
}

/// `minic` source.
pub fn minic() -> String {
    format!(
        "int a[{n}] = {ia};\n\
         int b[{n}] = {ib};\n\
         int c[{n}];\n\
         int d[{n}];\n\
         int result;\n\
         int main() {{\n\
           int i; int s = 0;\n\
           for (i = 0; i < {n}; i = i + 1) c[i] = (a[i] * b[i]) >> 6;\n\
           for (i = 0; i < {n}; i = i + 1) d[i] = c[i] + a[i] - b[i];\n\
           for (i = 0; i < {n}; i = i + 1) s = s + (d[i] ^ (c[i] & b[i]));\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        n = N,
        ia = minic_initializer(&vec_a()),
        ib = minic_initializer(&vec_b()),
    )
}

/// The Table 1 case.
pub fn case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "Array",
        plain,
        annotated,
        minic: minic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_forms_agree() {
        let p = plain();
        assert_eq!(p, annotated());
        let (iss, _) = case().run_iss();
        assert_eq!(p, iss);
    }
}
