//! FIR filter benchmark (Table 1 row "FIR", Table 2 HW rows, Figure 4).
//!
//! A 64-tap direct-form FIR over 256 samples in Q12 fixed point:
//! `y[n] = (Σ_k h[k]·x[n+k]) >> 12`, checksum = Σ `y[n]` (wrapping).

use scperf_core::{g_for, g_i32, g_loop, GArr, G};

use crate::data::{minic_initializer, signed_values};

/// Number of filter taps.
pub const TAPS: usize = 64;
/// Number of output samples.
pub const SAMPLES: usize = 256;

/// Input samples (length `SAMPLES + TAPS`).
pub fn input_samples() -> Vec<i32> {
    signed_values(0xF1, SAMPLES + TAPS, 2048)
}

/// Q12 coefficients (length `TAPS`).
pub fn coefficients() -> Vec<i32> {
    signed_values(0xF2, TAPS, 1024)
}

/// Reference implementation.
pub fn plain() -> i32 {
    let x = input_samples();
    let h = coefficients();
    let mut checksum = 0_i32;
    for n in 0..SAMPLES {
        let mut acc = 0_i32;
        for k in 0..TAPS {
            acc = acc.wrapping_add(h[k].wrapping_mul(x[n + k]));
        }
        checksum = checksum.wrapping_add(acc >> 12);
    }
    checksum
}

/// Cost-annotated implementation (identical algorithm and results,
/// mirroring the minic source statement by statement).
pub fn annotated() -> i32 {
    let x = GArr::from_vec(input_samples());
    let h = GArr::from_vec(coefficients());
    let mut checksum = g_i32(0); // checksum = 0;
    let mut acc = G::raw(0_i32);
    // The outer sample loop is fully straight-line (no data-dependent
    // control flow), so it is a memoizable segment site: on sequential
    // resources with integer cost tables only the first sample charges
    // per-op; the remaining SAMPLES-1 replay the recorded delta.
    g_loop!(n in 0..SAMPLES => {
        acc.assign(G::raw(0)); // acc = 0;
        g_for!(k in 0..TAPS => {
            // acc = acc + h[k] * x[n + k];
            let idx = G::raw(n) + G::raw(k);
            acc.assign(acc + h.at_raw(k) * x.at(idx));
        });
        // checksum = checksum + (acc >> 12);
        checksum.assign(checksum + (acc >> G::raw(12)));
    });
    checksum.get()
}

/// One output sample as a standalone annotated kernel: the hardware
/// segment of Tables 2/4 and Figure 4 (a FIR pipeline computes one output
/// per activation).
pub fn annotated_one_sample(n: usize) -> i32 {
    let x = GArr::from_vec(input_samples());
    let h = GArr::from_vec(coefficients());
    let mut acc = g_i32(0);
    g_for!(k in 0..TAPS => {
        let idx = G::raw(n) + G::raw(k);
        acc.assign(acc + h.at_raw(k) * x.at(idx));
    });
    (acc >> G::raw(12)).get()
}

/// `minic` source computing the same checksum into `result`.
pub fn minic() -> String {
    format!(
        "int x[{nx}] = {xs};\n\
         int h[{nh}] = {hs};\n\
         int result;\n\
         int main() {{\n\
           int n; int k; int acc; int checksum = 0;\n\
           for (n = 0; n < {samples}; n = n + 1) {{\n\
             acc = 0;\n\
             for (k = 0; k < {taps}; k = k + 1) {{\n\
               acc = acc + h[k] * x[n + k];\n\
             }}\n\
             checksum = checksum + (acc >> 12);\n\
           }}\n\
           result = checksum;\n\
           return 0;\n\
         }}\n",
        nx = SAMPLES + TAPS,
        nh = TAPS,
        xs = minic_initializer(&input_samples()),
        hs = minic_initializer(&coefficients()),
        samples = SAMPLES,
        taps = TAPS,
    )
}

/// The Table 1 case.
pub fn case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "FIR",
        plain,
        annotated,
        minic: minic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_forms_agree() {
        let p = plain();
        assert_eq!(p, annotated());
        let (iss, stats) = case().run_iss();
        assert_eq!(p, iss);
        assert!(stats.instructions > 10_000);
    }

    #[test]
    fn one_sample_matches_full_filter() {
        let x = input_samples();
        let h = coefficients();
        let mut acc = 0_i32;
        for k in 0..TAPS {
            acc = acc.wrapping_add(h[k].wrapping_mul(x[5 + k]));
        }
        assert_eq!(annotated_one_sample(5), acc >> 12);
    }
}
