//! # scperf-workloads — the DATE 2004 evaluation workloads
//!
//! Every benchmark of the paper's §5, each in **three matched forms** that
//! must produce bit-identical results:
//!
//! 1. plain Rust (the reference result and the untimed-simulation
//!    baseline),
//! 2. annotated with the `scperf-core` estimation types (the library
//!    path), and
//! 3. `minic` source compiled to the `scperf-iss` reference processor (the
//!    ISS path).
//!
//! | Paper artifact | Module |
//! |----------------|--------|
//! | Table 1 rows FIR / Compress / Quick sort / Bubble / Fibonacci / Array | [`fir`], [`compress`], [`sort`], [`fibonacci`], [`mod@array`] |
//! | Table 2 HW benchmarks FIR and Euler | [`fir`], [`euler`] |
//! | Tables 3 & 4 GSM-like vocoder (5 concurrent processes) | [`vocoder`] |
//! | Cost-table calibration probes (§5 "functions specifically developed for this purpose") | [`probes`], [`calibration`] |

#![warn(missing_docs)]

pub mod array;
pub mod calibration;
pub mod case;
pub mod compress;
pub mod data;
pub mod euler;
pub mod fibonacci;
pub mod fir;
pub mod probes;
pub mod sort;
pub mod vocoder;

pub use case::BenchCase;

/// The six sequential benchmarks of Table 1, in the paper's row order.
pub fn table1_cases() -> Vec<BenchCase> {
    vec![
        fir::case(),
        compress::case(),
        sort::qsort_case(),
        sort::bubble_case(),
        fibonacci::case(),
        array::case(),
    ]
}
