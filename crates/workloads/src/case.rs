//! The uniform three-form benchmark interface used by the Table 1/3
//! harnesses.

use std::sync::{Arc, Mutex};

use scperf_core::{CostTable, EstHotStats, MemoMode, Platform, ProgramSet, Report, SimConfig};
use scperf_kernel::Time;

/// One sequential benchmark in the three matched forms the experiments
/// need:
///
/// * `plain` — ordinary Rust, the reference result and the "original
///   SystemC specification" timing baseline;
/// * `annotated` — the same algorithm written against the `scperf-core`
///   annotated types (charges costs when run inside a
///   [`scperf_core::PerfModel`] process, behaves exactly like `plain`
///   otherwise);
/// * `minic` — the same algorithm in `minic` source, compiled and executed
///   on the reference ISS. The program must leave its checksum in a global
///   named `result`.
///
/// All three forms must produce the same checksum on the same embedded
/// input data.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Benchmark name, matching the paper's Table 1 rows where possible.
    pub name: &'static str,
    /// Reference implementation.
    pub plain: fn() -> i32,
    /// Cost-annotated implementation.
    pub annotated: fn() -> i32,
    /// `minic` source (global `int result;` holds the checksum).
    pub minic: String,
}

impl BenchCase {
    /// Compiles and runs the minic form on a fresh cycle-accurate ISS
    /// (pipelined model, 4 KiB I/D caches — the Table 1/3 reference
    /// configuration), returning `(checksum, stats)`.
    ///
    /// # Panics
    ///
    /// Panics if the program fails to compile or run — benchmark sources
    /// are fixtures, so failure is a bug.
    pub fn run_iss(&self) -> (i32, scperf_iss::RunStats) {
        let compiled = scperf_iss::minic::compile(&self.minic)
            .unwrap_or_else(|e| panic!("{}: minic compile error: {e}", self.name));
        let mut m = reference_machine();
        m.load(&compiled.program);
        let stats = m
            .run_pipelined(8_000_000_000)
            .unwrap_or_else(|e| panic!("{}: ISS run failed: {e}", self.name));
        (m.read_word(compiled.global("result")), stats)
    }
}

/// Runs `body` as the single analyzed process of one session on a
/// sequential RISC-SW resource under the given site-memoization mode,
/// optionally warm-started from a previously harvested [`ProgramSet`].
/// Returns the body's checksum, the report, the hot-path counters and
/// the program set harvested from this run.
///
/// This is the harness the memoized Table 1 forms are compared under:
/// [`MemoMode::Off`], [`MemoMode::Replay`] and [`MemoMode::Verify`]
/// must produce bit-identical reports and checksums.
pub fn run_memoized(
    memo: MemoMode,
    warm: Option<Arc<ProgramSet>>,
    body: fn() -> i32,
) -> (i32, Report, EstHotStats, ProgramSet) {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 25.0);
    let mut config = SimConfig::new().platform(platform).site_memo(memo);
    if let Some(set) = warm {
        config = config.program_set(set);
    }
    let mut session = config.build();
    let out = Arc::new(Mutex::new(0_i32));
    let slot = Arc::clone(&out);
    session.spawn("bench", cpu, move |_ctx| {
        *slot.lock().unwrap() = body();
    });
    session.run().expect("bench session runs");
    let checksum = *out.lock().unwrap();
    (
        checksum,
        session.report(),
        session.model().hot_stats(),
        session.programs(),
    )
}

/// The reference-ISS configuration shared by every experiment: the
/// cycle-stepped pipeline model with an 8 KiB instruction cache and a
/// 32 KiB data cache (an ARM926/OpenRISC-class memory system).
pub fn reference_machine() -> scperf_iss::Machine {
    let mut m = scperf_iss::Machine::new(1 << 22);
    m.enable_icache(scperf_iss::CacheConfig {
        lines: 512,
        line_bytes: 16,
        miss_penalty: 10,
    });
    m.enable_dcache(scperf_iss::CacheConfig {
        lines: 2048,
        line_bytes: 16,
        miss_penalty: 10,
    });
    m
}
