//! The concurrent vocoder model: five analyzed processes connected by
//! FIFO channels, plus an environment source and sink.
//!
//! This is the system-level specification the paper's Table 3 measures:
//! the sequential ETSI code "divided in the 5 concurrent processes".

use std::sync::Arc;

use scperf_core::{GArr, PerfModel, Replay, ResourceId, G};
use scperf_kernel::Simulator;
use scperf_sync::Mutex;

use super::{checksum_acc, speech_frames, stages, MAX_LAG, ORDER};

/// The message flowing through the pipeline: each stage fills in its
/// fields and forwards the frame.
#[derive(Debug, Clone, Default)]
pub struct FrameMsg {
    /// Input speech (160 samples).
    pub speech: Vec<i32>,
    /// LPC coefficients (10, Q12) — set by LSP estimation.
    pub lpc: Vec<i32>,
    /// Interpolated coefficients (40) — set by LPC interpolation.
    pub aq: Vec<i32>,
    /// Residual (160) — set by ACB search.
    pub res: Vec<i32>,
    /// Adaptive-codebook contribution (160) — set by ACB search.
    pub acb: Vec<i32>,
    /// Complete excitation (160) — set by ICB search.
    pub exc: Vec<i32>,
    /// Decoded speech (160) — set by post-processing.
    pub out: Vec<i32>,
}

/// The architectural mapping of the five processes.
#[derive(Debug, Clone, Copy)]
pub struct VocoderMapping {
    /// Resource of "LSP estim.".
    pub lsp: ResourceId,
    /// Resource of "LPC int.".
    pub lpc_int: ResourceId,
    /// Resource of "ACB sear.".
    pub acb: ResourceId,
    /// Resource of "ICB sear.".
    pub icb: ResourceId,
    /// Resource of "Post Proc.".
    pub post: ResourceId,
}

impl VocoderMapping {
    /// Maps all five processes to one resource (the Table 3 setup: all SW
    /// on one processor).
    pub fn all_on(r: ResourceId) -> VocoderMapping {
        VocoderMapping {
            lsp: r,
            lpc_int: r,
            acb: r,
            icb: r,
            post: r,
        }
    }
}

/// The sink-side result, filled when the simulation completes.
pub type OutputChecksum = Arc<Mutex<Option<i32>>>;

/// Per-stage checksums exported by the analyzed processes after their last
/// frame (same folding as the reference pipeline and the ISS stage
/// programs).
pub type StageChecksums = Arc<Mutex<[Option<i32>; 5]>>;

/// Handles to everything the vocoder model reports back after `sim.run()`.
#[derive(Debug, Clone)]
pub struct VocoderHandles {
    /// Final decoded-output checksum (from the sink).
    pub output: OutputChecksum,
    /// Per-stage checksums, in pipeline order.
    pub stages: StageChecksums,
}

/// The five process names, in pipeline order, exactly as the paper's
/// Table 3 rows.
pub const STAGE_NAMES: [&str; 5] = [
    "LSP estim.",
    "LPC int.",
    "ACB sear.",
    "ICB sear.",
    "Post Proc.",
];

/// An optional recorded per-segment cycle trace for one stage, as
/// handed out by a [`scperf_core::Recorder`] after a run with
/// segment-cost recording enabled.
pub type StageTrace = Option<Replay>;

/// Elaborates the full vocoder model into `sim`/`model`: an environment
/// source feeding `nframes` frames, the five analyzed stage processes
/// connected by FIFOs, and an environment sink. Returns a handle that
/// holds the output checksum after `sim.run()`.
pub fn build(
    sim: &mut Simulator,
    model: &PerfModel,
    mapping: VocoderMapping,
    nframes: usize,
) -> VocoderHandles {
    build_hybrid(sim, model, mapping, nframes, [None, None, None, None, None])
}

/// Like [`build`], but stages with a recorded segment-cost trace run in
/// *replay* mode: the stage executes its plain (un-annotated)
/// implementation — so data still flows and checksums still hold — while
/// every segment's cycles are popped from the trace instead of being
/// re-estimated operation by operation. Timing is bit-identical to the
/// live run the trace was recorded from; host time drops because all
/// operator-overloading overhead disappears.
///
/// This is the workhorse of the design-space-exploration memoization
/// cache ([`scperf_dse`](../../../scperf_dse/index.html)): a stage's
/// per-segment cycles depend only on its own code, input data and the
/// cost model of the resource it is mapped to — not on where the *other*
/// stages are mapped — so a trace recorded once per `(stage, resource
/// cost model, nframes)` is valid across every mapping that shares them.
pub fn build_hybrid(
    sim: &mut Simulator,
    model: &PerfModel,
    mapping: VocoderMapping,
    nframes: usize,
    replays: [StageTrace; 5],
) -> VocoderHandles {
    let ch_in = model.fifo::<FrameMsg>(sim, "speech_in", 2);
    let ch_lsp = model.fifo::<FrameMsg>(sim, "lsp_out", 2);
    let ch_lpc = model.fifo::<FrameMsg>(sim, "lpcint_out", 2);
    let ch_acb = model.fifo::<FrameMsg>(sim, "acb_out", 2);
    let ch_icb = model.fifo::<FrameMsg>(sim, "icb_out", 2);
    let ch_out = model.fifo::<FrameMsg>(sim, "speech_out", 2);

    // Environment source: synthesizes the input frames (not analyzed).
    {
        let tx = ch_in.clone();
        sim.spawn("source", move |ctx| {
            for frame in speech_frames(nframes) {
                tx.write(
                    ctx,
                    FrameMsg {
                        speech: frame,
                        ..FrameMsg::default()
                    },
                );
            }
        });
    }

    let stage_chks: StageChecksums = Arc::new(Mutex::new([None; 5]));
    let [rp_lsp, rp_lpc, rp_acb, rp_icb, rp_post] = replays;

    // LSP estimation.
    {
        let rx = ch_in.clone();
        let tx = ch_lsp.clone();
        let chks = Arc::clone(&stage_chks);
        match rp_lsp {
            Some(trace) => {
                model.spawn_replaying(sim, STAGE_NAMES[0], mapping.lsp, trace, move |ctx| {
                    let mut chk = 0_i32;
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        msg.lpc = stages::lsp_plain(&msg.speech);
                        chk = checksum_acc(chk, &msg.lpc);
                        tx.write(ctx, msg);
                    }
                    chks.lock()[0] = Some(chk);
                });
            }
            None => {
                model.spawn(sim, STAGE_NAMES[0], mapping.lsp, move |ctx| {
                    let mut chk = G::raw(0_i32);
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        let speech = GArr::from_slice(&msg.speech);
                        msg.lpc = stages::lsp_annotated(&speech, &mut chk).into_vec();
                        tx.write(ctx, msg);
                    }
                    chks.lock()[0] = Some(chk.get());
                });
            }
        }
    }

    // LPC interpolation.
    {
        let rx = ch_lsp.clone();
        let tx = ch_lpc.clone();
        let chks = Arc::clone(&stage_chks);
        match rp_lpc {
            Some(trace) => {
                model.spawn_replaying(sim, STAGE_NAMES[1], mapping.lpc_int, trace, move |ctx| {
                    let mut state = stages::LpcIntState::new();
                    let mut chk = 0_i32;
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        msg.aq = stages::lpcint_plain(&mut state, &msg.lpc);
                        chk = checksum_acc(chk, &msg.aq);
                        tx.write(ctx, msg);
                    }
                    chks.lock()[1] = Some(chk);
                });
            }
            None => {
                model.spawn(sim, STAGE_NAMES[1], mapping.lpc_int, move |ctx| {
                    let mut prev = GArr::<i32>::zeroed(ORDER);
                    let mut chk = G::raw(0_i32);
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        let lpc = GArr::from_slice(&msg.lpc);
                        msg.aq = stages::lpcint_annotated(&mut prev, &lpc, &mut chk).into_vec();
                        tx.write(ctx, msg);
                    }
                    chks.lock()[1] = Some(chk.get());
                });
            }
        }
    }

    // Adaptive-codebook search.
    {
        let rx = ch_lpc.clone();
        let tx = ch_acb.clone();
        let chks = Arc::clone(&stage_chks);
        match rp_acb {
            Some(trace) => {
                model.spawn_replaying(sim, STAGE_NAMES[2], mapping.acb, trace, move |ctx| {
                    let mut state = stages::AcbState::new();
                    let mut chk = 0_i32;
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        let (res, acb, lags, gains) =
                            stages::acb_plain(&mut state, &msg.speech, &msg.aq);
                        msg.res = res;
                        msg.acb = acb;
                        chk = checksum_acc(checksum_acc(chk, &lags), &gains);
                        tx.write(ctx, msg);
                    }
                    chks.lock()[2] = Some(chk);
                });
            }
            None => {
                model.spawn(sim, STAGE_NAMES[2], mapping.acb, move |ctx| {
                    let mut hist = GArr::<i32>::zeroed(MAX_LAG);
                    let mut chk = G::raw(0_i32);
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        let speech = GArr::from_slice(&msg.speech);
                        let aq = GArr::from_slice(&msg.aq);
                        let (res, acb, _lags, _gains) =
                            stages::acb_annotated(&mut hist, &speech, &aq, &mut chk);
                        msg.res = res.into_vec();
                        msg.acb = acb.into_vec();
                        tx.write(ctx, msg);
                    }
                    chks.lock()[2] = Some(chk.get());
                });
            }
        }
    }

    // Innovative-codebook search.
    {
        let rx = ch_acb.clone();
        let tx = ch_icb.clone();
        let chks = Arc::clone(&stage_chks);
        match rp_icb {
            Some(trace) => {
                model.spawn_replaying(sim, STAGE_NAMES[3], mapping.icb, trace, move |ctx| {
                    let mut chk = 0_i32;
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        msg.exc = stages::icb_plain(&msg.res, &msg.acb);
                        chk = checksum_acc(chk, &msg.exc);
                        tx.write(ctx, msg);
                    }
                    chks.lock()[3] = Some(chk);
                });
            }
            None => {
                model.spawn(sim, STAGE_NAMES[3], mapping.icb, move |ctx| {
                    let mut chk = G::raw(0_i32);
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        let res = GArr::from_slice(&msg.res);
                        let acb = GArr::from_slice(&msg.acb);
                        msg.exc = stages::icb_annotated(&res, &acb, &mut chk).into_vec();
                        tx.write(ctx, msg);
                    }
                    chks.lock()[3] = Some(chk.get());
                });
            }
        }
    }

    // Post-processing.
    {
        let rx = ch_icb.clone();
        let tx = ch_out.clone();
        let chks = Arc::clone(&stage_chks);
        match rp_post {
            Some(trace) => {
                model.spawn_replaying(sim, STAGE_NAMES[4], mapping.post, trace, move |ctx| {
                    let mut state = stages::PostState::new();
                    let mut chk = 0_i32;
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        msg.out = stages::post_plain(&mut state, &msg.aq, &msg.exc);
                        chk = checksum_acc(chk, &msg.out);
                        tx.write(ctx, msg);
                    }
                    chks.lock()[4] = Some(chk);
                });
            }
            None => {
                model.spawn(sim, STAGE_NAMES[4], mapping.post, move |ctx| {
                    let mut synth_hist = GArr::<i32>::zeroed(ORDER);
                    let mut deemph = G::raw(0_i32);
                    let mut chk = G::raw(0_i32);
                    for _ in 0..nframes {
                        let mut msg = rx.read(ctx);
                        let aq = GArr::from_slice(&msg.aq);
                        let exc = GArr::from_slice(&msg.exc);
                        msg.out = stages::post_annotated(
                            &mut synth_hist,
                            &mut deemph,
                            &aq,
                            &exc,
                            &mut chk,
                        )
                        .into_vec();
                        tx.write(ctx, msg);
                    }
                    chks.lock()[4] = Some(chk.get());
                });
            }
        }
    }

    // Environment sink: accumulates the output checksum.
    let result: OutputChecksum = Arc::new(Mutex::new(None));
    {
        let result = Arc::clone(&result);
        let rx = ch_out.clone();
        sim.spawn("sink", move |ctx| {
            let mut checksum = 0_i32;
            for _ in 0..nframes {
                let msg = rx.read(ctx);
                checksum = checksum_acc(checksum, &msg.out);
            }
            *result.lock() = Some(checksum);
        });
    }
    VocoderHandles {
        output: result,
        stages: stage_chks,
    }
}

/// Elaborates the *plain* (un-annotated) vocoder into `sim`: the same five
/// processes and channels built directly on the kernel with the reference
/// stage implementations. This is the "original SystemC specification"
/// whose host simulation time Table 3's overhead column compares against.
pub fn build_plain(sim: &mut Simulator, nframes: usize) -> OutputChecksum {
    let ch_in = sim.fifo::<FrameMsg>("speech_in", 2);
    let ch_lsp = sim.fifo::<FrameMsg>("lsp_out", 2);
    let ch_lpc = sim.fifo::<FrameMsg>("lpcint_out", 2);
    let ch_acb = sim.fifo::<FrameMsg>("acb_out", 2);
    let ch_icb = sim.fifo::<FrameMsg>("icb_out", 2);
    let ch_out = sim.fifo::<FrameMsg>("speech_out", 2);

    {
        let tx = ch_in.clone();
        sim.spawn("source", move |ctx| {
            for frame in speech_frames(nframes) {
                tx.write(
                    ctx,
                    FrameMsg {
                        speech: frame,
                        ..FrameMsg::default()
                    },
                );
            }
        });
    }
    {
        let (rx, tx) = (ch_in.clone(), ch_lsp.clone());
        sim.spawn(STAGE_NAMES[0], move |ctx| {
            for _ in 0..nframes {
                let mut msg = rx.read(ctx);
                msg.lpc = stages::lsp_plain(&msg.speech);
                tx.write(ctx, msg);
            }
        });
    }
    {
        let (rx, tx) = (ch_lsp.clone(), ch_lpc.clone());
        sim.spawn(STAGE_NAMES[1], move |ctx| {
            let mut state = stages::LpcIntState::new();
            for _ in 0..nframes {
                let mut msg = rx.read(ctx);
                msg.aq = stages::lpcint_plain(&mut state, &msg.lpc);
                tx.write(ctx, msg);
            }
        });
    }
    {
        let (rx, tx) = (ch_lpc.clone(), ch_acb.clone());
        sim.spawn(STAGE_NAMES[2], move |ctx| {
            let mut state = stages::AcbState::new();
            for _ in 0..nframes {
                let mut msg = rx.read(ctx);
                let (res, acb, _lags, _gains) = stages::acb_plain(&mut state, &msg.speech, &msg.aq);
                msg.res = res;
                msg.acb = acb;
                tx.write(ctx, msg);
            }
        });
    }
    {
        let (rx, tx) = (ch_acb.clone(), ch_icb.clone());
        sim.spawn(STAGE_NAMES[3], move |ctx| {
            for _ in 0..nframes {
                let mut msg = rx.read(ctx);
                msg.exc = stages::icb_plain(&msg.res, &msg.acb);
                tx.write(ctx, msg);
            }
        });
    }
    {
        let (rx, tx) = (ch_icb.clone(), ch_out.clone());
        sim.spawn(STAGE_NAMES[4], move |ctx| {
            let mut state = stages::PostState::new();
            for _ in 0..nframes {
                let mut msg = rx.read(ctx);
                msg.out = stages::post_plain(&mut state, &msg.aq, &msg.exc);
                tx.write(ctx, msg);
            }
        });
    }
    let result: OutputChecksum = Arc::new(Mutex::new(None));
    {
        let result = Arc::clone(&result);
        let rx = ch_out.clone();
        sim.spawn("sink", move |ctx| {
            let mut checksum = 0_i32;
            for _ in 0..nframes {
                let msg = rx.read(ctx);
                checksum = checksum_acc(checksum, &msg.out);
            }
            *result.lock() = Some(checksum);
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_core::{CostTable, Mode, Platform};
    use scperf_kernel::Time;

    #[test]
    fn plain_pipeline_matches_reference() {
        let nframes = 4;
        let reference = crate::vocoder::run_reference(nframes);
        let mut sim = Simulator::new();
        let result = build_plain(&mut sim, nframes);
        let summary = sim.run().unwrap();
        assert_eq!(result.lock().unwrap(), reference.checksums[4]);
        // Untimed: everything happens in delta cycles at t = 0.
        assert_eq!(summary.end_time, Time::ZERO);
    }

    #[test]
    fn pipeline_matches_reference_and_is_timed() {
        let nframes = 4;
        let reference = crate::vocoder::run_reference(nframes);

        let mut platform = Platform::new();
        let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let handles = build(&mut sim, &model, VocoderMapping::all_on(cpu), nframes);
        let summary = sim.run().unwrap();

        assert_eq!(
            handles.output.lock().expect("sink finished"),
            reference.checksums[4],
            "strict-timed pipeline output differs from reference"
        );
        let stage_chks = *handles.stages.lock();
        for (i, chk) in stage_chks.iter().enumerate() {
            assert_eq!(
                chk.expect("stage finished"),
                reference.checksums[i],
                "stage {} checksum differs",
                STAGE_NAMES[i]
            );
        }
        assert!(summary.end_time > Time::ZERO);

        let report = model.report();
        for name in STAGE_NAMES {
            let p = report
                .process(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(p.total_cycles > 0.0, "{name} has no estimate");
            assert!(p.rtos_time > Time::ZERO, "{name} charged no RTOS time");
        }
        // All five share one CPU: busy time must not exceed end time.
        assert!(report.resources[0].busy_time <= summary.end_time);
    }

    #[test]
    fn untimed_and_timed_agree_functionally() {
        let nframes = 3;
        let run = |mode: Mode| -> i32 {
            let mut platform = Platform::new();
            let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
            let mut sim = Simulator::new();
            let model = PerfModel::new(platform, mode);
            let handles = build(&mut sim, &model, VocoderMapping::all_on(cpu), nframes);
            sim.run().unwrap();
            let out = handles.output.lock().expect("sink finished");
            out
        };
        assert_eq!(run(Mode::EstimateOnly), run(Mode::StrictTimed));
    }

    #[test]
    fn hybrid_replay_matches_live_run_bit_exactly() {
        let nframes = 3;
        let reference = crate::vocoder::run_reference(nframes);
        let build_platform = || {
            let mut platform = Platform::new();
            let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
            (platform, cpu)
        };

        // Live run with trace recording on.
        let (platform, cpu) = build_platform();
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let recorder = model.recorder();
        let live = build(&mut sim, &model, VocoderMapping::all_on(cpu), nframes);
        let live_end = sim.run().unwrap().end_time;
        let live_report = model.report();
        let traces: Vec<Replay> = STAGE_NAMES
            .iter()
            .map(|n| recorder.replay(n).unwrap())
            .collect();
        // One trace entry per read node + write node per frame, plus exit.
        assert!(traces.iter().all(|t| t.len() == 2 * nframes + 1));

        // Replay run: all five stages replayed from the recorded traces.
        let (platform, cpu) = build_platform();
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let replays: [StageTrace; 5] = std::array::from_fn(|i| Some(traces[i].clone()));
        let replayed = build_hybrid(
            &mut sim,
            &model,
            VocoderMapping::all_on(cpu),
            nframes,
            replays,
        );
        let replay_end = sim.run().unwrap().end_time;

        assert_eq!(replay_end, live_end, "replay must be bit-identical");
        assert_eq!(*replayed.stages.lock(), *live.stages.lock());
        assert_eq!(
            replayed.output.lock().unwrap(),
            reference.checksums[4],
            "replayed pipeline must still produce correct data"
        );
        let replay_report = model.report();
        for name in STAGE_NAMES {
            assert_eq!(
                replay_report.process(name).unwrap().total_cycles,
                live_report.process(name).unwrap().total_cycles,
                "{name} cycles differ under replay"
            );
        }
    }

    #[test]
    fn post_on_hw_still_matches() {
        let nframes = 3;
        let reference = crate::vocoder::run_reference(nframes);
        let mut platform = Platform::new();
        let cpu = platform.sequential("cpu0", Time::ns(10), CostTable::risc_sw(), 100.0);
        let hw = platform.parallel("post_asic", Time::ns(10), CostTable::asic_hw(), 0.0);
        let mut mapping = VocoderMapping::all_on(cpu);
        mapping.post = hw;
        let mut sim = Simulator::new();
        let model = PerfModel::new(platform, Mode::StrictTimed);
        let handles = build(&mut sim, &model, mapping, nframes);
        sim.run().unwrap();
        assert_eq!(handles.output.lock().unwrap(), reference.checksums[4]);
    }
}
