//! GSM-like vocoder case study (Tables 3 and 4).
//!
//! The paper evaluates its library on "an ETSI standard, the EN vocoder
//! for GSM applications", split into the five concurrent processes of
//! Table 3: *LSP estim.*, *LPC int.*, *ACB sear.*, *ICB sear.* and *Post
//! Proc.* The ETSI reference code is licensed, so this module implements a
//! synthetic vocoder with the same pipeline structure and comparable
//! fixed-point DSP workloads per stage:
//!
//! * **LSP estim.** — autocorrelation (lags 0..=10) + Levinson-Durbin
//!   recursion → order-10 LPC coefficients (Q12);
//! * **LPC int.** — per-subframe interpolation between consecutive LPC
//!   sets plus bandwidth expansion;
//! * **ACB sear.** — adaptive-codebook (pitch) search: residual
//!   computation and a lag-40..=120 correlation search per subframe;
//! * **ICB sear.** — innovative-codebook search: greedy 4-track pulse
//!   selection per subframe;
//! * **Post Proc.** — LPC synthesis filter + de-emphasis + clipping.
//!
//! All arithmetic is wrapping 32-bit fixed point, so the plain Rust,
//! annotated and `minic`/ISS forms produce bit-identical results.
//!
//! Frames are 160 samples (4 subframes of 40), as in GSM.

pub mod minic_gen;
pub mod pipeline;
pub mod stages;

use crate::data::Lcg;

/// Samples per frame.
pub const FRAME: usize = 160;
/// Subframes per frame.
pub const SUBFRAMES: usize = 4;
/// Samples per subframe.
pub const SUBLEN: usize = 40;
/// LPC order.
pub const ORDER: usize = 10;
/// Fixed-point one (Q12).
pub const Q12: i32 = 4096;
/// Minimum pitch lag.
pub const MIN_LAG: usize = 40;
/// Maximum pitch lag (also the excitation-history length).
pub const MAX_LAG: usize = 120;
/// Default number of frames in the experiments.
pub const DEFAULT_FRAMES: usize = 16;

/// The 256-entry Q12 sine table shared by the synthetic speech source.
pub fn sine_table() -> Vec<i32> {
    (0..256)
        .map(|i| {
            let x = 2.0 * std::f64::consts::PI * i as f64 / 256.0;
            (4096.0 * x.sin()).round() as i32
        })
        .collect()
}

/// Synthesizes `nframes` frames of deterministic speech-like input:
/// two sinusoids with per-frame pitch drift plus low-level noise,
/// amplitude-enveloped, clamped to ±2047 (12-bit samples).
pub fn speech_frames(nframes: usize) -> Vec<Vec<i32>> {
    let sin_t = sine_table();
    let mut lcg = Lcg::new(0x5EEC);
    let mut phase1 = 0_u32;
    let mut phase2 = 64_u32;
    let mut frames = Vec::with_capacity(nframes);
    for f in 0..nframes {
        let inc1 = 180 + ((f as u32 % 7) * 24);
        let inc2 = 2 * inc1 + 13;
        let mut frame = Vec::with_capacity(FRAME);
        for n in 0..FRAME {
            phase1 = phase1.wrapping_add(inc1);
            phase2 = phase2.wrapping_add(inc2);
            // Envelope rises then falls over the frame.
            let env = if n < FRAME / 2 { n } else { FRAME - n } as i32 * 20 + 400;
            let s1 = sin_t[(phase1 >> 4) as usize & 255].wrapping_mul(env) >> 12;
            let s2 = sin_t[(phase2 >> 4) as usize & 255].wrapping_mul(env / 2) >> 12;
            let noise = lcg.signed(48);
            let v = s1.wrapping_add(s2).wrapping_add(noise).clamp(-2047, 2047);
            frame.push(v);
        }
        frames.push(frame);
    }
    frames
}

/// Bandwidth-expansion factors γ^j (γ = 0.75, Q12), j = 1..=10, computed
/// in integer arithmetic so all three forms can share the exact table.
pub fn gamma_powers() -> Vec<i32> {
    let gamma = 3072_i32; // 0.75 in Q12
    let mut powers = Vec::with_capacity(ORDER);
    let mut g = gamma;
    for _ in 0..ORDER {
        powers.push(g);
        g = (g.wrapping_mul(gamma)) >> 12;
    }
    powers
}

/// Everything the reference (plain) pipeline produces: per-stage input
/// streams (used to generate the per-stage ISS programs) and per-stage
/// checksums (used to validate the annotated and ISS forms).
#[derive(Debug, Clone)]
pub struct VocoderTrace {
    /// Speech input, per frame.
    pub speech: Vec<Vec<i32>>,
    /// LPC output of LSP-estimation, per frame (10 values each).
    pub lpc: Vec<Vec<i32>>,
    /// Interpolated coefficients, per frame (40 values each).
    pub aq: Vec<Vec<i32>>,
    /// Residual signal, per frame (160 values each).
    pub res: Vec<Vec<i32>>,
    /// Adaptive-codebook contribution, per frame.
    pub acb: Vec<Vec<i32>>,
    /// Complete excitation after the innovative codebook, per frame.
    pub exc: Vec<Vec<i32>>,
    /// Decoded output speech, per frame.
    pub out: Vec<Vec<i32>>,
    /// Per-stage running checksums, in pipeline order
    /// (lsp, lpc_int, acb, icb, post).
    pub checksums: [i32; 5],
}

/// Runs the plain (reference) pipeline over `nframes` frames.
pub fn run_reference(nframes: usize) -> VocoderTrace {
    let speech = speech_frames(nframes);
    let mut lpcint_state = stages::LpcIntState::new();
    let mut acb_state = stages::AcbState::new();
    let mut post_state = stages::PostState::new();
    let mut trace = VocoderTrace {
        speech: speech.clone(),
        lpc: Vec::new(),
        aq: Vec::new(),
        res: Vec::new(),
        acb: Vec::new(),
        exc: Vec::new(),
        out: Vec::new(),
        checksums: [0; 5],
    };
    for frame in &speech {
        let lpc = stages::lsp_plain(frame);
        trace.checksums[0] = checksum_acc(trace.checksums[0], &lpc);
        let aq = stages::lpcint_plain(&mut lpcint_state, &lpc);
        trace.checksums[1] = checksum_acc(trace.checksums[1], &aq);
        let (res, acb, lags, gains) = stages::acb_plain(&mut acb_state, frame, &aq);
        trace.checksums[2] = checksum_acc(checksum_acc(trace.checksums[2], &lags), &gains);
        let exc = stages::icb_plain(&res, &acb);
        trace.checksums[3] = checksum_acc(trace.checksums[3], &exc);
        let out = stages::post_plain(&mut post_state, &aq, &exc);
        trace.checksums[4] = checksum_acc(trace.checksums[4], &out);
        trace.lpc.push(lpc);
        trace.aq.push(aq);
        trace.res.push(res);
        trace.acb.push(acb);
        trace.exc.push(exc);
        trace.out.push(out);
    }
    trace
}

/// Mixes a slice into a running checksum (`s = s·31 + v`, wrapping).
pub fn checksum_acc(mut s: i32, values: &[i32]) -> i32 {
    for &v in values {
        s = s.wrapping_mul(31).wrapping_add(v);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speech_is_deterministic_and_bounded() {
        let a = speech_frames(4);
        let b = speech_frames(4);
        assert_eq!(a, b);
        assert!(a.iter().flatten().all(|&v| (-2047..=2047).contains(&v)));
        // Signal must actually carry energy.
        let energy: i64 = a.iter().flatten().map(|&v| (v as i64) * (v as i64)).sum();
        assert!(energy > 1_000_000);
    }

    #[test]
    fn gamma_powers_decay() {
        let g = gamma_powers();
        assert_eq!(g.len(), ORDER);
        assert_eq!(g[0], 3072);
        for w in g.windows(2) {
            assert!(w[1] < w[0]);
            assert!(w[1] > 0);
        }
    }

    #[test]
    fn reference_pipeline_runs_and_produces_output() {
        let t = run_reference(4);
        assert_eq!(t.out.len(), 4);
        assert!(t.out.iter().flatten().any(|&v| v != 0));
        // Output is clipped to 16-bit audio.
        assert!(t
            .out
            .iter()
            .flatten()
            .all(|&v| (-32767..=32767).contains(&v)));
        // All five stage checksums populated (overwhelmingly non-zero).
        assert!(t.checksums.iter().filter(|&&c| c != 0).count() >= 4);
    }

    #[test]
    fn sine_table_shape() {
        let t = sine_table();
        assert_eq!(t[0], 0);
        assert_eq!(t[64], 4096);
        assert_eq!(t[128], 0);
        assert_eq!(t[192], -4096);
    }
}
