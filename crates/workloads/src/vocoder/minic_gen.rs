//! `minic` program generators for the five vocoder stages.
//!
//! Table 3 needs a per-process ISS cycle reference. Each generator embeds
//! the stage's *actual input stream* (captured from the reference
//! pipeline) as global initializers and implements the stage as a
//! per-frame function taking pointer arguments — the same statement
//! structure the annotated form charges for — leaving the stage checksum
//! in `result`.

use crate::data::minic_initializer;

use super::{gamma_powers, VocoderTrace, FRAME, MAX_LAG, MIN_LAG, ORDER, SUBLEN};

fn flatten(frames: &[Vec<i32>]) -> Vec<i32> {
    frames.iter().flatten().copied().collect()
}

/// LSP-estimation stage program.
pub fn lsp(trace: &VocoderTrace) -> String {
    let nf = trace.speech.len();
    format!(
        "int speech[{total}] = {init};\n\
         int checksum;\n\
         int result;\n\
         int lsp_frame(int sp) {{\n\
           int r[11]; int a[11]; int tmp[11]; int lpc[{order}];\n\
           int k; int n; int i; int j; int acc; int err; int kk;\n\
           for (k = 0; k < 11; k = k + 1) {{\n\
             acc = 0;\n\
             for (n = k; n < {frame}; n = n + 1) {{\n\
               acc = acc + (((sp[n] >> 4) * (sp[n - k] >> 4)) >> 6);\n\
             }}\n\
             r[k] = acc;\n\
           }}\n\
           if (r[0] < 1) r[0] = 1;\n\
           for (i = 0; i < 11; i = i + 1) a[i] = 0;\n\
           a[0] = 4096;\n\
           err = r[0];\n\
           for (i = 1; i <= {order}; i = i + 1) {{\n\
             acc = r[i];\n\
             for (j = 1; j < i; j = j + 1) {{\n\
               acc = acc - ((a[j] * r[i - j]) >> 12);\n\
             }}\n\
             if (acc > 131071) acc = 131071;\n\
             if (acc < -131071) acc = -131071;\n\
             kk = (acc << 12) / err;\n\
             if (kk > 4095) kk = 4095;\n\
             if (kk < -4095) kk = -4095;\n\
             for (j = 1; j < i; j = j + 1) {{\n\
               tmp[j] = a[j] - ((kk * a[i - j]) >> 12);\n\
             }}\n\
             for (j = 1; j < i; j = j + 1) a[j] = tmp[j];\n\
             a[i] = kk;\n\
             err = (err * (4096 - ((kk * kk) >> 12))) >> 12;\n\
             if (err < 1) err = 1;\n\
           }}\n\
           for (i = 0; i < {order}; i = i + 1) lpc[i] = a[i + 1];\n\
           for (i = 0; i < {order}; i = i + 1) checksum = checksum * 31 + lpc[i];\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int f;\n\
           for (f = 0; f < {nf}; f = f + 1) lsp_frame(speech + f * {framebytes});\n\
           result = checksum;\n\
           return 0;\n\
         }}\n",
        total = nf * FRAME,
        init = minic_initializer(&flatten(&trace.speech)),
        nf = nf,
        frame = FRAME,
        order = ORDER,
        framebytes = FRAME * 4,
    )
}

/// LPC-interpolation stage program.
pub fn lpc_int(trace: &VocoderTrace) -> String {
    let nf = trace.lpc.len();
    format!(
        "int lpcall[{total}] = {init};\n\
         int gammas[{order}] = {gammas};\n\
         int prev[{order}];\n\
         int aq[{aqlen}];\n\
         int checksum;\n\
         int result;\n\
         int lpcint_frame(int lpc) {{\n\
           int s; int j; int mixed;\n\
           for (s = 0; s < 4; s = s + 1) {{\n\
             for (j = 0; j < {order}; j = j + 1) {{\n\
               mixed = ((4 - s) * prev[j] + s * lpc[j]) / 4;\n\
               aq[s * {order} + j] = (mixed * gammas[j]) >> 12;\n\
             }}\n\
           }}\n\
           for (j = 0; j < {order}; j = j + 1) prev[j] = lpc[j];\n\
           for (j = 0; j < {aqlen}; j = j + 1) checksum = checksum * 31 + aq[j];\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int f;\n\
           for (f = 0; f < {nf}; f = f + 1) lpcint_frame(lpcall + f * {lpcbytes});\n\
           result = checksum;\n\
           return 0;\n\
         }}\n",
        total = nf * ORDER,
        init = minic_initializer(&flatten(&trace.lpc)),
        gammas = minic_initializer(&gamma_powers()),
        order = ORDER,
        aqlen = 4 * ORDER,
        nf = nf,
        lpcbytes = ORDER * 4,
    )
}

/// Adaptive-codebook-search stage program.
pub fn acb(trace: &VocoderTrace) -> String {
    let nf = trace.speech.len();
    format!(
        "int speech[{stotal}] = {sinit};\n\
         int aqall[{atotal}] = {ainit};\n\
         int hist[{maxlag}];\n\
         int checksum;\n\
         int result;\n\
         int acb_frame(int sp, int aq) {{\n\
           int res[{frame}]; int acb[{frame}]; int lags[4]; int gains[4];\n\
           int n; int s; int j; int k; int x; int pred; int v; int cb; int idx;\n\
           int base; int lag; int corr; int energy; int p; int cn; int en; int score;\n\
           int best_score; int best_lag; int best_gain; int gain;\n\
           for (n = 0; n < {frame}; n = n + 1) {{\n\
             cb = (n / {sublen}) * {order};\n\
             pred = 0;\n\
             for (j = 1; j <= {order}; j = j + 1) {{\n\
               if (n >= j) {{ x = sp[n - j]; }} else {{ x = 0; }}\n\
               pred = pred + ((aq[cb + j - 1] * x) >> 12);\n\
             }}\n\
             v = sp[n] - pred;\n\
             if (v > 4095) v = 4095;\n\
             if (v < -4095) v = -4095;\n\
             res[n] = v;\n\
           }}\n\
           for (s = 0; s < 4; s = s + 1) {{\n\
             base = s * {sublen};\n\
             best_score = -1;\n\
             best_lag = {minlag};\n\
             best_gain = 0;\n\
             lag = {minlag};\n\
             while (lag <= {maxlag}) {{\n\
               corr = 0;\n\
               energy = 0;\n\
               for (n = 0; n < {sublen}; n = n + 1) {{\n\
                 idx = base + n - lag;\n\
                 if (idx < 0) {{ p = hist[{maxlag} + idx]; }} else {{ p = res[idx]; }}\n\
                 p = p >> 2;\n\
                 corr = corr + (((res[base + n] >> 2) * p) >> 4);\n\
                 energy = energy + ((p * p) >> 4);\n\
               }}\n\
               cn = corr >> 6;\n\
               en = (energy >> 6) + 1;\n\
               score = (cn * cn) / en;\n\
               if (score > best_score) {{\n\
                 best_score = score;\n\
                 best_lag = lag;\n\
                 gain = (cn * 4096) / en;\n\
                 if (gain > 8191) gain = 8191;\n\
                 if (gain < -8191) gain = -8191;\n\
                 best_gain = gain;\n\
               }}\n\
               lag = lag + 1;\n\
             }}\n\
             lags[s] = best_lag;\n\
             gains[s] = best_gain;\n\
             for (n = 0; n < {sublen}; n = n + 1) {{\n\
               idx = base + n - best_lag;\n\
               if (idx < 0) {{ p = hist[{maxlag} + idx]; }} else {{ p = res[idx]; }}\n\
               acb[base + n] = (best_gain * p) >> 12;\n\
             }}\n\
             for (k = 0; k < {hist_keep}; k = k + 1) {{\n\
               hist[k] = hist[k + {sublen}];\n\
             }}\n\
             for (k = 0; k < {sublen}; k = k + 1) {{\n\
               hist[{hist_keep} + k] = res[base + k];\n\
             }}\n\
           }}\n\
           for (s = 0; s < 4; s = s + 1) checksum = checksum * 31 + lags[s];\n\
           for (s = 0; s < 4; s = s + 1) checksum = checksum * 31 + gains[s];\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int f;\n\
           for (f = 0; f < {nf}; f = f + 1) {{\n\
             acb_frame(speech + f * {framebytes}, aqall + f * {aqbytes});\n\
           }}\n\
           result = checksum;\n\
           return 0;\n\
         }}\n",
        stotal = nf * FRAME,
        sinit = minic_initializer(&flatten(&trace.speech)),
        atotal = nf * 4 * ORDER,
        ainit = minic_initializer(&flatten(&trace.aq)),
        maxlag = MAX_LAG,
        frame = FRAME,
        nf = nf,
        sublen = SUBLEN,
        order = ORDER,
        minlag = MIN_LAG,
        hist_keep = MAX_LAG - SUBLEN,
        framebytes = FRAME * 4,
        aqbytes = 4 * ORDER * 4,
    )
}

/// Innovative-codebook-search stage program.
pub fn icb(trace: &VocoderTrace) -> String {
    let nf = trace.res.len();
    format!(
        "int resall[{total}] = {rinit};\n\
         int acball[{total}] = {ainit};\n\
         int checksum;\n\
         int result;\n\
         int icb_frame(int res, int acb) {{\n\
           int exc[{frame}]; int res2[{sublen}];\n\
           int n; int s; int t; int p; int mag; int best_pos; int best_mag;\n\
           int base;\n\
           for (n = 0; n < {frame}; n = n + 1) exc[n] = acb[n];\n\
           for (s = 0; s < 4; s = s + 1) {{\n\
             base = s * {sublen};\n\
             for (n = 0; n < {sublen}; n = n + 1) {{\n\
               res2[n] = res[base + n] - acb[base + n];\n\
             }}\n\
             for (t = 0; t < 4; t = t + 1) {{\n\
               best_pos = t;\n\
               best_mag = res2[t];\n\
               if (best_mag < 0) best_mag = -best_mag;\n\
               p = t + 4;\n\
               while (p < {sublen}) {{\n\
                 mag = res2[p];\n\
                 if (mag < 0) mag = -mag;\n\
                 if (mag > best_mag) {{\n\
                   best_mag = mag;\n\
                   best_pos = p;\n\
                 }}\n\
                 p = p + 4;\n\
               }}\n\
               exc[base + best_pos] = exc[base + best_pos] + res2[best_pos];\n\
             }}\n\
           }}\n\
           for (n = 0; n < {frame}; n = n + 1) checksum = checksum * 31 + exc[n];\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int f;\n\
           for (f = 0; f < {nf}; f = f + 1) {{\n\
             icb_frame(resall + f * {framebytes}, acball + f * {framebytes});\n\
           }}\n\
           result = checksum;\n\
           return 0;\n\
         }}\n",
        total = nf * FRAME,
        rinit = minic_initializer(&flatten(&trace.res)),
        ainit = minic_initializer(&flatten(&trace.acb)),
        frame = FRAME,
        sublen = SUBLEN,
        nf = nf,
        framebytes = FRAME * 4,
    )
}

/// Post-processing stage program.
pub fn post(trace: &VocoderTrace) -> String {
    let nf = trace.exc.len();
    format!(
        "int aqall[{atotal}] = {ainit};\n\
         int excall[{etotal}] = {einit};\n\
         int synth_hist[{order}];\n\
         int deemph;\n\
         int checksum;\n\
         int result;\n\
         int post_frame(int aq, int exc) {{\n\
           int y[{frame}]; int out[{frame}];\n\
           int n; int j; int acc; int prev; int d; int cb;\n\
           for (n = 0; n < {frame}; n = n + 1) {{\n\
             cb = (n / {sublen}) * {order};\n\
             acc = exc[n];\n\
             for (j = 1; j <= {order}; j = j + 1) {{\n\
               if (n >= j) {{ prev = y[n - j]; }}\n\
               else {{ prev = synth_hist[{order} + n - j]; }}\n\
               acc = acc + ((aq[cb + j - 1] * prev) >> 12);\n\
             }}\n\
             if (acc > 1000000) acc = 1000000;\n\
             if (acc < -1000000) acc = -1000000;\n\
             y[n] = acc;\n\
           }}\n\
           for (j = 0; j < {order}; j = j + 1) {{\n\
             synth_hist[j] = y[{hist_base} + j];\n\
           }}\n\
           d = deemph;\n\
           for (n = 0; n < {frame}; n = n + 1) {{\n\
             d = y[n] + ((2785 * d) >> 12);\n\
             if (d > 32767) d = 32767;\n\
             if (d < -32767) d = -32767;\n\
             out[n] = d;\n\
             checksum = checksum * 31 + d;\n\
           }}\n\
           deemph = d;\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int f;\n\
           for (f = 0; f < {nf}; f = f + 1) {{\n\
             post_frame(aqall + f * {aqbytes}, excall + f * {framebytes});\n\
           }}\n\
           result = checksum;\n\
           return 0;\n\
         }}\n",
        atotal = nf * 4 * ORDER,
        ainit = minic_initializer(&flatten(&trace.aq)),
        etotal = nf * FRAME,
        einit = minic_initializer(&flatten(&trace.exc)),
        order = ORDER,
        frame = FRAME,
        nf = nf,
        sublen = SUBLEN,
        hist_base = FRAME - ORDER,
        aqbytes = 4 * ORDER * 4,
        framebytes = FRAME * 4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocoder::run_reference;

    fn run_minic(src: &str) -> (i32, u64) {
        let compiled = scperf_iss::minic::compile(src).expect("stage compiles");
        let mut m = scperf_iss::Machine::new(1 << 22);
        m.load(&compiled.program);
        let stats = m.run(2_000_000_000).expect("stage runs");
        (m.read_word(compiled.global("result")), stats.cycles)
    }

    #[test]
    fn all_five_stage_programs_match_reference_checksums() {
        let trace = run_reference(3);
        let programs = [
            ("lsp", lsp(&trace), trace.checksums[0]),
            ("lpc_int", lpc_int(&trace), trace.checksums[1]),
            ("acb", acb(&trace), trace.checksums[2]),
            ("icb", icb(&trace), trace.checksums[3]),
            ("post", post(&trace), trace.checksums[4]),
        ];
        for (name, src, expect) in programs {
            let (got, cycles) = run_minic(&src);
            assert_eq!(got, expect, "stage {name} checksum mismatch");
            assert!(cycles > 1_000, "stage {name} suspiciously cheap");
        }
    }
}
