//! Calibration probe kernels (§5: "functions specifically developed for
//! this purpose").
//!
//! Each probe exists in two matched forms — annotated (yielding exact
//! source-level operation counts when run inside a
//! [`scperf_core::PerfModel`]) and `minic` (yielding reference cycles on
//! the ISS). The Table 1 harness runs all probes through
//! [`scperf_iss::calibrate::fit`] to derive the SW cost table. Probes are
//! deliberately distinct from the benchmarks they calibrate for.

use scperf_core::{g_call, g_for, g_i32, g_if, g_while, GArr, G};

use crate::data::{minic_initializer, signed_values};

/// One calibration probe.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Probe name.
    pub name: &'static str,
    /// The annotated kernel; returns a checksum.
    pub annotated: fn() -> i32,
    /// Matched `minic` source (checksum in global `result`).
    pub minic: String,
}

impl Probe {
    /// Compiles and runs the minic form; returns `(checksum, cycles)`.
    ///
    /// # Panics
    ///
    /// Panics on compile or run failure (probes are fixtures).
    pub fn run_iss(&self) -> (i32, u64) {
        let compiled = scperf_iss::minic::compile(&self.minic)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        let mut m = crate::case::reference_machine();
        m.load(&compiled.program);
        let stats = m
            .run_pipelined(2_000_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        (m.read_word(compiled.global("result")), stats.cycles)
    }
}

// -------------------------------------------------------------- probe 1 --

fn add_chain_annotated() -> i32 {
    let mut s = g_i32(0);
    let mut t = g_i32(7);
    g_for!(i in 0..400 => {
        s.assign(s + G::raw(i as i32)); // s = s + i;
        t.assign(t - s + G::raw(3)); // t = t - s + 3;
    });
    (s + t).get()
}

fn add_chain_minic() -> String {
    "int result;\n\
     int main() {\n\
       int i; int s = 0; int t = 7;\n\
       for (i = 0; i < 400; i = i + 1) {\n\
         s = s + i;\n\
         t = t - s + 3;\n\
       }\n\
       result = s + t;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// -------------------------------------------------------------- probe 2 --

fn mul_heavy_annotated() -> i32 {
    let mut s = g_i32(1);
    let mut a = g_i32(3);
    g_for!(_i in 0..300 => {
        s.assign(s + a * a * G::raw(5)); // s = s + a * a * 5;
        a.assign(a + 1); // a = a + 1;
    });
    s.get()
}

fn mul_heavy_minic() -> String {
    "int result;\n\
     int main() {\n\
       int i; int s = 1; int a = 3;\n\
       for (i = 0; i < 300; i = i + 1) {\n\
         s = s + a * a * 5;\n\
         a = a + 1;\n\
       }\n\
       result = s;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// -------------------------------------------------------------- probe 3 --

fn div_heavy_annotated() -> i32 {
    let mut s = g_i32(1_000_000);
    let mut acc = g_i32(0);
    g_for!(i in 0..200 => {
        // acc = acc + s / (i + 3) + s % (i + 5);
        acc.assign(acc + s / (G::raw(i as i32) + 3) + s % (G::raw(i as i32) + 5));
        s.assign(s - G::raw(17)); // s = s - 17;
    });
    acc.get()
}

fn div_heavy_minic() -> String {
    "int result;\n\
     int main() {\n\
       int i; int s = 1000000; int acc = 0;\n\
       for (i = 0; i < 200; i = i + 1) {\n\
         acc = acc + s / (i + 3) + s % (i + 5);\n\
         s = s - 17;\n\
       }\n\
       result = acc;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// -------------------------------------------------------------- probe 4 --

const MEM_N: usize = 256;

fn mem_data() -> Vec<i32> {
    signed_values(0xCA11, MEM_N, 999)
}

fn mem_heavy_annotated() -> i32 {
    let mut arr = GArr::from_vec(mem_data());
    let mut j = G::raw(0_i32);
    g_for!(pass in 0..4 => {
        g_for!(i in 0..MEM_N => {
            // j = (i * 7 + pass) & 255;
            j.assign((G::raw(i as i32) * 7 + G::raw(pass as i32)) & G::raw(MEM_N as i32 - 1));
            // arr[i] = arr[i] + arr[j];
            arr.set_raw(i, arr.at_raw(i) + arr.at_raw(j.get() as usize));
        });
    });
    let mut s = g_i32(0);
    g_for!(i in 0..MEM_N => {
        s.assign(s + arr.at_raw(i)); // s = s + arr[i];
    });
    s.get()
}

fn mem_heavy_minic() -> String {
    format!(
        "int arr[{n}] = {init};\n\
         int result;\n\
         int main() {{\n\
           int pass; int i; int j; int s = 0;\n\
           for (pass = 0; pass < 4; pass = pass + 1) {{\n\
             for (i = 0; i < {n}; i = i + 1) {{\n\
               j = (i * 7 + pass) & {mask};\n\
               arr[i] = arr[i] + arr[j];\n\
             }}\n\
           }}\n\
           for (i = 0; i < {n}; i = i + 1) s = s + arr[i];\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        n = MEM_N,
        mask = MEM_N - 1,
        init = minic_initializer(&mem_data()),
    )
}

// -------------------------------------------------------------- probe 5 --

fn branch_heavy_annotated() -> i32 {
    let mut x = g_i32(987_654);
    let mut steps = g_i32(0);
    g_while!((x > 1) {
        g_if!((x % 2 == 1) {
            x.assign(x * 3 + 1); // x = x * 3 + 1;
        } else {
            x.assign(x / 2); // x = x / 2;
        });
        steps.assign(steps + 1); // steps = steps + 1;
    });
    steps.get()
}

fn branch_heavy_minic() -> String {
    "int result;\n\
     int main() {\n\
       int x = 987654; int steps = 0;\n\
       while (x > 1) {\n\
         if (x % 2 == 1) {\n\
           x = x * 3 + 1;\n\
         } else {\n\
           x = x / 2;\n\
         }\n\
         steps = steps + 1;\n\
       }\n\
       result = steps;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// -------------------------------------------------------------- probe 6 --

fn callee(a: G<i32>, b: G<i32>) -> G<i32> {
    a + b * G::raw(2)
}

fn call_heavy_annotated() -> i32 {
    let mut s = g_i32(0);
    g_for!(i in 0..300 => {
        s.assign(g_call!(callee(s, G::raw(i as i32)))); // s = callee(s, i);
    });
    s.get()
}

fn call_heavy_minic() -> String {
    "int result;\n\
     int callee(int a, int b) { return a + b * 2; }\n\
     int main() {\n\
       int i; int s = 0;\n\
       for (i = 0; i < 300; i = i + 1) {\n\
         s = callee(s, i);\n\
       }\n\
       result = s;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// -------------------------------------------------------------- probe 7 --

fn shift_logic_annotated() -> i32 {
    let mut s = g_i32(0x1234_5678_u32 as i32);
    g_for!(i in 0..350 => {
        // s = (s << 1) ^ (s >> 3) | (i & 15);
        s.assign((s << G::raw(1)) ^ (s >> G::raw(3)) | (G::raw(i as i32) & 15));
    });
    s.get()
}

fn shift_logic_minic() -> String {
    "int result;\n\
     int main() {\n\
       int i; int s = 305419896;\n\
       for (i = 0; i < 350; i = i + 1) {\n\
         s = (s << 1) ^ (s >> 3) | (i & 15);\n\
       }\n\
       result = s;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// -------------------------------------------------------------- probe 8 --

const CMP_N: usize = 300;

fn cmp_data() -> Vec<i32> {
    signed_values(0xC39, CMP_N, 5000)
}

fn cmp_heavy_annotated() -> i32 {
    let arr = GArr::from_vec(cmp_data());
    let mut below = g_i32(0);
    let mut above = g_i32(0);
    let mut v = G::raw(0_i32);
    g_for!(i in 0..CMP_N => {
        v.assign(arr.at_raw(i)); // v = arr[i];
        g_if!((v < 0) {
            below.assign(below + 1); // below = below + 1;
        });
        g_if!((v > 1000) {
            above.assign(above + 1); // above = above + 1;
        });
    });
    (below * 1000 + above).get()
}

fn cmp_heavy_minic() -> String {
    format!(
        "int arr[{n}] = {init};\n\
         int result;\n\
         int main() {{\n\
           int i; int below = 0; int above = 0; int v;\n\
           for (i = 0; i < {n}; i = i + 1) {{\n\
             v = arr[i];\n\
             if (v < 0) below = below + 1;\n\
             if (v > 1000) above = above + 1;\n\
           }}\n\
           result = below * 1000 + above;\n\
           return 0;\n\
         }}\n",
        n = CMP_N,
        init = minic_initializer(&cmp_data()),
    )
}

// -------------------------------------------------------------- probe 9 --

fn mixed_small_annotated() -> i32 {
    let mut arr = GArr::<i32>::zeroed(64);
    let mut s = g_i32(0);
    let mut v = G::raw(0_i32);
    g_for!(i in 0..64 => {
        // arr[i] = (i * i) % 97;
        arr.set_raw(i, (G::raw(i as i32) * G::raw(i as i32)) % 97);
    });
    g_for!(i in 0..64 => {
        v.assign(arr.at_raw(i)); // v = arr[i];
        g_if!((v % 3 == 0) {
            s.assign(s + v * 2); // s = s + v * 2;
        } else {
            s.assign(s - v / 3); // s = s - v / 3;
        });
    });
    s.get()
}

fn mixed_small_minic() -> String {
    "int arr[64];\n\
     int result;\n\
     int main() {\n\
       int i; int s = 0; int v;\n\
       for (i = 0; i < 64; i = i + 1) arr[i] = (i * i) % 97;\n\
       for (i = 0; i < 64; i = i + 1) {\n\
         v = arr[i];\n\
         if (v % 3 == 0) {\n\
           s = s + v * 2;\n\
         } else {\n\
           s = s - v / 3;\n\
         }\n\
       }\n\
       result = s;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// ------------------------------------------------------------- probe 10 --

fn poly(x: G<i32>, arr: &GArr<i32>) -> G<i32> {
    let mut acc = g_i32(0); // acc = 0;
    g_for!(k in 0..8 => {
        acc.assign(acc * x + arr.at_raw(k)); // acc = acc * x + coeffs[k];
    });
    acc
}

fn mixed_large_annotated() -> i32 {
    let coeffs = GArr::from_vec(signed_values(0x1A, 8, 20));
    let mut s = g_i32(0);
    let mut x = G::raw(0_i32);
    let mut p = G::raw(0_i32);
    g_for!(i in 0..120 => {
        x.assign((G::raw(i as i32) % 7) - 3); // x = (i % 7) - 3;
        p.assign(g_call!(poly(x, &coeffs))); // p = poly(x);
        g_if!((p > 0) {
            s.assign(s + p % 1000); // s = s + p % 1000;
        } else {
            s.assign(s + p / 2); // s = s + p / 2;
        });
    });
    s.get()
}

fn mixed_large_minic() -> String {
    format!(
        "int coeffs[8] = {init};\n\
         int result;\n\
         int poly(int x) {{\n\
           int k; int acc = 0;\n\
           for (k = 0; k < 8; k = k + 1) acc = acc * x + coeffs[k];\n\
           return acc;\n\
         }}\n\
         int main() {{\n\
           int i; int s = 0; int x; int p;\n\
           for (i = 0; i < 120; i = i + 1) {{\n\
             x = (i % 7) - 3;\n\
             p = poly(x);\n\
             if (p > 0) {{\n\
               s = s + p % 1000;\n\
             }} else {{\n\
               s = s + p / 2;\n\
             }}\n\
           }}\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        init = minic_initializer(&signed_values(0x1A, 8, 20)),
    )
}

// ------------------------------------------------------------- probe 11 --

fn rsum(n: G<i32>) -> G<i32> {
    let mut done = false;
    let mut result = G::raw(0_i32);
    g_if!((n <= 0) {
        result = n;
        done = true;
    });
    if done {
        return result;
    }
    let sub = g_call!(rsum(n - 1));
    n + sub
}

fn recurse_annotated() -> i32 {
    let mut total = g_i32(0);
    g_for!(_i in 0..6 => {
        total.assign(total + g_call!(rsum(g_i32(60)))); // total = total + rsum(60);
    });
    total.get()
}

fn recurse_minic() -> String {
    "int result;\n\
     int rsum(int n) {\n\
       if (n <= 0) return n;\n\
       return n + rsum(n - 1);\n\
     }\n\
     int main() {\n\
       int i; int total = 0;\n\
       for (i = 0; i < 6; i = i + 1) {\n\
         total = total + rsum(60);\n\
       }\n\
       result = total;\n\
       return 0;\n\
     }\n"
    .to_owned()
}

// ------------------------------------------------------------- probe 12 --

fn scale(buf: &mut GArr<i32>, n: G<i32>, f: G<i32>) -> G<i32> {
    let mut i = g_i32(0); // i = 0;
    g_while!((i < n) {
        // buf[i] = (buf[i] * f) >> 4;
        buf.set_raw(i.get() as usize, (buf.at_raw(i.get() as usize) * f) >> G::raw(4));
        i.assign(i + 1); // i = i + 1;
    });
    G::raw(0)
}

fn ptr_array_annotated() -> i32 {
    let mut buf = GArr::from_vec(signed_values(0x77, 128, 3000));
    g_for!(pass in 0..5 => {
        let _ = g_call!(scale(&mut buf, g_i32(128), g_i32(17 + pass as i32)));
    });
    let mut s = g_i32(0);
    g_for!(i in 0..128 => {
        s.assign(s + buf.at_raw(i)); // s = s + buf[i];
    });
    s.get()
}

fn ptr_array_minic() -> String {
    format!(
        "int buf[128] = {init};\n\
         int result;\n\
         int scale(int p, int n, int f) {{\n\
           int i = 0;\n\
           while (i < n) {{\n\
             p[i] = (p[i] * f) >> 4;\n\
             i = i + 1;\n\
           }}\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int pass; int i; int s = 0;\n\
           for (pass = 0; pass < 5; pass = pass + 1) {{\n\
             scale(buf, 128, 17 + pass);\n\
           }}\n\
           for (i = 0; i < 128; i = i + 1) s = s + buf[i];\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        init = minic_initializer(&signed_values(0x77, 128, 3000)),
    )
}

// ------------------------------------------------------------- probe 13 --

const MAC_N: usize = 96;

fn mac_annotated() -> i32 {
    let a = GArr::from_vec(signed_values(0xD07, MAC_N, 1500));
    let b = GArr::from_vec(signed_values(0xD08, MAC_N, 900));
    let mut acc = g_i32(0);
    g_for!(pass in 0..3_usize => {
        g_for!(i in 0..MAC_N - 3 => {
            // acc = acc + (a[i] * b[i + 3]) >> 5;
            let idx = G::raw(i) + G::raw(3);
            acc.assign(acc + ((a.at_raw(i) * b.at(idx)) >> G::raw(5)));
        });
        let _ = pass;
    });
    acc.get()
}

fn mac_minic() -> String {
    format!(
        "int a[{n}] = {ia};\n\
         int b[{n}] = {ib};\n\
         int result;\n\
         int main() {{\n\
           int pass; int i; int acc = 0;\n\
           for (pass = 0; pass < 3; pass = pass + 1) {{\n\
             for (i = 0; i < {bound}; i = i + 1) {{\n\
               acc = acc + ((a[i] * b[i + 3]) >> 5);\n\
             }}\n\
           }}\n\
           result = acc;\n\
           return 0;\n\
         }}\n",
        n = MAC_N,
        bound = MAC_N - 3,
        ia = minic_initializer(&signed_values(0xD07, MAC_N, 1500)),
        ib = minic_initializer(&signed_values(0xD08, MAC_N, 900)),
    )
}

// ------------------------------------------------------------- probe 14 --

const SWAP_N: usize = 80;

fn condswap_annotated() -> i32 {
    let mut arr = GArr::from_vec(signed_values(0xE0, SWAP_N, 700));
    g_for!(pass in 0..3_usize => {
        g_for!(i in 0..SWAP_N - 1 => {
            // if (arr[i] > arr[i + 1]) { t = arr[i]; ... }
            let jp = G::raw(i) + G::raw(1);
            g_if!((arr.at_raw(i) > arr.at(jp)) {
                let mut t = G::raw(0_i32);
                t.assign(arr.at_raw(i));
                let jp2 = G::raw(i) + G::raw(1);
                arr.set_raw(i, arr.at(jp2));
                let jp3 = G::raw(i) + G::raw(1);
                arr.set(jp3, t);
            });
        });
        let _ = pass;
    });
    let mut s = g_i32(0);
    g_for!(i in 0..SWAP_N => {
        s.assign(s + arr.at_raw(i));
    });
    s.get()
}

fn condswap_minic() -> String {
    format!(
        "int arr[{n}] = {init};\n\
         int result;\n\
         int main() {{\n\
           int pass; int i; int t; int s = 0;\n\
           for (pass = 0; pass < 3; pass = pass + 1) {{\n\
             for (i = 0; i < {bound}; i = i + 1) {{\n\
               if (arr[i] > arr[i + 1]) {{\n\
                 t = arr[i]; arr[i] = arr[i + 1]; arr[i + 1] = t;\n\
               }}\n\
             }}\n\
           }}\n\
           for (i = 0; i < {n}; i = i + 1) s = s + arr[i];\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        n = SWAP_N,
        bound = SWAP_N - 1,
        init = minic_initializer(&signed_values(0xE0, SWAP_N, 700)),
    )
}

/// The full probe set.
pub fn probes() -> Vec<Probe> {
    vec![
        Probe {
            name: "add_chain",
            annotated: add_chain_annotated,
            minic: add_chain_minic(),
        },
        Probe {
            name: "mul_heavy",
            annotated: mul_heavy_annotated,
            minic: mul_heavy_minic(),
        },
        Probe {
            name: "div_heavy",
            annotated: div_heavy_annotated,
            minic: div_heavy_minic(),
        },
        Probe {
            name: "mem_heavy",
            annotated: mem_heavy_annotated,
            minic: mem_heavy_minic(),
        },
        Probe {
            name: "branch_heavy",
            annotated: branch_heavy_annotated,
            minic: branch_heavy_minic(),
        },
        Probe {
            name: "call_heavy",
            annotated: call_heavy_annotated,
            minic: call_heavy_minic(),
        },
        Probe {
            name: "shift_logic",
            annotated: shift_logic_annotated,
            minic: shift_logic_minic(),
        },
        Probe {
            name: "cmp_heavy",
            annotated: cmp_heavy_annotated,
            minic: cmp_heavy_minic(),
        },
        Probe {
            name: "mixed_small",
            annotated: mixed_small_annotated,
            minic: mixed_small_minic(),
        },
        Probe {
            name: "mixed_large",
            annotated: mixed_large_annotated,
            minic: mixed_large_minic(),
        },
        Probe {
            name: "recurse",
            annotated: recurse_annotated,
            minic: recurse_minic(),
        },
        Probe {
            name: "ptr_array",
            annotated: ptr_array_annotated,
            minic: ptr_array_minic(),
        },
        Probe {
            name: "mac",
            annotated: mac_annotated,
            minic: mac_minic(),
        },
        Probe {
            name: "condswap",
            annotated: condswap_annotated,
            minic: condswap_minic(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_probes_agree_across_forms() {
        for p in probes() {
            let a = (p.annotated)();
            let (iss, cycles) = p.run_iss();
            assert_eq!(a, iss, "probe {} disagrees", p.name);
            assert!(cycles > 100, "probe {} too trivial", p.name);
        }
    }

    #[test]
    fn probe_names_are_unique() {
        let names: std::collections::HashSet<&str> = probes().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), probes().len());
    }
}
