//! Deterministic input-data generation shared by all three benchmark
//! forms.
//!
//! Every benchmark must process byte-identical inputs in its plain-Rust,
//! annotated and compiled-to-ISS variants, across runs and platforms, so
//! inputs come from a self-contained linear congruential generator rather
//! than an external RNG.

/// A 64-bit LCG (Knuth's MMIX constants) with helper draws.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1),
        }
    }

    /// Next raw 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 32) as u32
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        self.next_u32() % bound
    }

    /// Uniform signed value in `[-mag, mag]`.
    pub fn signed(&mut self, mag: u32) -> i32 {
        self.below(2 * mag + 1) as i32 - mag as i32
    }
}

/// `n` signed 32-bit values in `[-mag, mag]`.
pub fn signed_values(seed: u64, n: usize, mag: u32) -> Vec<i32> {
    let mut lcg = Lcg::new(seed);
    (0..n).map(|_| lcg.signed(mag)).collect()
}

/// `n` bytes of compressible text-like data: words drawn from a small
/// vocabulary over a 26-letter alphabet, separated by spaces.
pub fn text_like(seed: u64, n: usize) -> Vec<u8> {
    let mut lcg = Lcg::new(seed);
    // Build a 32-word vocabulary first.
    let vocab: Vec<Vec<u8>> = (0..32)
        .map(|_| {
            let len = 2 + lcg.below(7) as usize;
            (0..len).map(|_| b'a' + lcg.below(26) as u8).collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let w = &vocab[lcg.below(32) as usize];
        out.extend_from_slice(w);
        out.push(b' ');
    }
    out.truncate(n);
    out
}

/// Renders an `i32` slice as a minic `{…}` initializer list.
pub fn minic_initializer(values: &[i32]) -> String {
    let mut out = String::with_capacity(values.len() * 6 + 2);
    out.push('{');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push('}');
    out
}

/// Renders a byte slice as a minic `{…}` initializer list (one int per
/// byte).
pub fn minic_byte_initializer(values: &[u8]) -> String {
    let ints: Vec<i32> = values.iter().map(|&b| b as i32).collect();
    minic_initializer(&ints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let a: Vec<u32> = {
            let mut l = Lcg::new(7);
            (0..10).map(|_| l.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut l = Lcg::new(7);
            (0..10).map(|_| l.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut l = Lcg::new(8);
            (0..10).map(|_| l.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn signed_values_respect_magnitude() {
        let v = signed_values(3, 1000, 50);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| (-50..=50).contains(&x)));
        assert!(v.iter().any(|&x| x < 0));
        assert!(v.iter().any(|&x| x > 0));
    }

    #[test]
    fn text_like_is_compressible_ascii() {
        let t = text_like(11, 2048);
        assert_eq!(t.len(), 2048);
        assert!(t.iter().all(|&b| b == b' ' || b.is_ascii_lowercase()));
        // Vocabulary reuse implies repeated substrings: crude check via
        // distinct 4-grams being far fewer than the maximum possible.
        let grams: std::collections::HashSet<&[u8]> = t.windows(4).collect();
        assert!(grams.len() < t.len() / 2);
    }

    #[test]
    fn initializer_format() {
        assert_eq!(minic_initializer(&[1, -2, 3]), "{1,-2,3}");
        assert_eq!(minic_byte_initializer(&[65, 0]), "{65,0}");
    }
}
