//! Recursive Fibonacci benchmark (Table 1 row "Fibonacci"): the classic
//! call-overhead stress test.

use scperf_core::{g_call, g_i32, g_if, g_site, G};

/// The argument (fib(18) = 2584; ~8k recursive calls).
pub const N: i32 = 18;

fn fib_plain(n: i32) -> i32 {
    if n < 2 {
        return n;
    }
    fib_plain(n - 1).wrapping_add(fib_plain(n - 2))
}

/// Reference implementation.
pub fn plain() -> i32 {
    fib_plain(N)
}

fn fib_annotated(n: G<i32>) -> G<i32> {
    // `if (n < 2) return n;`
    let mut result = G::raw(0);
    let mut done = false;
    g_if!((n < 2) {
        result = n;
        done = true;
    });
    if done {
        return result;
    }
    let a = g_call!(fib_annotated(n - 1));
    let b = g_call!(fib_annotated(n - 2));
    a + b
}

/// Cost-annotated implementation.
pub fn annotated() -> i32 {
    let seed = g_i32(N);
    fib_annotated(seed).get()
}

fn fib_memo(n: G<i32>) -> G<i32> {
    // Whole-subtree memoization: the cost of fib(n) is a function of n
    // alone, so the entire body — prologue branch, recursive calls and
    // the final add — is one region keyed by n. Recording compiles one
    // program per depth, each referencing fib(n-1)/fib(n-2) as `Call`
    // instructions; a repeat of any depth is one program apply.
    g_site!((n.get() as u64) {
        let mut result = G::raw(0);
        let mut done = false;
        g_if!((n < 2) {
            result = n;
            done = true;
        });
        if done {
            result
        } else {
            let a = g_call!(fib_memo(n - 1));
            let b = g_call!(fib_memo(n - 2));
            a + b
        }
    })
}

/// Cost-annotated implementation with per-depth segment-site
/// memoization (charges exactly what [`annotated`] charges when
/// memoization is off).
pub fn memo() -> i32 {
    let seed = g_i32(N);
    fib_memo(seed).get()
}

/// `minic` source.
pub fn minic() -> String {
    format!(
        "int result;\n\
         int fib(int n) {{\n\
           if (n < 2) return n;\n\
           return fib(n - 1) + fib(n - 2);\n\
         }}\n\
         int main() {{ result = fib({N}); return 0; }}\n"
    )
}

/// The Table 1 case.
pub fn case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "Fibonacci",
        plain,
        annotated,
        minic: minic(),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use scperf_core::{MemoMode, ProgramSet};

    use super::*;
    use crate::case::run_memoized;

    #[test]
    fn three_forms_agree() {
        assert_eq!(plain(), 2584);
        assert_eq!(annotated(), 2584);
        let (iss, _) = case().run_iss();
        assert_eq!(iss, 2584);
    }

    #[test]
    fn memoized_recursion_is_bit_identical_and_round_trips() {
        let (live_v, live_r, live_h, _) = run_memoized(MemoMode::Off, None, memo);
        assert_eq!(live_v, 2584);
        assert_eq!(live_h.site_hits, 0);

        // The memoized form charges exactly what the plain annotated
        // form charges.
        let (ann_v, ann_r, _, _) = run_memoized(MemoMode::Off, None, annotated);
        assert_eq!(ann_v, 2584);
        assert_eq!(ann_r, live_r);

        // Replay: one recording miss per depth fib(0)..fib(18), every
        // other entry replays; bit-identical report.
        let (memo_v, memo_r, memo_h, set) = run_memoized(MemoMode::Replay, None, memo);
        assert_eq!(memo_v, 2584);
        assert_eq!(memo_r, live_r, "replay diverged from live");
        assert_eq!(memo_h.site_misses, (N + 1) as u64, "one miss per depth");
        assert!(memo_h.site_hits > 0);
        assert_eq!(set.len(), (N + 1) as usize, "one program per depth");

        let (ver_v, ver_r, _, _) = run_memoized(MemoMode::Verify, None, memo);
        assert_eq!(ver_v, 2584);
        assert_eq!(ver_r, live_r, "verify diverged from live");

        // Warm start from the serialized set: the recursive Call chain
        // resolves at compile time, so not a single depth records.
        let warm = Arc::new(ProgramSet::from_bytes(&set.to_bytes()).expect("decodes"));
        let (w_v, w_r, w_h, _) = run_memoized(MemoMode::Replay, Some(warm), memo);
        assert_eq!(w_v, 2584);
        assert_eq!(w_r, live_r, "warm replay diverged from live");
        assert_eq!(w_h.site_misses, 0, "warm set covers every depth");
        assert!(w_h.prog_warm_hits > 0);
    }
}
