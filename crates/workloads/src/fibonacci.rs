//! Recursive Fibonacci benchmark (Table 1 row "Fibonacci"): the classic
//! call-overhead stress test.

use scperf_core::{g_call, g_i32, g_if, G};

/// The argument (fib(18) = 2584; ~8k recursive calls).
pub const N: i32 = 18;

fn fib_plain(n: i32) -> i32 {
    if n < 2 {
        return n;
    }
    fib_plain(n - 1).wrapping_add(fib_plain(n - 2))
}

/// Reference implementation.
pub fn plain() -> i32 {
    fib_plain(N)
}

fn fib_annotated(n: G<i32>) -> G<i32> {
    // `if (n < 2) return n;`
    let mut result = G::raw(0);
    let mut done = false;
    g_if!((n < 2) {
        result = n;
        done = true;
    });
    if done {
        return result;
    }
    let a = g_call!(fib_annotated(n - 1));
    let b = g_call!(fib_annotated(n - 2));
    a + b
}

/// Cost-annotated implementation.
pub fn annotated() -> i32 {
    let seed = g_i32(N);
    fib_annotated(seed).get()
}

/// `minic` source.
pub fn minic() -> String {
    format!(
        "int result;\n\
         int fib(int n) {{\n\
           if (n < 2) return n;\n\
           return fib(n - 1) + fib(n - 2);\n\
         }}\n\
         int main() {{ result = fib({N}); return 0; }}\n"
    )
}

/// The Table 1 case.
pub fn case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "Fibonacci",
        plain,
        annotated,
        minic: minic(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_forms_agree() {
        assert_eq!(plain(), 2584);
        assert_eq!(annotated(), 2584);
        let (iss, _) = case().run_iss();
        assert_eq!(iss, 2584);
    }
}
