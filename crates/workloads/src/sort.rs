//! Sorting benchmarks: recursive quicksort (Table 1 row "Quick sort") and
//! bubble sort (Table 1 row "Bubble").
//!
//! Both sort the same deterministic data and use as checksum
//! `Σ (i+1)·a[i]` over the sorted array (wrapping), which is sensitive to
//! ordering mistakes.

use scperf_core::{g_call, g_for, g_i32, g_if, g_loop, g_site, g_while, GArr, G};

use crate::data::{minic_initializer, signed_values};

/// Quicksort input size.
pub const QSORT_N: usize = 512;
/// Bubble-sort input size.
pub const BUBBLE_N: usize = 128;

/// Quicksort input data.
pub fn qsort_input() -> Vec<i32> {
    signed_values(0x50, QSORT_N, 10_000)
}

/// Bubble-sort input data.
pub fn bubble_input() -> Vec<i32> {
    signed_values(0x51, BUBBLE_N, 10_000)
}

fn weighted_checksum(a: &[i32]) -> i32 {
    let mut s = 0_i32;
    for (i, &v) in a.iter().enumerate() {
        s = s.wrapping_add((i as i32 + 1).wrapping_mul(v));
    }
    s
}

// ---------------------------------------------------------------- plain --

fn qsort_plain(a: &mut [i32], lo: i32, hi: i32) {
    if lo >= hi {
        return;
    }
    // Lomuto partition, pivot = a[hi].
    let pivot = a[hi as usize];
    let mut i = lo - 1;
    let mut j = lo;
    while j < hi {
        if a[j as usize] < pivot {
            i += 1;
            a.swap(i as usize, j as usize);
        }
        j += 1;
    }
    a.swap((i + 1) as usize, hi as usize);
    let p = i + 1;
    qsort_plain(a, lo, p - 1);
    qsort_plain(a, p + 1, hi);
}

/// Reference quicksort.
pub fn qsort() -> i32 {
    let mut a = qsort_input();
    qsort_plain(&mut a, 0, QSORT_N as i32 - 1);
    weighted_checksum(&a)
}

/// Reference bubble sort.
pub fn bubble() -> i32 {
    let mut a = bubble_input();
    let n = a.len();
    for i in 0..n {
        for j in 0..n - 1 - i {
            if a[j] > a[j + 1] {
                a.swap(j, j + 1);
            }
        }
    }
    weighted_checksum(&a)
}

// ------------------------------------------------------------ annotated --

/// Mirrors the minic `qsort(int p, int lo, int hi)` statement by
/// statement.
fn qsort_annotated(a: &mut GArr<i32>, lo: G<i32>, hi: G<i32>) {
    let mut stop = false;
    g_if!((lo >= hi) { stop = true; }); // if (lo >= hi) return 0;
    if stop {
        return;
    }
    let mut pivot = G::raw(0_i32);
    pivot.assign(a.at_raw(hi.get() as usize)); // pivot = p[hi];
    let mut i = G::raw(0_i32);
    i.assign(lo - 1); // i = lo - 1;
    let mut j = G::raw(0_i32);
    j.assign(lo); // j = lo;
    g_while!((j < hi) {
        g_if!((a.at_raw(j.get() as usize) < pivot) {
            i.assign(i + 1); // i = i + 1;
            let mut t = G::raw(0_i32);
            t.assign(a.at_raw(i.get() as usize)); // t = p[i];
            a.set_raw(i.get() as usize, a.at_raw(j.get() as usize)); // p[i] = p[j];
            a.set_raw(j.get() as usize, t); // p[j] = t;
        });
        j.assign(j + 1); // j = j + 1;
    });
    let mut t = G::raw(0_i32);
    t.assign(a.at((i + 1).cast_usize())); // t = p[i + 1];
    a.set((i + 1).cast_usize(), a.at_raw(hi.get() as usize)); // p[i + 1] = p[hi];
    a.set_raw(hi.get() as usize, t); // p[hi] = t;
    g_call!(qsort_annotated(a, lo, i)); // qsort(p, lo, i);
    let hi2 = i + 2;
    g_call!(qsort_annotated(a, hi2, hi)); // qsort(p, i + 2, hi);
}

/// Annotated quicksort.
pub fn qsort_annotated_run() -> i32 {
    let mut a = GArr::from_vec(qsort_input());
    g_call!(qsort_annotated(&mut a, g_i32(0), g_i32(QSORT_N as i32 - 1)));
    let mut s = g_i32(0); // s = 0;
    g_for!(i in 0..QSORT_N => {
        // s = s + (i + 1) * a[i];
        let w = G::raw(i as i32) + G::raw(1);
        s.assign(s + w * a.at_raw(i));
    });
    s.get()
}

/// Annotated bubble sort (the minic form hoists the inner bound:
/// `m = N - 1 - i;`).
pub fn bubble_annotated_run() -> i32 {
    let mut a = GArr::from_vec(bubble_input());
    let n = BUBBLE_N;
    let mut m = G::raw(0_i32);
    g_for!(i in 0..n => {
        m.assign(G::raw(n as i32) - G::raw(1) - G::raw(i as i32)); // m = N - 1 - i;
        g_for!(j in 0..(n - 1 - i) => {
            let _ = &m;
            // if (a[j] > a[j + 1]) { ... }
            let jp = G::raw(j) + G::raw(1);
            g_if!((a.at_raw(j) > a.at(jp)) {
                let mut t = G::raw(0_i32);
                t.assign(a.at_raw(j)); // t = a[j];
                let jp2 = G::raw(j) + G::raw(1);
                a.set_raw(j, a.at(jp2)); // a[j] = a[j + 1];
                let jp3 = G::raw(j) + G::raw(1);
                a.set(jp3, t); // a[j + 1] = t;
            });
        });
    });
    let mut s = g_i32(0); // s = 0;
    g_for!(i in 0..n => {
        // s = s + (i + 1) * a[i];
        let w = G::raw(i as i32) + G::raw(1);
        s.assign(s + w * a.at_raw(i));
    });
    s.get()
}

// ----------------------------------------------------------- memoized --

/// [`qsort_annotated`] with segment-site memoization — the adversarial
/// case for cost-program keying: the recursion's extent and the
/// partition's swap pattern both depend on element *values*, so no key
/// derived from `(lo, hi)` is sound. Instead every data-dependent
/// branch is its own region keyed by the branch outcome (computed
/// uncharged via [`GArr::peek`]), and the straight-line stretches
/// between them are unkeyed regions; the charge stream within each
/// region is then fully determined by its key.
fn qsort_memo(a: &mut GArr<i32>, lo: G<i32>, hi: G<i32>) {
    let stop = lo.get() >= hi.get();
    g_site!((stop as u64) {
        g_if!((lo >= hi) {});
    });
    if stop {
        return;
    }
    let mut pivot = G::raw(0_i32);
    let mut i = G::raw(0_i32);
    let mut j = G::raw(0_i32);
    g_site!({
        pivot.assign(a.at_raw(hi.get() as usize)); // pivot = p[hi];
        i.assign(lo - 1); // i = lo - 1;
        j.assign(lo); // j = lo;
    });
    g_while!((j < hi) {
        let take = a.peek(j.get() as usize) < pivot.get();
        g_site!((take as u64) {
            g_if!((a.at_raw(j.get() as usize) < pivot) {
                i.assign(i + 1); // i = i + 1;
                let mut t = G::raw(0_i32);
                t.assign(a.at_raw(i.get() as usize)); // t = p[i];
                a.set_raw(i.get() as usize, a.at_raw(j.get() as usize)); // p[i] = p[j];
                a.set_raw(j.get() as usize, t); // p[j] = t;
            });
            j.assign(j + 1); // j = j + 1;
        });
    });
    g_site!({
        let mut t = G::raw(0_i32);
        t.assign(a.at((i + 1).cast_usize())); // t = p[i + 1];
        a.set((i + 1).cast_usize(), a.at_raw(hi.get() as usize)); // p[i + 1] = p[hi];
        a.set_raw(hi.get() as usize, t); // p[hi] = t;
    });
    g_call!(qsort_memo(a, lo, i)); // qsort(p, lo, i);
    let hi2 = i + 2;
    g_call!(qsort_memo(a, hi2, hi)); // qsort(p, i + 2, hi);
}

/// Memoized quicksort (charges exactly what [`qsort_annotated_run`]
/// charges when memoization is off).
pub fn qsort_memo_run() -> i32 {
    let mut a = GArr::from_vec(qsort_input());
    g_call!(qsort_memo(&mut a, g_i32(0), g_i32(QSORT_N as i32 - 1)));
    let mut s = g_i32(0); // s = 0;
    g_loop!(i in 0..QSORT_N => {
        // s = s + (i + 1) * a[i];
        let w = G::raw(i as i32) + G::raw(1);
        s.assign(s + w * a.at_raw(i));
    });
    s.get()
}

/// Memoized bubble sort: the inner-pass comparison is a region keyed by
/// the swap outcome (the only data-dependent branch), the checksum loop
/// is a whole-loop region.
pub fn bubble_memo_run() -> i32 {
    let mut a = GArr::from_vec(bubble_input());
    let n = BUBBLE_N;
    let mut m = G::raw(0_i32);
    g_for!(i in 0..n => {
        m.assign(G::raw(n as i32) - G::raw(1) - G::raw(i as i32)); // m = N - 1 - i;
        g_for!(j in 0..(n - 1 - i) => {
            let _ = &m;
            let take = a.peek(j) > a.peek(j + 1);
            g_site!((take as u64) {
                // if (a[j] > a[j + 1]) { ... }
                let jp = G::raw(j) + G::raw(1);
                g_if!((a.at_raw(j) > a.at(jp)) {
                    let mut t = G::raw(0_i32);
                    t.assign(a.at_raw(j)); // t = a[j];
                    let jp2 = G::raw(j) + G::raw(1);
                    a.set_raw(j, a.at(jp2)); // a[j] = a[j + 1];
                    let jp3 = G::raw(j) + G::raw(1);
                    a.set(jp3, t); // a[j + 1] = t;
                });
            });
        });
    });
    let mut s = g_i32(0); // s = 0;
    g_loop!(i in 0..n => {
        // s = s + (i + 1) * a[i];
        let w = G::raw(i as i32) + G::raw(1);
        s.assign(s + w * a.at_raw(i));
    });
    s.get()
}

// ---------------------------------------------------------------- minic --

/// Quicksort `minic` source.
pub fn qsort_minic() -> String {
    format!(
        "int a[{n}] = {init};\n\
         int result;\n\
         int qsort(int p, int lo, int hi) {{\n\
           int pivot; int i; int j; int t;\n\
           if (lo >= hi) return 0;\n\
           pivot = p[hi];\n\
           i = lo - 1;\n\
           j = lo;\n\
           while (j < hi) {{\n\
             if (p[j] < pivot) {{\n\
               i = i + 1;\n\
               t = p[i]; p[i] = p[j]; p[j] = t;\n\
             }}\n\
             j = j + 1;\n\
           }}\n\
           t = p[i + 1]; p[i + 1] = p[hi]; p[hi] = t;\n\
           qsort(p, lo, i);\n\
           qsort(p, i + 2, hi);\n\
           return 0;\n\
         }}\n\
         int main() {{\n\
           int i; int s = 0;\n\
           qsort(a, 0, {n} - 1);\n\
           for (i = 0; i < {n}; i = i + 1) s = s + (i + 1) * a[i];\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        n = QSORT_N,
        init = minic_initializer(&qsort_input()),
    )
}

/// Bubble-sort `minic` source.
pub fn bubble_minic() -> String {
    format!(
        "int a[{n}] = {init};\n\
         int result;\n\
         int main() {{\n\
           int i; int j; int t; int m; int s = 0;\n\
           for (i = 0; i < {n}; i = i + 1) {{\n\
             m = {n} - 1 - i;\n\
             for (j = 0; j < m; j = j + 1) {{\n\
               if (a[j] > a[j + 1]) {{\n\
                 t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;\n\
               }}\n\
             }}\n\
           }}\n\
           for (i = 0; i < {n}; i = i + 1) s = s + (i + 1) * a[i];\n\
           result = s;\n\
           return 0;\n\
         }}\n",
        n = BUBBLE_N,
        init = minic_initializer(&bubble_input()),
    )
}

/// The Table 1 quicksort case.
pub fn qsort_case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "Quick sort",
        plain: qsort,
        annotated: qsort_annotated_run,
        minic: qsort_minic(),
    }
}

/// The Table 1 bubble-sort case.
pub fn bubble_case() -> crate::case::BenchCase {
    crate::case::BenchCase {
        name: "Bubble",
        plain: bubble,
        annotated: bubble_annotated_run,
        minic: bubble_minic(),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use scperf_core::{MemoMode, ProgramSet};

    use super::*;
    use crate::case::run_memoized;

    #[test]
    fn quicksort_forms_agree_and_sort() {
        let mut reference = qsort_input();
        reference.sort_unstable();
        let expect = weighted_checksum(&reference);
        assert_eq!(qsort(), expect);
        assert_eq!(qsort_annotated_run(), expect);
        let (iss, _) = qsort_case().run_iss();
        assert_eq!(iss, expect);
    }

    #[test]
    fn bubble_forms_agree_and_sort() {
        let mut reference = bubble_input();
        reference.sort_unstable();
        let expect = weighted_checksum(&reference);
        assert_eq!(bubble(), expect);
        assert_eq!(bubble_annotated_run(), expect);
        let (iss, _) = bubble_case().run_iss();
        assert_eq!(iss, expect);
    }

    /// The adversarial data-dependent case: outcome-keyed sites keep
    /// quicksort's value-dependent recursion bit-identical across live,
    /// replay, verify and warm-started runs.
    #[test]
    fn memoized_quicksort_is_bit_identical_and_round_trips() {
        let mut reference = qsort_input();
        reference.sort_unstable();
        let expect = weighted_checksum(&reference);

        let (live_v, live_r, live_h, _) = run_memoized(MemoMode::Off, None, qsort_memo_run);
        assert_eq!(live_v, expect);
        assert_eq!(live_h.site_hits, 0);

        // Off-mode memo form charges exactly what the annotated form
        // charges.
        let (ann_v, ann_r, _, _) = run_memoized(MemoMode::Off, None, qsort_annotated_run);
        assert_eq!(ann_v, expect);
        assert_eq!(ann_r, live_r);

        let (memo_v, memo_r, memo_h, set) = run_memoized(MemoMode::Replay, None, qsort_memo_run);
        assert_eq!(memo_v, expect);
        assert_eq!(memo_r, live_r, "replay diverged from live");
        assert!(memo_h.site_hits > memo_h.site_misses * 10, "mostly hits");
        assert!(!set.is_empty());

        let (ver_v, ver_r, _, _) = run_memoized(MemoMode::Verify, None, qsort_memo_run);
        assert_eq!(ver_v, expect);
        assert_eq!(ver_r, live_r, "verify diverged from live");

        // Serialized warm start: every key was seen in the cold run, so
        // nothing records.
        let warm = Arc::new(ProgramSet::from_bytes(&set.to_bytes()).expect("decodes"));
        let (w_v, w_r, w_h, _) = run_memoized(MemoMode::Replay, Some(warm), qsort_memo_run);
        assert_eq!(w_v, expect);
        assert_eq!(w_r, live_r, "warm replay diverged from live");
        assert_eq!(w_h.site_misses, 0);
        assert!(w_h.prog_warm_hits > 0);
    }

    #[test]
    fn memoized_bubble_is_bit_identical_and_round_trips() {
        let mut reference = bubble_input();
        reference.sort_unstable();
        let expect = weighted_checksum(&reference);

        let (live_v, live_r, _, _) = run_memoized(MemoMode::Off, None, bubble_memo_run);
        assert_eq!(live_v, expect);

        let (memo_v, memo_r, memo_h, set) = run_memoized(MemoMode::Replay, None, bubble_memo_run);
        assert_eq!(memo_v, expect);
        assert_eq!(memo_r, live_r, "replay diverged from live");
        // Comparison site (2 keys) + checksum loop (1 key): 3 misses.
        assert_eq!(memo_h.site_misses, 3);
        assert!(memo_h.site_hits > 0);

        let (ver_v, ver_r, _, _) = run_memoized(MemoMode::Verify, None, bubble_memo_run);
        assert_eq!(ver_v, expect);
        assert_eq!(ver_r, live_r, "verify diverged from live");

        let warm = Arc::new(ProgramSet::from_bytes(&set.to_bytes()).expect("decodes"));
        let (w_v, w_r, w_h, _) = run_memoized(MemoMode::Replay, Some(warm), bubble_memo_run);
        assert_eq!(w_v, expect);
        assert_eq!(w_r, live_r, "warm replay diverged from live");
        assert_eq!(w_h.site_misses, 0);
        assert!(w_h.prog_warm_hits > 0);
    }
}
