//! Probe-driven cost-table calibration (the automated §5 step).
//!
//! "Library weights were obtained analyzing assembler code from several
//! functions specifically developed for this purpose and taking into
//! account microprocessor architectural characteristics." Here that step
//! is automated: every [`crate::probes`] kernel runs in both forms —
//! annotated (exact source-level operation counts) and `minic`-compiled on
//! the reference ISS (cycles) — and the per-operation costs are fitted by
//! least squares, with an intercept column absorbing constant program
//! overhead (entry stub, `main` prologue).

use scperf_core::{CostTable, Mode, OpCounts, PerfModel, Platform, ResourceKind};
use scperf_kernel::{Simulator, Time};

use crate::probes::{probes, Probe};

/// One probe's calibration record.
#[derive(Debug, Clone)]
pub struct ProbeRow {
    /// Probe name.
    pub name: &'static str,
    /// ISS reference cycles.
    pub iss_cycles: u64,
    /// Cycles predicted by the fitted table.
    pub fitted_cycles: f64,
    /// Relative error of the fit on this probe (%).
    pub err_pct: f64,
}

/// A complete calibration result.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The fitted cost table.
    pub table: CostTable,
    /// Constant per-program overhead absorbed by the intercept (cycles).
    pub intercept: f64,
    /// Goodness of fit over the probe set.
    pub r_squared: f64,
    /// Per-probe diagnostics.
    pub rows: Vec<ProbeRow>,
}

/// Collects the exact source-level operation counts of an annotated kernel
/// by running it as the only analyzed process of a throwaway model.
pub fn count_ops(body: fn() -> i32) -> (OpCounts, i32) {
    let mut platform = Platform::new();
    let cpu = platform.sequential("cal", Time::ns(10), CostTable::zero(), 0.0);
    assert_eq!(platform.resource(cpu).kind, ResourceKind::Sequential);
    let mut sim = Simulator::new();
    let model = PerfModel::new(platform, Mode::EstimateOnly);
    let value = std::sync::Arc::new(scperf_sync::Mutex::new(0_i32));
    {
        let value = std::sync::Arc::clone(&value);
        model.spawn(&mut sim, "probe", cpu, move |_ctx| {
            *value.lock() = body();
        });
    }
    sim.run().expect("count run");
    let counts = model.report().process("probe").expect("reported").counts;
    let v = *value.lock();
    (counts, v)
}

/// Calibrates the SW cost table from the standard probe set.
///
/// # Panics
///
/// Panics if a probe's two forms disagree on their checksum (a broken
/// fixture) or the fit is singular.
pub fn calibrate() -> Calibration {
    calibrate_with(&probes())
}

/// Calibrates from an explicit probe set (used by the ablation bench to
/// shrink the set).
///
/// # Panics
///
/// See [`calibrate`].
pub fn calibrate_with(probe_set: &[Probe]) -> Calibration {
    let mut rows_matrix: Vec<Vec<f64>> = Vec::new();
    let mut cycles: Vec<f64> = Vec::new();
    let mut iss_cycles_all: Vec<u64> = Vec::new();
    for p in probe_set {
        let (counts, value) = count_ops(p.annotated);
        let (iss_value, iss_cycles) = p.run_iss();
        assert_eq!(
            value, iss_value,
            "probe {} disagrees between annotated and ISS forms",
            p.name
        );
        let mut row: Vec<f64> = counts.as_dense().iter().map(|&c| c as f64).collect();
        row.push(1.0); // intercept
        rows_matrix.push(row);
        cycles.push(iss_cycles as f64);
        iss_cycles_all.push(iss_cycles);
    }
    let fit = scperf_iss::calibrate::fit(&rows_matrix, &cycles).expect("calibration fit");
    let table = CostTable::from_dense(&fit.costs[..scperf_core::OP_COUNT]);
    let intercept = fit.costs[scperf_core::OP_COUNT];
    let rows = probe_set
        .iter()
        .zip(&rows_matrix)
        .zip(&iss_cycles_all)
        .map(|((p, row), &iss)| {
            let fitted: f64 = row.iter().zip(&fit.costs).map(|(a, c)| a * c).sum();
            let err_pct = if iss == 0 {
                0.0
            } else {
                (fitted - iss as f64).abs() / iss as f64 * 100.0
            };
            ProbeRow {
                name: p.name,
                iss_cycles: iss,
                fitted_cycles: fitted,
                err_pct,
            }
        })
        .collect();
    Calibration {
        table,
        intercept,
        r_squared: fit.r_squared,
        rows,
    }
}

impl std::fmt::Display for Calibration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "calibrated cost table (cycles per operation):")?;
        for op in scperf_core::ALL_OPS {
            writeln!(f, "  {:<5} {:8.3}", op.to_string(), self.table[op])?;
        }
        writeln!(
            f,
            "  intercept {:.1} cycles, R^2 = {:.6}",
            self.intercept, self.r_squared
        )?;
        writeln!(
            f,
            "{:<14} {:>12} {:>12} {:>8}",
            "probe", "ISS cyc", "fit cyc", "err %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>12} {:>12.0} {:>8.2}",
                r.name, r.iss_cycles, r.fitted_cycles, r.err_pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_core::Op;

    #[test]
    fn calibration_fits_probe_set_well() {
        let cal = calibrate();
        assert!(
            cal.r_squared > 0.98,
            "poor calibration fit: R^2 = {}",
            cal.r_squared
        );
        // Division dominates everything else on an iterative divider.
        assert!(cal.table[Op::Div] > cal.table[Op::Add]);
        // All costs non-negative.
        for op in scperf_core::ALL_OPS {
            assert!(cal.table[op] >= 0.0);
        }
        // The fitted model explains each probe to within ~15 %.
        for row in &cal.rows {
            assert!(
                row.err_pct < 15.0,
                "probe {} fits poorly: {:.1}%",
                row.name,
                row.err_pct
            );
        }
    }

    #[test]
    fn count_ops_returns_checksum_and_counts() {
        let p = &probes()[0];
        let (counts, value) = count_ops(p.annotated);
        assert!(counts.total() > 0);
        assert_eq!(value, (p.annotated)());
    }
}
