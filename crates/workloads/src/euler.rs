//! Euler ODE integrator (Table 2 HW rows, Figure 4): a forward-Euler step
//! of the Van der Pol oscillator with harmonic forcing.
//!
//! One integration step is the natural hardware segment — it is the loop
//! body a behavioral synthesis tool would schedule:
//!
//! ```text
//! x' = v
//! v' = μ·(1 − x²)·v − x + A·sin(ω t)      (sin via 2-term series)
//! ```

use scperf_core::{g_call, g_f64, G};

/// Integration step size.
pub const H: f64 = 0.01;
/// Van der Pol damping.
pub const MU: f64 = 1.5;
/// Forcing amplitude.
pub const AMP: f64 = 0.8;
/// Forcing angular frequency.
pub const OMEGA: f64 = 2.0;
/// Steps integrated by the full benchmark.
pub const STEPS: usize = 2000;

/// One plain Euler step.
pub fn step_plain(x: f64, v: f64, t: f64) -> (f64, f64) {
    // 2-term sine series around 0 after range reduction to [-π, π).
    let phase = OMEGA * t;
    let reduced = phase
        - (phase / (2.0 * std::f64::consts::PI)).floor() * 2.0 * std::f64::consts::PI
        - std::f64::consts::PI;
    let s = -(reduced - reduced * reduced * reduced / 6.0);
    let force = AMP * s;
    let dv = MU * (1.0 - x * x) * v - x + force;
    (x + H * v, v + H * dv)
}

/// Reference implementation: integrates the oscillator and returns a
/// fixed-point checksum of the final state.
pub fn plain() -> i32 {
    let (mut x, mut v) = (0.5_f64, 0.0_f64);
    for n in 0..STEPS {
        let t = n as f64 * H;
        let (nx, nv) = step_plain(x, v, t);
        x = nx;
        v = nv;
    }
    ((x * 4096.0) as i32).wrapping_add(((v * 4096.0) as i32).wrapping_mul(31))
}

fn sin_series(reduced: G<f64>) -> G<f64> {
    -(reduced - reduced * reduced * reduced / 6.0)
}

/// One annotated Euler step (the HW segment of Tables 2/4 and Figure 4).
pub fn step_annotated(x: G<f64>, v: G<f64>, t: G<f64>) -> (G<f64>, G<f64>) {
    let two_pi = G::raw(2.0 * std::f64::consts::PI);
    let phase = G::raw(OMEGA) * t;
    // floor() has no dataflow cost model of its own; treat the range
    // reduction division + multiply + subtract as the charged operations.
    let k = G::raw((phase.get() / (2.0 * std::f64::consts::PI)).floor());
    let reduced = phase - k * two_pi - G::raw(std::f64::consts::PI);
    let s = g_call!(sin_series(reduced));
    let force = G::raw(AMP) * s;
    let one = G::raw(1.0);
    let dv = G::raw(MU) * (one - x * x) * v - x + force;
    (x + G::raw(H) * v, v + G::raw(H) * dv)
}

/// Cost-annotated implementation.
pub fn annotated() -> i32 {
    let mut x = g_f64(0.5);
    let mut v = g_f64(0.0);
    for n in 0..STEPS {
        let t = G::raw(n as f64 * H);
        let (nx, nv) = step_annotated(x, v, t);
        x = nx;
        v = nv;
    }
    ((x.get() * 4096.0) as i32).wrapping_add(((v.get() * 4096.0) as i32).wrapping_mul(31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_annotated_agree() {
        assert_eq!(plain(), annotated());
    }

    #[test]
    fn trajectory_stays_bounded() {
        // The forced Van der Pol oscillator settles on a bounded orbit;
        // a blow-up would indicate a broken integrator.
        let (mut x, mut v) = (0.5, 0.0);
        for n in 0..STEPS {
            let (nx, nv) = step_plain(x, v, n as f64 * H);
            x = nx;
            v = nv;
            assert!(x.abs() < 10.0 && v.abs() < 10.0, "diverged at step {n}");
        }
    }

    #[test]
    fn single_step_matches_between_forms() {
        let (px, pv) = step_plain(0.3, -0.2, 1.7);
        let (ax, av) = step_annotated(G::raw(0.3), G::raw(-0.2), G::raw(1.7));
        assert_eq!(px, ax.get());
        assert_eq!(pv, av.get());
    }
}
