//! Scheduler-equivalence tests: the direct park/unpark handoff and the
//! condvar run-baton fallback must be *observationally identical* on a
//! real workload — same functional output, same [`SimSummary`], and a
//! bit-identical functional trace. Anything less means the hot-path
//! rewrite changed simulation semantics, not just host performance.

use scperf_kernel::trace::functional_projection;
use scperf_kernel::{HandoffKind, SimOptions, SimSummary, Time, TraceMode};
use scperf_workloads::vocoder::pipeline::build_plain;

const NFRAMES: usize = 12;

fn run_vocoder(kind: HandoffKind) -> (i32, SimSummary, Vec<(String, String, String)>) {
    run_vocoder_jobs(kind, 1)
}

fn run_vocoder_jobs(
    kind: HandoffKind,
    jobs: usize,
) -> (i32, SimSummary, Vec<(String, String, String)>) {
    let mut sim = SimOptions::new()
        .handoff(kind)
        .jobs(jobs)
        .tracing(TraceMode::Unbounded)
        .build();
    let out = build_plain(&mut sim, NFRAMES);
    let summary = sim.run().expect("vocoder runs to completion");
    let chk = out.lock().expect("sink produced a checksum");
    (chk, summary, functional_projection(&sim.take_trace()))
}

/// The five-stage vocoder pipeline — blocking FIFOs all the way through —
/// is the paper's own case study and the strongest available stressor of
/// scheduler↔process round trips.
#[test]
fn vocoder_trace_is_bit_identical_across_handoffs() {
    let (chk_d, sum_d, trace_d) = run_vocoder(HandoffKind::Direct);
    let (chk_c, sum_c, trace_c) = run_vocoder(HandoffKind::CondvarBaton);
    assert_eq!(chk_d, chk_c, "functional checksum diverged");
    assert_eq!(sum_d, sum_c, "summary diverged");
    assert_eq!(trace_d, trace_c, "functional trace diverged");
}

/// The same vocoder under parallel evaluation (`jobs ∈ {2, 8}`) must
/// reproduce the sequential run exactly: same checksum, same summary,
/// same functional trace. This is the paper-case-study instance of the
/// determinism contract in `docs/PARALLELISM.md`.
#[test]
fn vocoder_trace_is_bit_identical_across_jobs() {
    let (chk_1, sum_1, trace_1) = run_vocoder_jobs(HandoffKind::Direct, 1);
    for jobs in [2usize, 8] {
        let (chk_j, sum_j, trace_j) = run_vocoder_jobs(HandoffKind::Direct, jobs);
        assert_eq!(chk_1, chk_j, "functional checksum diverged at jobs={jobs}");
        assert_eq!(sum_1, sum_j, "summary diverged at jobs={jobs}");
        assert_eq!(trace_1, trace_j, "functional trace diverged at jobs={jobs}");
    }
}

/// A timed synthetic pipeline mixing wait(time) storms with blocking
/// channel traffic: timer ordering comes from the new time wheel, wakeup
/// delivery from the new handoff — both must reproduce the condvar
/// baseline exactly.
#[test]
fn timed_pipeline_is_bit_identical_across_handoffs() {
    fn run(kind: HandoffKind) -> (SimSummary, Vec<(String, String, String)>) {
        let mut sim = SimOptions::new().handoff(kind).build();
        sim.enable_tracing();
        let ch = sim.fifo::<u64>("stage", 3);
        for p in 0..4u64 {
            let tx = ch.clone();
            sim.spawn(format!("gen{p}"), move |ctx| {
                let mut x = p + 1;
                for _ in 0..32 {
                    // Deterministic pseudo-random waits, different per
                    // generator, some colliding at the same instant.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    ctx.wait(Time::ns(x % 97));
                    tx.write(ctx, x);
                }
            });
        }
        let rx = ch;
        sim.spawn("fold", move |ctx| {
            let mut chk = 0u64;
            for i in 0..128 {
                chk = chk.wrapping_mul(1099511628211).wrapping_add(rx.read(ctx));
                if i % 16 == 15 {
                    ctx.emit_trace("chk", chk.to_string());
                }
            }
        });
        let summary = sim.run().expect("runs");
        (summary, functional_projection(&sim.take_trace()))
    }

    let (sum_d, trace_d) = run(HandoffKind::Direct);
    let (sum_c, trace_c) = run(HandoffKind::CondvarBaton);
    assert_eq!(sum_d, sum_c);
    assert_eq!(trace_d, trace_c);
}
