//! Property tests: the three forms of each vocoder stage agree on
//! arbitrary (not just the canonical synthetic) input frames, and the DSP
//! keeps its numeric invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_core::{GArr, G};
use scperf_workloads::vocoder::{stages, FRAME, MAX_LAG, MIN_LAG, ORDER};

fn frame_strategy() -> impl Strategy<Value = Vec<i32>> {
    vec(-2047_i32..=2047, FRAME..=FRAME)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LSP estimation: plain and annotated agree on random frames, and
    /// the reflection-derived coefficients stay bounded.
    #[test]
    fn lsp_agrees_on_random_frames(frame in frame_strategy()) {
        let p = stages::lsp_plain(&frame);
        let mut chk = G::raw(0_i32);
        let a = stages::lsp_annotated(&GArr::from_slice(&frame), &mut chk);
        prop_assert_eq!(&p, a.as_slice());
        for c in &p {
            prop_assert!(c.abs() <= 3 * 4096, "coefficient {c} out of range");
        }
    }

    /// The whole per-frame chain agrees between plain and annotated for
    /// random frames and random (bounded) LPC state.
    #[test]
    fn full_stage_chain_agrees(frames in vec(frame_strategy(), 1..3)) {
        let mut lp_p = stages::LpcIntState::new();
        let mut prev_a = GArr::<i32>::zeroed(ORDER);
        let mut acb_p = stages::AcbState::new();
        let mut hist_a = GArr::<i32>::zeroed(MAX_LAG);
        let mut post_p = stages::PostState::new();
        let mut hist_post = GArr::<i32>::zeroed(ORDER);
        let mut deemph = G::raw(0_i32);
        let mut chk = G::raw(0_i32);
        for frame in &frames {
            let lpc = stages::lsp_plain(frame);
            let aq_p = stages::lpcint_plain(&mut lp_p, &lpc);
            let aq_a = stages::lpcint_annotated(&mut prev_a, &GArr::from_slice(&lpc), &mut chk);
            prop_assert_eq!(&aq_p, aq_a.as_slice());

            let (res_p, acbc_p, lags_p, gains_p) = stages::acb_plain(&mut acb_p, frame, &aq_p);
            let (res_a, acbc_a, lags_a, gains_a) = stages::acb_annotated(
                &mut hist_a,
                &GArr::from_slice(frame),
                &GArr::from_slice(&aq_p),
                &mut chk,
            );
            prop_assert_eq!(&res_p, res_a.as_slice());
            prop_assert_eq!(&acbc_p, acbc_a.as_slice());
            prop_assert_eq!(&lags_p, lags_a.as_slice());
            prop_assert_eq!(&gains_p, gains_a.as_slice());
            for &l in &lags_p {
                prop_assert!((MIN_LAG as i32..=MAX_LAG as i32).contains(&l));
            }
            for &g in &gains_p {
                prop_assert!((-8191..=8191).contains(&g));
            }

            let exc_p = stages::icb_plain(&res_p, &acbc_p);
            let exc_a = stages::icb_annotated(
                &GArr::from_slice(&res_p),
                &GArr::from_slice(&acbc_p),
                &mut chk,
            );
            prop_assert_eq!(&exc_p, exc_a.as_slice());

            let out_p = stages::post_plain(&mut post_p, &aq_p, &exc_p);
            let out_a = stages::post_annotated(
                &mut hist_post,
                &mut deemph,
                &GArr::from_slice(&aq_p),
                &GArr::from_slice(&exc_p),
                &mut chk,
            );
            prop_assert_eq!(&out_p, out_a.as_slice());
            // Output stays in 16-bit audio range.
            for &v in &out_p {
                prop_assert!((-32767..=32767).contains(&v));
            }
        }
    }

    /// The residual is always clamped to the 13-bit excitation range.
    #[test]
    fn residual_is_clamped(frame in frame_strategy()) {
        let mut st = stages::AcbState::new();
        let lpc = stages::lsp_plain(&frame);
        let mut lp = stages::LpcIntState::new();
        let aq = stages::lpcint_plain(&mut lp, &lpc);
        let (res, _, _, _) = stages::acb_plain(&mut st, &frame, &aq);
        for &v in &res {
            prop_assert!((-4095..=4095).contains(&v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sequential Table 1 benchmarks are deterministic: calling any
    /// form twice yields the same checksum (guards against hidden state).
    #[test]
    fn benchmarks_are_repeatable(idx in 0_usize..6) {
        let cases = scperf_workloads::table1_cases();
        let case = &cases[idx];
        prop_assert_eq!((case.plain)(), (case.plain)());
        prop_assert_eq!((case.annotated)(), (case.annotated)());
    }
}
