//! The sweep orchestrator: evaluate every mapping, in parallel, with
//! memoized segment costs, and extract the Pareto frontier.

use std::sync::atomic::{AtomicU64, Ordering};

use scperf_core::{table_fingerprint, CostTable, SimConfig};
use scperf_obs::MetricsSnapshot;
use scperf_workloads::vocoder::pipeline::{self, StageTrace, STAGE_NAMES};

use crate::cache::{CacheStats, SegmentCostCache};
use crate::pareto::pareto;
use crate::point::{
    all_mappings, build_platform, platform_cost, resolve_mapping, DesignPoint, Target,
};
use crate::pool::{run_indexed, PoolStats};

/// Configuration of one design-space sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Software cost table shared by cpu0/cpu1 (the accelerator always
    /// uses [`CostTable::asic_hw`]).
    pub table: CostTable,
    /// Frames pushed through the vocoder per point.
    pub nframes: usize,
    /// Worker threads; `1` is the sequential oracle (no pool, no
    /// spawned threads).
    pub jobs: usize,
    /// Evaluate-phase parallelism *inside* each point's simulation
    /// (forwarded to `SimConfig::jobs`); `1` is the sequential kernel.
    /// Composes with `jobs`: the sweep fans points over its pool while
    /// each simulation spreads wide delta cycles over its own workers.
    /// Results are bit-identical for any value — the contract is
    /// documented in `docs/PARALLELISM.md`.
    pub kernel_jobs: usize,
    /// Whether to memoize segment-cost traces across points.
    pub use_cache: bool,
    /// Evaluate only the first `limit` mappings (in canonical point
    /// order) instead of all 243 — for tests and doc examples. `None`
    /// sweeps everything.
    pub limit: Option<usize>,
    /// Charge through the legacy `RefCell` context instead of the flat
    /// thread-local fast path. Estimates are bit-identical either way;
    /// this exists as an A/B switch for benchmarks and regression tests.
    pub legacy_charging: bool,
    /// A serialized program blob ([`SweepResult::programs_out`] from an
    /// earlier sweep, possibly another process) to warm-start the
    /// segment-site cost programs from. Ignored when `use_cache` is
    /// off; a malformed blob is skipped (the sweep then records live,
    /// which is always bit-identical).
    pub programs_in: Option<Vec<u8>>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            table: CostTable::risc_sw(),
            nframes: 1,
            jobs: 1,
            kernel_jobs: 1,
            use_cache: true,
            limit: None,
            legacy_charging: false,
            programs_in: None,
        }
    }
}

/// Aggregated segment-site cost-program accounting of one sweep (summed
/// over every evaluated point's estimator; all zeros when the cache is
/// off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgStats {
    /// Site regions satisfied by replaying a compiled program.
    pub hits: u64,
    /// Site regions that recorded a fresh program.
    pub misses: u64,
    /// Local misses satisfied by compiling a shared warm-set program.
    pub warm_hits: u64,
    /// Warm sets rejected for a cost-table fingerprint mismatch.
    pub rejects: u64,
    /// Programs imported from [`SweepConfig::programs_in`].
    pub imported: u64,
}

/// Thread-safe accumulator behind [`ProgStats`].
#[derive(Debug, Default)]
struct ProgCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    warm_hits: AtomicU64,
    rejects: AtomicU64,
}

impl ProgCounters {
    fn absorb(&self, h: &scperf_core::EstHotStats) {
        self.hits.fetch_add(h.site_hits, Ordering::Relaxed);
        self.misses.fetch_add(h.site_misses, Ordering::Relaxed);
        self.warm_hits
            .fetch_add(h.prog_warm_hits, Ordering::Relaxed);
        self.rejects.fetch_add(h.prog_rejects, Ordering::Relaxed);
    }

    fn snapshot(&self, imported: u64) -> ProgStats {
        ProgStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            imported,
        }
    }
}

/// Everything a sweep produces.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One point per evaluated mapping, in canonical point order
    /// ([`all_mappings`]) — identical for every worker count.
    pub points: Vec<DesignPoint>,
    /// The Pareto frontier over (latency, cost).
    pub frontier: Vec<DesignPoint>,
    /// Segment-cost cache accounting (all zeros when the cache is off).
    pub cache: CacheStats,
    /// Segment-site cost-program accounting.
    pub prog: ProgStats,
    /// The compiled program sets harvested across the sweep, serialized
    /// for [`SweepConfig::programs_in`] of a later sweep — empty when
    /// the cache is off. Stable across processes and machines.
    pub programs_out: Vec<u8>,
    /// Worker/steal counters from the pool.
    pub pool: PoolStats,
}

impl SweepResult {
    /// The sweep's observability counters (`dse.points`,
    /// `dse.pool.workers`, `dse.pool.steals`, `dse.cache.*`).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set_counter("dse.points", self.points.len() as u64);
        m.set_counter("dse.frontier", self.frontier.len() as u64);
        m.set_counter("dse.pool.workers", self.pool.workers as u64);
        m.set_counter("dse.pool.steals", self.pool.steals);
        m.set_counter("dse.cache.hits", self.cache.hits);
        m.set_counter("dse.cache.misses", self.cache.misses);
        m.set_counter("dse.cache.entries", self.cache.entries as u64);
        m.set_gauge("dse.cache.hit_rate", self.cache.hit_rate());
        m.set_counter("est.cache.evictions", self.cache.evictions);
        m.set_counter("est.prog.hits", self.prog.hits);
        m.set_counter("est.prog.misses", self.prog.misses);
        m.set_counter("est.prog.warm_hits", self.prog.warm_hits);
        m.set_counter("est.prog.rejects", self.prog.rejects);
        m.set_counter("est.prog.published", self.cache.programs as u64);
        m
    }
}

/// Simulates one mapping strict-timed and returns its design point.
///
/// With a cache, each stage first looks up a recorded per-segment cycle
/// trace for `(stage, resource fingerprint, nframes)`; hit stages run in
/// replay mode (plain implementations, recorded cycles — bit-identical
/// timing, none of the annotation overhead), miss stages run annotated
/// with trace recording on and publish their traces afterwards.
pub fn evaluate(
    table: &CostTable,
    mapping: [Target; 5],
    nframes: usize,
    cache: Option<&SegmentCostCache>,
) -> DesignPoint {
    evaluate_with(table, mapping, nframes, cache, false, 1, None)
}

fn evaluate_with(
    table: &CostTable,
    mapping: [Target; 5],
    nframes: usize,
    cache: Option<&SegmentCostCache>,
    legacy_charging: bool,
    kernel_jobs: usize,
    prog: Option<&ProgCounters>,
) -> DesignPoint {
    let (platform, ids) = build_platform(table);
    let vm = resolve_mapping(mapping, ids);
    let stage_resources = [vm.lsp, vm.lpc_int, vm.acb, vm.icb, vm.post];

    let mut replays: [StageTrace; 5] = [None, None, None, None, None];
    let mut fingerprints = [0_u64; 5];
    if let Some(cache) = cache {
        for (stage, &rid) in stage_resources.iter().enumerate() {
            let fp = SegmentCostCache::fingerprint(platform.resource(rid), nframes);
            fingerprints[stage] = fp;
            replays[stage] = cache.get(stage, fp);
        }
    }
    let missing: Vec<usize> = (0..5).filter(|&s| replays[s].is_none()).collect();

    let mut config = SimConfig::new()
        .platform(platform)
        .legacy_charging(legacy_charging)
        .jobs(kernel_jobs);
    // Warm-start the segment-site cost programs from the shared set for
    // the SW cost table (memoization only engages on sequential
    // resources, and cpu0/cpu1 share `table`).
    if let Some(cache) = cache {
        if let Some(set) = cache.programs(table_fingerprint(table)) {
            config = config.program_set(set);
        }
    }
    let mut session = config.build();
    let recorder = (cache.is_some() && !missing.is_empty()).then(|| session.recorder());
    let (sim, model) = session.parts_mut();
    let handles = pipeline::build_hybrid(sim, model, vm, nframes, replays);
    let summary = session.run().expect("mapping simulates");

    if let (Some(cache), Some(recorder)) = (cache, recorder) {
        for &stage in &missing {
            let trace = recorder
                .replay(STAGE_NAMES[stage])
                .expect("trace recorded for live stage");
            cache.insert(stage, fingerprints[stage], trace);
        }
    }
    if let Some(cache) = cache {
        cache.publish_programs(&session.programs());
    }
    if let Some(prog) = prog {
        prog.absorb(&session.model().hot_stats());
    }

    let checksum = handles.output.lock().expect("sink finished");
    DesignPoint {
        mapping,
        latency: summary.end_time,
        cost: platform_cost(&mapping),
        checksum,
    }
}

/// Explores the mapping space per `config`: fans the points over the
/// work-stealing pool, collects them in canonical order and extracts the
/// Pareto frontier.
///
/// Determinism guarantee: for a fixed `config` modulo `jobs` and
/// `use_cache`, the returned points and frontier are bitwise identical —
/// replayed traces reproduce live estimation exactly, and results are
/// ordered by point index, not completion order.
pub fn sweep(config: &SweepConfig) -> SweepResult {
    let mut mappings = all_mappings();
    if let Some(limit) = config.limit {
        mappings.truncate(limit);
    }
    let cache = config.use_cache.then(SegmentCostCache::new);
    let imported = match (&cache, &config.programs_in) {
        (Some(cache), Some(blob)) => cache.import_programs(blob).unwrap_or(0) as u64,
        _ => 0,
    };
    let prog_counters = ProgCounters::default();
    let (points, pool) = run_indexed(config.jobs, mappings.len(), |i| {
        let _span = scperf_obs::profile::span("dse.evaluate");
        evaluate_with(
            &config.table,
            mappings[i],
            config.nframes,
            cache.as_ref(),
            config.legacy_charging,
            config.kernel_jobs,
            Some(&prog_counters),
        )
    });

    // Every point — live or replayed — must have produced the same
    // decoded output; a mismatch means a stale or mis-keyed cache entry.
    if let Some(first) = points.first() {
        for p in &points {
            assert_eq!(
                p.checksum,
                first.checksum,
                "mapping {} produced different data",
                p.mapping_label()
            );
        }
    }

    let frontier = pareto(&points);
    let empty = CacheStats {
        hits: 0,
        misses: 0,
        entries: 0,
        evictions: 0,
        programs: 0,
    };
    SweepResult {
        frontier,
        cache: cache.as_ref().map(|c| c.stats()).unwrap_or(empty),
        prog: prog_counters.snapshot(imported),
        programs_out: cache.map(|c| c.export_programs()).unwrap_or_default(),
        pool,
        points,
    }
}

/// Renders the exploration summary: fastest mappings, the all-SW
/// baseline and the Pareto frontier.
pub fn format_summary(result: &SweepResult, nframes: usize) -> String {
    use std::fmt::Write;
    let points = &result.points;
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.latency.cmp(&b.latency).then(a.cost.total_cmp(&b.cost)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Design-space exploration: {} mappings of {{{}}} onto {{cpu0, cpu1, hw}}, {nframes} frames",
        points.len(),
        STAGE_NAMES.join(", ")
    );
    let _ = writeln!(out, "\nfastest 5 mappings:");
    for p in sorted.iter().take(5) {
        let _ = writeln!(
            out,
            "  {:<28} latency {:>14}  cost {:>4.1}",
            p.mapping_label(),
            p.latency.to_string(),
            p.cost
        );
    }
    if let Some(all_cpu0) = points
        .iter()
        .find(|p| p.mapping.iter().all(|&t| t == Target::Cpu0))
    {
        let _ = writeln!(out, "\nall-SW baseline:");
        let _ = writeln!(
            out,
            "  {:<28} latency {:>14}  cost {:>4.1}",
            all_cpu0.mapping_label(),
            all_cpu0.latency.to_string(),
            all_cpu0.cost
        );
    }
    let _ = writeln!(out, "\nPareto frontier (latency vs cost):");
    for p in &result.frontier {
        let _ = writeln!(
            out,
            "  {:<28} latency {:>14}  cost {:>4.1}",
            p.mapping_label(),
            p.latency.to_string(),
            p.cost
        );
    }
    let stats = &result.cache;
    if stats.hits + stats.misses > 0 {
        let _ = writeln!(
            out,
            "\nsegment-cost cache: {} hits / {} misses ({:.1}% hit rate), {} traces",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.entries
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_kernel::Time;

    #[test]
    fn single_point_evaluates_and_prices_resources() {
        let table = CostTable::risc_sw();
        let p = evaluate(&table, [Target::Cpu0; 5], 2, None);
        assert!(p.latency > Time::ZERO);
        assert_eq!(p.cost, 1.0);
        let q = evaluate(
            &table,
            [
                Target::Cpu0,
                Target::Cpu1,
                Target::Hw,
                Target::Cpu0,
                Target::Cpu1,
            ],
            2,
            None,
        );
        assert_eq!(q.cost, 4.5);
        assert_eq!(q.mapping_label(), "cpu0/cpu1/hw/cpu0/cpu1");
        assert_eq!(p.checksum, q.checksum, "mapping must not change data");
    }

    #[test]
    fn offloading_the_acb_beats_all_sw() {
        let table = CostTable::risc_sw();
        let all_sw = evaluate(&table, [Target::Cpu0; 5], 2, None);
        let mut offloaded = [Target::Cpu0; 5];
        offloaded[2] = Target::Hw; // ACB search
        let point = evaluate(&table, offloaded, 2, None);
        assert!(point.latency < all_sw.latency);
    }

    #[test]
    fn cached_evaluation_is_bit_identical_to_live() {
        let table = CostTable::risc_sw();
        let cache = SegmentCostCache::new();
        let mappings = [[Target::Cpu0; 5], [Target::Cpu1; 5], {
            let mut m = [Target::Cpu0; 5];
            m[2] = Target::Hw;
            m
        }];
        for mapping in mappings {
            let live = evaluate(&table, mapping, 1, None);
            let cached = evaluate(&table, mapping, 1, Some(&cache));
            assert_eq!(cached, live, "first (recording) pass must match live");
            let replayed = evaluate(&table, mapping, 1, Some(&cache));
            assert_eq!(replayed, live, "replayed pass must match live");
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "second passes must hit");
        // cpu0 and cpu1 share a cost table, so the all-cpu1 point reuses
        // the all-cpu0 traces: 5 stage fingerprints for cpu runs + 1 for
        // the hw-mapped ACB stage.
        assert_eq!(stats.entries, 6);
    }

    #[test]
    fn small_sweep_is_deterministic_across_jobs_and_cache() {
        let base = SweepConfig {
            nframes: 1,
            jobs: 1,
            use_cache: false,
            limit: Some(12),
            ..SweepConfig::default()
        };
        let reference = sweep(&base);
        assert_eq!(reference.points.len(), 12);
        for (jobs, use_cache) in [(1, true), (3, false), (3, true), (8, true)] {
            let got = sweep(&SweepConfig {
                jobs,
                use_cache,
                ..base.clone()
            });
            assert_eq!(
                got.points, reference.points,
                "jobs={jobs} cache={use_cache}"
            );
            assert_eq!(got.frontier, reference.frontier);
        }
    }

    /// The PR 10 acceptance scenario: a sweep warm-started from a
    /// previous sweep's serialized program blob — the cross-process
    /// persistence path — produces a bit-identical Pareto frontier
    /// while replaying compiled programs instead of re-recording.
    #[test]
    fn warm_started_sweep_matches_cold_bit_for_bit() {
        let base = SweepConfig {
            nframes: 1,
            jobs: 2,
            use_cache: true,
            limit: Some(10),
            ..SweepConfig::default()
        };
        let cold = sweep(&base);
        assert!(cold.prog.hits > 0, "memoized sites must replay");
        assert!(cold.prog.misses > 0, "cold sweep records programs");
        assert!(!cold.programs_out.is_empty(), "programs serialize");
        assert!(cold.cache.programs > 0);

        let warm = sweep(&SweepConfig {
            programs_in: Some(cold.programs_out.clone()),
            ..base
        });
        assert_eq!(warm.points, cold.points, "warm sweep changed a point");
        assert_eq!(warm.frontier, cold.frontier, "frontier not bit-identical");
        assert!(warm.prog.imported > 0, "blob imports");
        assert!(warm.prog.warm_hits > 0, "warm programs must be used");
        assert!(warm.prog.hits > 0);
        assert!(
            warm.prog.misses < cold.prog.misses,
            "warm start must reduce recording"
        );
        assert_eq!(
            warm.metrics().counter("est.prog.hits"),
            Some(warm.prog.hits)
        );
    }

    #[test]
    fn legacy_charging_is_bit_identical_to_the_fast_path() {
        let base = SweepConfig {
            nframes: 1,
            jobs: 2,
            use_cache: false,
            limit: Some(8),
            ..SweepConfig::default()
        };
        let fast = sweep(&base);
        let legacy = sweep(&SweepConfig {
            legacy_charging: true,
            ..base
        });
        assert_eq!(legacy.points, fast.points);
        assert_eq!(legacy.frontier, fast.frontier);
    }
}
