//! Shared segment-cost memoization cache.
//!
//! The key soundness argument (and the reason DSE can go much faster
//! than naively re-simulating 243 points): a vocoder stage's per-segment
//! cycle trace is a pure function of the stage's code, its input data
//! and the *cost model of the resource it is mapped to* — it does not
//! depend on where the other four stages are mapped, because inter-stage
//! coupling happens only through the scheduler (when segments run), not
//! through what each segment costs. Recording the trace once per
//! `(stage, resource fingerprint, workload size)` with a
//! [`scperf_core::Recorder`] and replaying it via
//! [`scperf_core::PerfModel::spawn_replaying`] therefore reproduces
//! every later evaluation bit-exactly while skipping all
//! operator-overloading work.
//!
//! The fingerprint hashes everything the annotation depends on: resource
//! kind, clock period, the dense per-operation cost table (bit pattern),
//! the HW time-area weight `k`, the RTOS overhead and the frame count.
//! Two processors sharing one cost table (cpu0/cpu1 here) fingerprint
//! identically and share entries.
//!
//! The cache is **bounded**: beyond [`SegmentCostCache::capacity`]
//! entries, an insert evicts the least-recently-used trace (counted in
//! [`CacheStats::evictions`] / `est.cache.evictions`), so diverse serve
//! traffic cannot grow it without bound. Eviction is harmless for
//! correctness — a re-recorded trace is bit-identical.
//!
//! Besides per-stage traces the cache also stores compiled
//! [`ProgramSet`]s — the serializable segment-site cost programs of
//! PR 10 — keyed by their cost-table fingerprint, so every sweep worker
//! and pooled serve session warm-starts from one shared compiled set
//! instead of re-recording per worker. Sets persist across processes via
//! [`SegmentCostCache::export_programs`] /
//! [`SegmentCostCache::import_programs`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scperf_core::{ProgDecodeError, ProgramSet, Replay, Resource, ResourceKind};
use scperf_obs::MetricsSnapshot;
use scperf_sync::RwLock;

/// Cache key half: which stage (pipeline position) the trace belongs to.
type StageIndex = usize;

/// Full cache key: the stage plus its resource fingerprint.
type CacheKey = (StageIndex, u64);

/// Default trace-entry bound of [`SegmentCostCache::new`]: generous for
/// any one sweep (5 stages × a handful of distinct cost models) while
/// keeping a long-lived serve process at a few MB of trace data.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

/// One cached trace plus its last-touch tick (updated under the read
/// lock on every hit, so lookups never serialize on the write lock).
#[derive(Debug)]
struct Slot {
    trace: Replay,
    last_used: AtomicU64,
}

/// One stored program set plus its last-touch tick.
#[derive(Debug)]
struct ProgSlot {
    set: Arc<ProgramSet>,
    last_used: AtomicU64,
}

/// A concurrent map from `(stage, resource fingerprint)` to the recorded
/// per-segment cycle trace (a cheap-to-clone [`Replay`]), plus a side
/// store of compiled segment-site [`ProgramSet`]s keyed by cost-table
/// fingerprint. Shared by all sweep workers — and by the `scperf-serve`
/// request engine — behind an `Arc`.
#[derive(Debug)]
pub struct SegmentCostCache {
    map: RwLock<HashMap<CacheKey, Slot>>,
    programs: RwLock<HashMap<u64, ProgSlot>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SegmentCostCache {
    fn default() -> SegmentCostCache {
        SegmentCostCache::new()
    }
}

/// Hit/miss accounting of a [`SegmentCostCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a trace.
    pub hits: u64,
    /// Lookups that found nothing (the point then records the trace).
    pub misses: u64,
    /// Distinct traces currently stored.
    pub entries: usize,
    /// Traces evicted to respect the capacity bound.
    pub evictions: u64,
    /// Compiled segment-site programs currently stored (summed over
    /// every cost-table fingerprint).
    pub programs: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; zero when nothing was
    /// looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// 64-bit FNV-1a, folding `u64` words (values are hashed by bit
/// pattern, so `f64` inputs go through `to_bits`).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Magic prefix of the multi-set program export format.
const EXPORT_MAGIC: &[u8; 4] = b"SCPC";

impl SegmentCostCache {
    /// Creates an empty cache bounded at [`DEFAULT_CACHE_CAPACITY`]
    /// trace entries.
    pub fn new() -> SegmentCostCache {
        SegmentCostCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// Creates an empty cache bounded at `capacity` trace entries
    /// (minimum 1). Inserts beyond the bound evict the
    /// least-recently-used trace.
    pub fn with_capacity(capacity: usize) -> SegmentCostCache {
        SegmentCostCache {
            map: RwLock::new(HashMap::new()),
            programs: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The trace-entry bound this cache evicts at.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fingerprints everything a stage's recorded trace depends on
    /// besides the stage itself: the resource's cost model and the
    /// workload size.
    pub fn fingerprint(resource: &Resource, nframes: usize) -> u64 {
        let kind = match resource.kind {
            ResourceKind::Sequential => 1_u64,
            ResourceKind::Parallel => 2,
            ResourceKind::Environment => 3,
        };
        let head = [
            kind,
            resource.clock.as_ps(),
            resource.k.to_bits(),
            resource.rtos_cycles.to_bits(),
            nframes as u64,
        ];
        let costs = resource.costs.as_dense().iter().map(|c| c.to_bits());
        fnv1a(head.into_iter().chain(costs))
    }

    /// Looks up the trace for `(stage, fingerprint)`, counting a hit or
    /// a miss.
    pub fn get(&self, stage: StageIndex, fingerprint: u64) -> Option<Replay> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let found = self.map.read().get(&(stage, fingerprint)).map(|slot| {
            slot.last_used.store(now, Ordering::Relaxed);
            slot.trace.clone()
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a recorded trace, evicting the least-recently-used entry
    /// if the cache is at capacity. Racing inserts of the same key are
    /// benign: both workers recorded the same deterministic trace, so
    /// either copy is correct; the first one wins.
    pub fn insert(&self, stage: StageIndex, fingerprint: u64, trace: Replay) {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        if map.contains_key(&(stage, fingerprint)) {
            return;
        }
        if map.len() >= self.capacity {
            if let Some(&victim) = map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            (stage, fingerprint),
            Slot {
                trace,
                last_used: AtomicU64::new(now),
            },
        );
    }

    /// The shared compiled program set for a cost-table fingerprint
    /// (see [`scperf_core::table_fingerprint`]), if any worker published
    /// one — feed it to `SimConfig::program_set` to warm-start a
    /// session.
    pub fn programs(&self, table_fp: u64) -> Option<Arc<ProgramSet>> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        self.programs.read().get(&table_fp).map(|slot| {
            slot.last_used.store(now, Ordering::Relaxed);
            Arc::clone(&slot.set)
        })
    }

    /// Merges a harvested program set into the shared store for its
    /// fingerprint (copy-on-write: readers keep their `Arc`). Returns
    /// how many programs were actually new. Empty sets are ignored.
    pub fn publish_programs(&self, set: &ProgramSet) -> usize {
        if set.is_empty() {
            return 0;
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.programs.write();
        match map.get_mut(&set.table_fp()) {
            Some(slot) => {
                let mut merged = (*slot.set).clone();
                let added = merged.merge(set);
                if added > 0 {
                    slot.set = Arc::new(merged);
                }
                slot.last_used.store(now, Ordering::Relaxed);
                added
            }
            None => {
                let added = set.len();
                map.insert(
                    set.table_fp(),
                    ProgSlot {
                        set: Arc::new(set.clone()),
                        last_used: AtomicU64::new(now),
                    },
                );
                added
            }
        }
    }

    /// Serializes every stored program set into one blob (magic `SCPC`,
    /// then each set's [`ProgramSet::to_bytes`] encoding, length-
    /// prefixed). Deterministic: sets are emitted in fingerprint order.
    pub fn export_programs(&self) -> Vec<u8> {
        let map = self.programs.read();
        let mut fps: Vec<u64> = map.keys().copied().collect();
        fps.sort_unstable();
        let mut out = Vec::new();
        out.extend_from_slice(EXPORT_MAGIC);
        out.extend_from_slice(&(fps.len() as u32).to_le_bytes());
        for fp in fps {
            let bytes = map[&fp].set.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Loads program sets from an [`export_programs`] blob, merging
    /// them into the store. Returns the number of programs added.
    ///
    /// [`export_programs`]: SegmentCostCache::export_programs
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ProgDecodeError`] when the blob is
    /// malformed; sets merged before the error sticks.
    pub fn import_programs(&self, bytes: &[u8]) -> Result<usize, ProgDecodeError> {
        if bytes.len() < 8 || &bytes[..4] != EXPORT_MAGIC {
            return Err(ProgDecodeError::BadMagic);
        }
        let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let mut at = 8;
        let mut added = 0;
        for _ in 0..count {
            if bytes.len() < at + 4 {
                return Err(ProgDecodeError::Truncated);
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            if bytes.len() < at + len {
                return Err(ProgDecodeError::Truncated);
            }
            let set = ProgramSet::from_bytes(&bytes[at..at + len])?;
            at += len;
            added += self.publish_programs(&set);
        }
        Ok(added)
    }

    /// Current hit/miss/entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            programs: self.programs.read().values().map(|s| s.set.len()).sum(),
        }
    }

    /// The stats as observability counters/gauges
    /// (`dse.cache.hits`, `dse.cache.misses`, `dse.cache.entries`,
    /// `dse.cache.hit_rate`, `est.cache.evictions`,
    /// `est.prog.published`).
    pub fn metrics(&self) -> MetricsSnapshot {
        let stats = self.stats();
        let mut m = MetricsSnapshot::new();
        m.set_counter("dse.cache.hits", stats.hits);
        m.set_counter("dse.cache.misses", stats.misses);
        m.set_counter("dse.cache.entries", stats.entries as u64);
        m.set_gauge("dse.cache.hit_rate", stats.hit_rate());
        m.set_counter("est.cache.evictions", stats.evictions);
        m.set_counter("est.prog.published", stats.programs as u64);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_core::{table_fingerprint, CostProgram, CostTable, Instr, Op, Platform};
    use scperf_kernel::Time;

    fn resource(table: CostTable, rtos: f64) -> Resource {
        let mut p = Platform::new();
        let id = p.sequential("cpu", Time::ns(10), table, rtos);
        p.resource(id).clone()
    }

    #[test]
    fn lookup_accounting_hits_and_misses() {
        let cache = SegmentCostCache::new();
        let fp = 42;
        assert!(cache.get(0, fp).is_none());
        cache.insert(0, fp, Replay::new(vec![1.0, 2.0]));
        assert_eq!(cache.get(0, fp), Some(Replay::new(vec![1.0, 2.0])));
        assert!(cache.get(1, fp).is_none(), "stage is part of the key");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_mirror_stats() {
        let cache = SegmentCostCache::new();
        cache.insert(0, 7, Replay::new(vec![3.0]));
        let _ = cache.get(0, 7);
        let _ = cache.get(0, 8);
        let m = cache.metrics();
        assert_eq!(m.counter("dse.cache.hits"), Some(1));
        assert_eq!(m.counter("dse.cache.misses"), Some(1));
        assert_eq!(m.counter("dse.cache.entries"), Some(1));
        assert_eq!(m.counter("est.cache.evictions"), Some(0));
        assert_eq!(m.gauge("dse.cache.hit_rate"), Some(0.5));
    }

    #[test]
    fn fingerprint_separates_cost_models_but_not_names() {
        let base = resource(CostTable::risc_sw(), 150.0);
        let same = {
            let mut r = resource(CostTable::risc_sw(), 150.0);
            r.name = "another-name".into();
            r
        };
        assert_eq!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&same, 4),
            "cpu0/cpu1 with one cost table must share entries"
        );
        let other_table = resource(CostTable::asic_hw(), 150.0);
        assert_ne!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&other_table, 4)
        );
        let other_rtos = resource(CostTable::risc_sw(), 0.0);
        assert_ne!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&other_rtos, 4)
        );
        assert_ne!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&base, 5),
            "workload size is part of the key"
        );
    }

    #[test]
    fn racing_inserts_first_wins() {
        let cache = SegmentCostCache::new();
        cache.insert(0, 1, Replay::new(vec![1.0]));
        cache.insert(0, 1, Replay::new(vec![9.9]));
        assert_eq!(cache.get(0, 1), Some(Replay::new(vec![1.0])));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = SegmentCostCache::with_capacity(2);
        cache.insert(0, 1, Replay::new(vec![1.0]));
        cache.insert(0, 2, Replay::new(vec![2.0]));
        // Touch (0,1) so (0,2) is the LRU victim.
        assert!(cache.get(0, 1).is_some());
        cache.insert(0, 3, Replay::new(vec![3.0]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(0, 1).is_some(), "recently used entry survives");
        assert!(cache.get(0, 2).is_none(), "LRU entry evicted");
        assert!(cache.get(0, 3).is_some());
        assert_eq!(cache.metrics().counter("est.cache.evictions"), Some(1));
        // Re-inserting an existing key never evicts.
        cache.insert(0, 3, Replay::new(vec![9.0]));
        assert_eq!(cache.stats().evictions, 1);
    }

    fn one_prog_set(table: &CostTable, site: u64) -> ProgramSet {
        let mut set = ProgramSet::new(table_fingerprint(table));
        set.insert(
            site,
            0,
            CostProgram::new(vec![Instr::ChargeRow {
                op: Op::Add,
                count: 3,
            }]),
        );
        set
    }

    #[test]
    fn program_sets_publish_merge_and_round_trip() {
        let cache = SegmentCostCache::new();
        let risc = CostTable::risc_sw();
        let asic = CostTable::asic_hw();
        assert_eq!(cache.publish_programs(&one_prog_set(&risc, 11)), 1);
        assert_eq!(
            cache.publish_programs(&one_prog_set(&risc, 11)),
            0,
            "same program is not new"
        );
        assert_eq!(cache.publish_programs(&one_prog_set(&risc, 22)), 1);
        assert_eq!(cache.publish_programs(&one_prog_set(&asic, 11)), 1);
        assert_eq!(cache.stats().programs, 3);

        let shared = cache.programs(table_fingerprint(&risc)).expect("stored");
        assert_eq!(shared.len(), 2);
        assert!(cache.programs(0xdead_beef).is_none());

        // Export → import into a fresh cache reproduces the store.
        let blob = cache.export_programs();
        let other = SegmentCostCache::new();
        assert_eq!(other.import_programs(&blob).expect("imports"), 3);
        assert_eq!(other.stats().programs, 3);
        assert_eq!(other.export_programs(), blob, "canonical encoding");
        // Importing again adds nothing.
        assert_eq!(other.import_programs(&blob).expect("imports"), 0);
        assert!(other.import_programs(b"junkjunkjunk").is_err());
    }
}
