//! Shared segment-cost memoization cache.
//!
//! The key soundness argument (and the reason DSE can go much faster
//! than naively re-simulating 243 points): a vocoder stage's per-segment
//! cycle trace is a pure function of the stage's code, its input data
//! and the *cost model of the resource it is mapped to* — it does not
//! depend on where the other four stages are mapped, because inter-stage
//! coupling happens only through the scheduler (when segments run), not
//! through what each segment costs. Recording the trace once per
//! `(stage, resource fingerprint, workload size)` with a
//! [`scperf_core::Recorder`] and replaying it via
//! [`scperf_core::PerfModel::spawn_replaying`] therefore reproduces
//! every later evaluation bit-exactly while skipping all
//! operator-overloading work.
//!
//! The fingerprint hashes everything the annotation depends on: resource
//! kind, clock period, the dense per-operation cost table (bit pattern),
//! the HW time-area weight `k`, the RTOS overhead and the frame count.
//! Two processors sharing one cost table (cpu0/cpu1 here) fingerprint
//! identically and share entries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use scperf_core::{Replay, Resource, ResourceKind};
use scperf_obs::MetricsSnapshot;
use scperf_sync::RwLock;

/// Cache key half: which stage (pipeline position) the trace belongs to.
type StageIndex = usize;

/// Full cache key: the stage plus its resource fingerprint.
type CacheKey = (StageIndex, u64);

/// A concurrent map from `(stage, resource fingerprint)` to the recorded
/// per-segment cycle trace (a cheap-to-clone [`Replay`]). Shared by all
/// sweep workers — and by the `scperf-serve` request engine — behind an
/// `Arc`.
#[derive(Debug, Default)]
pub struct SegmentCostCache {
    map: RwLock<HashMap<CacheKey, Replay>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss accounting of a [`SegmentCostCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a trace.
    pub hits: u64,
    /// Lookups that found nothing (the point then records the trace).
    pub misses: u64,
    /// Distinct traces currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; zero when nothing was
    /// looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// 64-bit FNV-1a, folding `u64` words (values are hashed by bit
/// pattern, so `f64` inputs go through `to_bits`).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl SegmentCostCache {
    /// Creates an empty cache.
    pub fn new() -> SegmentCostCache {
        SegmentCostCache::default()
    }

    /// Fingerprints everything a stage's recorded trace depends on
    /// besides the stage itself: the resource's cost model and the
    /// workload size.
    pub fn fingerprint(resource: &Resource, nframes: usize) -> u64 {
        let kind = match resource.kind {
            ResourceKind::Sequential => 1_u64,
            ResourceKind::Parallel => 2,
            ResourceKind::Environment => 3,
        };
        let head = [
            kind,
            resource.clock.as_ps(),
            resource.k.to_bits(),
            resource.rtos_cycles.to_bits(),
            nframes as u64,
        ];
        let costs = resource.costs.as_dense().iter().map(|c| c.to_bits());
        fnv1a(head.into_iter().chain(costs))
    }

    /// Looks up the trace for `(stage, fingerprint)`, counting a hit or
    /// a miss.
    pub fn get(&self, stage: StageIndex, fingerprint: u64) -> Option<Replay> {
        let found = self.map.read().get(&(stage, fingerprint)).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a recorded trace. Racing inserts of the same key are
    /// benign: both workers recorded the same deterministic trace, so
    /// either copy is correct; the first one wins.
    pub fn insert(&self, stage: StageIndex, fingerprint: u64, trace: Replay) {
        self.map
            .write()
            .entry((stage, fingerprint))
            .or_insert(trace);
    }

    /// Current hit/miss/entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().len(),
        }
    }

    /// The stats as observability counters/gauges
    /// (`dse.cache.hits`, `dse.cache.misses`, `dse.cache.entries`,
    /// `dse.cache.hit_rate`).
    pub fn metrics(&self) -> MetricsSnapshot {
        let stats = self.stats();
        let mut m = MetricsSnapshot::new();
        m.set_counter("dse.cache.hits", stats.hits);
        m.set_counter("dse.cache.misses", stats.misses);
        m.set_counter("dse.cache.entries", stats.entries as u64);
        m.set_gauge("dse.cache.hit_rate", stats.hit_rate());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scperf_core::{CostTable, Platform};
    use scperf_kernel::Time;

    fn resource(table: CostTable, rtos: f64) -> Resource {
        let mut p = Platform::new();
        let id = p.sequential("cpu", Time::ns(10), table, rtos);
        p.resource(id).clone()
    }

    #[test]
    fn lookup_accounting_hits_and_misses() {
        let cache = SegmentCostCache::new();
        let fp = 42;
        assert!(cache.get(0, fp).is_none());
        cache.insert(0, fp, Replay::new(vec![1.0, 2.0]));
        assert_eq!(cache.get(0, fp), Some(Replay::new(vec![1.0, 2.0])));
        assert!(cache.get(1, fp).is_none(), "stage is part of the key");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_mirror_stats() {
        let cache = SegmentCostCache::new();
        cache.insert(0, 7, Replay::new(vec![3.0]));
        let _ = cache.get(0, 7);
        let _ = cache.get(0, 8);
        let m = cache.metrics();
        assert_eq!(m.counter("dse.cache.hits"), Some(1));
        assert_eq!(m.counter("dse.cache.misses"), Some(1));
        assert_eq!(m.counter("dse.cache.entries"), Some(1));
        assert_eq!(m.gauge("dse.cache.hit_rate"), Some(0.5));
    }

    #[test]
    fn fingerprint_separates_cost_models_but_not_names() {
        let base = resource(CostTable::risc_sw(), 150.0);
        let same = {
            let mut r = resource(CostTable::risc_sw(), 150.0);
            r.name = "another-name".into();
            r
        };
        assert_eq!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&same, 4),
            "cpu0/cpu1 with one cost table must share entries"
        );
        let other_table = resource(CostTable::asic_hw(), 150.0);
        assert_ne!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&other_table, 4)
        );
        let other_rtos = resource(CostTable::risc_sw(), 0.0);
        assert_ne!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&other_rtos, 4)
        );
        assert_ne!(
            SegmentCostCache::fingerprint(&base, 4),
            SegmentCostCache::fingerprint(&base, 5),
            "workload size is part of the key"
        );
    }

    #[test]
    fn racing_inserts_first_wins() {
        let cache = SegmentCostCache::new();
        cache.insert(0, 1, Replay::new(vec![1.0]));
        cache.insert(0, 1, Replay::new(vec![9.9]));
        assert_eq!(cache.get(0, 1), Some(Replay::new(vec![1.0])));
        assert_eq!(cache.stats().entries, 1);
    }
}
