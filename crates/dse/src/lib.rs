//! # scperf-dse — parallel design-space exploration
//!
//! The paper's introduction motivates the whole estimation methodology
//! with design-space exploration: "design flows based on these SLDLs
//! need new estimation techniques in order to allow a fast and accurate
//! design space exploration (DSE)". This crate is that use case, built
//! on the strict-timed estimator of `scperf-core`:
//!
//! * [`point`] — the mapping space: every assignment of the five vocoder
//!   processes onto {cpu0, cpu1, hw} (3⁵ = 243 design points), each
//!   priced with a once-per-resource cost proxy.
//! * [`cache`] — a segment-cost memoization cache shared across
//!   evaluations: a stage's per-segment cycle trace depends only on its
//!   own (code, input data, resource cost model), not on where the other
//!   stages are mapped, so a trace recorded once is replayed — bit-exact
//!   — in every later point that maps the stage to a compatible
//!   resource.
//! * [`pool`] — a work-stealing thread pool on `std::thread` +
//!   `scperf-sync` (the workspace builds offline; no rayon). `jobs = 1`
//!   bypasses the pool entirely and is the sequential oracle.
//! * [`mod@pareto`] — frontier extraction with a sort-and-sweep pruning pass
//!   that matches the naive O(n²) domination definition exactly.
//! * [`mod@sweep`] — the orchestrator: fans the 243 points over the pool,
//!   collects results ordered by point index (deterministic and
//!   bitwise-identical for any worker count), and snapshots cache and
//!   pool metrics through `scperf-obs`.
//!
//! ```
//! use scperf_core::CostTable;
//! use scperf_dse::sweep::{sweep, SweepConfig};
//!
//! let cfg = SweepConfig {
//!     table: CostTable::risc_sw(),
//!     nframes: 1,
//!     jobs: 2,
//!     use_cache: true,
//!     ..SweepConfig::default()
//! };
//! # let cfg = SweepConfig { limit: Some(6), ..cfg };
//! let result = sweep(&cfg);
//! assert!(!result.frontier.is_empty());
//! assert!(result.cache.hits + result.cache.misses > 0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod pareto;
pub mod point;
pub mod pool;
pub mod sweep;

pub use cache::{CacheStats, SegmentCostCache, DEFAULT_CACHE_CAPACITY};
pub use pareto::{pareto, pareto_naive};
pub use point::{
    all_mappings, build_platform, platform_cost, resolve_mapping, DesignPoint, Target, CLOCK, HW_K,
    RTOS_CYCLES,
};
pub use pool::{run_indexed, PoolStats, WorkerPool};
pub use sweep::{evaluate, format_summary, sweep, ProgStats, SweepConfig, SweepResult};
