//! Worker pools for the exploration and serving layers.
//!
//! Two shapes, both built on the in-tree `scperf-sync` primitives (the
//! workspace builds fully offline — no rayon):
//!
//! * [`run_indexed`] — a scoped work-stealing pool for embarrassingly
//!   parallel, index-addressed task *sets* (the DSE sweep). Each worker
//!   owns a deque seeded round-robin; when its own deque drains it
//!   steals from the back of its neighbours'. Results land in per-index
//!   slots, so the output order — and therefore everything computed
//!   from it — is independent of worker count and steal timing.
//! * [`WorkerPool`] — a long-lived pool for task *streams*: a fixed set
//!   of named worker threads draining one shared job queue, with
//!   graceful shutdown that finishes every accepted job. This is the
//!   execution substrate of the `scperf-serve` simulation service
//!   (which layers admission control — bounded queue + backpressure —
//!   on top).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use scperf_sync::{Condvar, Mutex};

/// Counters describing one [`run_indexed`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually spawned (0 for the sequential path).
    pub workers: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
}

/// Runs `f(0..n)` across `jobs` workers and returns the results indexed
/// by task id — `out[i] == f(i)` — regardless of which worker ran which
/// task.
///
/// `jobs == 1` (or a single task) bypasses the pool entirely and runs
/// the plain sequential loop on the calling thread: the *oracle* path
/// that parallel runs are compared against.
///
/// Each worker opens an [`scperf_obs::profile`] span named
/// `dse.worker.<w>` covering its whole run, so enabling profiling shows
/// per-worker wall-time and load balance.
///
/// # Panics
///
/// Panics if `jobs == 0` or if any task panics.
pub fn run_indexed<R, F>(jobs: usize, n: usize, f: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(jobs > 0, "at least one worker required");
    if jobs == 1 || n <= 1 {
        let out: Vec<R> = (0..n).map(f).collect();
        return (
            out,
            PoolStats {
                workers: 0,
                tasks: n,
                steals: 0,
            },
        );
    }

    let jobs = jobs.min(n);
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        deques[i % jobs].lock().push_back(i);
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || {
                let _span = scperf_obs::profile::span_dyn(format!("dse.worker.{w}"));
                loop {
                    let task = deques[w].lock().pop_front().or_else(|| {
                        // Own deque empty: steal from the back of the
                        // other deques, nearest neighbour first.
                        (1..jobs).find_map(|d| {
                            let stolen = deques[(w + d) % jobs].lock().pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    });
                    match task {
                        Some(i) => *slots[i].lock() = Some(f(i)),
                        None => break,
                    }
                }
            });
        }
    });

    let out: Vec<R> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran exactly once"))
        .collect();
    (
        out,
        PoolStats {
            workers: jobs,
            tasks: n,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    running: usize,
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    available: Condvar,
    /// Signalled when a worker finishes a job (for [`WorkerPool::wait_idle`]).
    settled: Condvar,
}

/// A long-lived pool of named worker threads draining one shared job
/// queue.
///
/// Unlike [`run_indexed`] — which exists for one task set and then
/// disappears — a `WorkerPool` serves an open-ended *stream* of jobs:
/// submit closures at any time, from any thread. [`WorkerPool::shutdown`]
/// is graceful: submission stops, every already-accepted job still runs
/// to completion, then the worker threads are joined.
///
/// The pool itself does not bound its queue; admission control (bounded
/// queue, reject-with-retry-after) is the caller's policy. See
/// `scperf-serve`, which layers exactly that on top.
///
/// A panicking job is caught and dropped (the worker survives); callers
/// that need to observe panics should catch them inside the job.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads named `<name>-worker-<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(name: &str, workers: usize) -> WorkerPool {
        assert!(workers > 0, "at least one worker required");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                running: 0,
                shutting_down: false,
            }),
            available: Condvar::new(),
            settled: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Enqueues a job. Returns `false` (dropping the job) when the pool
    /// is shutting down.
    pub fn submit<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut st = self.shared.state.lock();
            if st.shutting_down {
                return false;
            }
            st.queue.push_back(Box::new(job));
        }
        self.shared.available.notify_one();
        true
    }

    /// Jobs accepted but not yet finished (queued + running).
    pub fn pending(&self) -> usize {
        let st = self.shared.state.lock();
        st.queue.len() + st.running
    }

    /// Blocks until every accepted job has finished.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock();
        while !st.queue.is_empty() || st.running > 0 {
            self.shared.settled.wait(&mut st);
        }
    }

    /// Graceful shutdown: stops accepting jobs, lets the workers drain
    /// everything already accepted, and joins the threads.
    pub fn shutdown(mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutting_down = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return; // explicit shutdown() already ran
        }
        {
            let mut st = self.shared.state.lock();
            st.shutting_down = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .field("queued", &st.queue.len())
            .field("running", &st.running)
            .field("shutting_down", &st.shutting_down)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let _span = scperf_obs::profile::span_dyn(format!("pool.worker.{index}"));
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                shared.available.wait(&mut st);
            }
        };
        // A panicking job must not take the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(job));
        {
            let mut st = shared.state.lock();
            st.running -= 1;
        }
        shared.settled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_path_is_inline() {
        let (out, stats) = run_indexed(1, 5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
        assert_eq!(stats.workers, 0, "jobs = 1 must not spawn threads");
        assert_eq!(stats.tasks, 5);
    }

    #[test]
    fn parallel_results_are_index_ordered() {
        for jobs in [2, 3, 8] {
            let (out, stats) = run_indexed(jobs, 37, |i| i as u64 * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<u64>>());
            assert_eq!(stats.workers, jobs);
            assert_eq!(stats.tasks, 37);
        }
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let (out, stats) = run_indexed(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // Worker 0's tasks sleep; the others finish and steal from it.
        let (out, stats) = run_indexed(4, 32, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<usize>>());
        // Steal counts are timing-dependent; the scheduler only
        // guarantees completion, which the ordered output proves.
        assert_eq!(stats.tasks, 32);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_panics() {
        let _ = run_indexed(0, 1, |i| i);
    }

    #[test]
    fn worker_pool_runs_submitted_jobs() {
        let pool = WorkerPool::new("t", 2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 20);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool = WorkerPool::new("drain", 1);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        // Graceful: every accepted job ran before the threads joined.
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let pool = WorkerPool::new("rej", 1);
        {
            let mut st = pool.shared.state.lock();
            st.shutting_down = true;
        }
        assert!(!pool.submit(|| panic!("must never run")));
        // Clear the flag again so Drop's join can proceed normally.
        {
            let mut st = pool.shared.state.lock();
            st.shutting_down = false;
        }
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new("panics", 1);
        pool.submit(|| panic!("boom"));
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.submit(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        pool.shutdown();
    }
}
