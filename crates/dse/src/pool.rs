//! Worker pools for the exploration and serving layers.
//!
//! Two shapes, both built on the in-tree `scperf-sync` primitives (the
//! workspace builds fully offline — no rayon):
//!
//! * [`run_indexed`] — a scoped work-stealing pool for embarrassingly
//!   parallel, index-addressed task *sets* (the DSE sweep). Each worker
//!   owns a deque seeded round-robin; when its own deque drains it
//!   steals from the back of its neighbours'. Results land in per-index
//!   slots, so the output order — and therefore everything computed
//!   from it — is independent of worker count and steal timing.
//! * [`WorkerPool`] — a long-lived pool for task *streams*, re-exported
//!   from `scperf-sync`, where it moved so the kernel's parallel
//!   evaluate phase can share it without inverting the dependency
//!   graph. This is the execution substrate of the `scperf-serve`
//!   simulation service (which layers admission control — bounded
//!   queue + backpressure — on top).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use scperf_sync::Mutex;

/// Counters describing one [`run_indexed`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually spawned (0 for the sequential path).
    pub workers: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks a worker took from another worker's deque.
    pub steals: u64,
}

/// Runs `f(0..n)` across `jobs` workers and returns the results indexed
/// by task id — `out[i] == f(i)` — regardless of which worker ran which
/// task.
///
/// `jobs == 1` (or a single task) bypasses the pool entirely and runs
/// the plain sequential loop on the calling thread: the *oracle* path
/// that parallel runs are compared against.
///
/// Each worker opens an [`scperf_obs::profile`] span named
/// `dse.worker.<w>` covering its whole run, so enabling profiling shows
/// per-worker wall-time and load balance.
///
/// # Panics
///
/// Panics if `jobs == 0` or if any task panics.
pub fn run_indexed<R, F>(jobs: usize, n: usize, f: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(jobs > 0, "at least one worker required");
    if jobs == 1 || n <= 1 {
        let out: Vec<R> = (0..n).map(f).collect();
        return (
            out,
            PoolStats {
                workers: 0,
                tasks: n,
                steals: 0,
            },
        );
    }

    let jobs = jobs.min(n);
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        deques[i % jobs].lock().push_back(i);
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let deques = &deques;
            let slots = &slots;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || {
                let _span = scperf_obs::profile::span_dyn(format!("dse.worker.{w}"));
                loop {
                    let task = deques[w].lock().pop_front().or_else(|| {
                        // Own deque empty: steal from the back of the
                        // other deques, nearest neighbour first.
                        (1..jobs).find_map(|d| {
                            let stolen = deques[(w + d) % jobs].lock().pop_back();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    });
                    match task {
                        Some(i) => *slots[i].lock() = Some(f(i)),
                        None => break,
                    }
                }
            });
        }
    });

    let out: Vec<R> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task ran exactly once"))
        .collect();
    (
        out,
        PoolStats {
            workers: jobs,
            tasks: n,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

pub use scperf_sync::WorkerPool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_path_is_inline() {
        let (out, stats) = run_indexed(1, 5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
        assert_eq!(stats.workers, 0, "jobs = 1 must not spawn threads");
        assert_eq!(stats.tasks, 5);
    }

    #[test]
    fn parallel_results_are_index_ordered() {
        for jobs in [2, 3, 8] {
            let (out, stats) = run_indexed(jobs, 37, |i| i as u64 * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<u64>>());
            assert_eq!(stats.workers, jobs);
            assert_eq!(stats.tasks, 37);
        }
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let (out, stats) = run_indexed(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // Worker 0's tasks sleep; the others finish and steal from it.
        let (out, stats) = run_indexed(4, 32, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<usize>>());
        // Steal counts are timing-dependent; the scheduler only
        // guarantees completion, which the ordered output proves.
        assert_eq!(stats.tasks, 32);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_panics() {
        let _ = run_indexed(0, 1, |i| i);
    }
}
