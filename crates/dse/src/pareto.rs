//! Pareto-frontier extraction over (latency, cost).
//!
//! [`pareto`] is the production path: sort once, sweep once —
//! O(n log n) instead of the O(n²) pairwise domination scan — while
//! producing *exactly* the same frontier as the naive definition
//! ([`pareto_naive`], kept as the test oracle).

use crate::point::DesignPoint;

/// Whether `q` dominates `p`: at least as good on both axes and
/// strictly better on one.
fn dominates(q: &DesignPoint, p: &DesignPoint) -> bool {
    (q.latency < p.latency && q.cost <= p.cost) || (q.latency <= p.latency && q.cost < p.cost)
}

/// The Pareto frontier by direct application of the domination
/// definition: a point survives iff no other point dominates it;
/// duplicate (latency, cost) pairs keep their first occurrence in input
/// order. O(n²) — the oracle the fast path is verified against.
pub fn pareto_naive(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = Vec::new();
    for p in points {
        if points.iter().any(|q| dominates(q, p)) {
            continue;
        }
        if !frontier
            .iter()
            .any(|f| f.latency == p.latency && f.cost == p.cost)
        {
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| a.latency.cmp(&b.latency).then(a.cost.total_cmp(&b.cost)));
    frontier
}

/// The Pareto frontier via sort-and-sweep pruning.
///
/// Points are visited in (latency, cost, input-index) order; within one
/// latency only the cheapest point can be non-dominated, and it survives
/// iff it is strictly cheaper than everything already kept at lower
/// latency. Returns the same frontier as [`pareto_naive`], bit for bit
/// (this equivalence is property-tested against random point clouds).
pub fn pareto(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .latency
            .cmp(&points[b].latency)
            .then(points[a].cost.total_cmp(&points[b].cost))
            .then(a.cmp(&b))
    });

    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        // The group of points sharing this latency, sorted by cost: only
        // the head can be on the frontier.
        let latency = points[order[i]].latency;
        let mut end = i;
        while end < order.len() && points[order[end]].latency == latency {
            end += 1;
        }
        let group = &order[i..end];
        let min_cost = points[group[0]].cost;
        if min_cost < best_cost {
            // Duplicate (latency, cost) pairs collapse to their first
            // occurrence in *input* order, matching the naive oracle.
            let first = group
                .iter()
                .copied()
                .filter(|&g| points[g].cost == min_cost)
                .min()
                .expect("non-empty group");
            frontier.push(points[first].clone());
            best_cost = min_cost;
        }
        i = end;
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Target;
    use scperf_kernel::Time;

    fn pt(latency_ns: u64, cost: f64) -> DesignPoint {
        DesignPoint {
            mapping: [Target::Cpu0; 5],
            latency: Time::ns(latency_ns),
            cost,
            checksum: 0,
        }
    }

    #[test]
    fn sweep_matches_naive_on_fixed_cloud() {
        let points = vec![
            pt(10, 5.0),
            pt(10, 5.0), // duplicate: first occurrence kept
            pt(12, 4.0),
            pt(12, 6.0), // dominated within its latency group
            pt(15, 4.0), // dominated by (12, 4.0)
            pt(20, 1.0),
            pt(25, 1.0), // dominated by (20, 1.0)
            pt(9, 9.0),
        ];
        let fast = pareto(&points);
        assert_eq!(fast, pareto_naive(&points));
        let coords: Vec<(u64, f64)> = fast
            .iter()
            .map(|p| (p.latency.as_ps() / 1000, p.cost))
            .collect();
        assert_eq!(coords, vec![(9, 9.0), (10, 5.0), (12, 4.0), (20, 1.0)]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pareto(&[]).is_empty());
        let one = vec![pt(5, 2.0)];
        assert_eq!(pareto(&one), one);
    }

    #[test]
    fn sweep_matches_naive_on_random_clouds() {
        // Deterministic pseudo-random clouds (splitmix64).
        let mut state: u64 = 0x5ee3_1f00_d5e0_cafe;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for _ in 0..200 {
            let n = (next() % 40) as usize;
            let points: Vec<DesignPoint> = (0..n)
                .map(|_| pt(next() % 16, (next() % 8) as f64 / 2.0))
                .collect();
            assert_eq!(pareto(&points), pareto_naive(&points), "cloud: {points:?}");
        }
    }
}
