//! The explored mapping space: targets, design points and the platform
//! cost proxy.

use scperf_core::{CostTable, Platform, ResourceId};
use scperf_kernel::Time;
use scperf_workloads::vocoder::pipeline::VocoderMapping;

/// Clock period shared by every platform resource in the sweep.
pub const CLOCK: Time = Time::ns(10);

/// RTOS overhead (cycles per channel access / timed wait) charged on the
/// sequential processors, matching the bench harness calibration.
pub const RTOS_CYCLES: f64 = 150.0;

/// Time-area weight of the hardware accelerator (§3 of the paper):
/// annotated HW time is `T_min + (T_max − T_min)·k`.
pub const HW_K: f64 = 0.5;

/// The three mapping targets explored per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Target {
    /// First processor.
    Cpu0,
    /// Second processor.
    Cpu1,
    /// Hardware accelerator (parallel resource, k = [`HW_K`]).
    Hw,
}

impl Target {
    /// All targets, in exploration order.
    pub const ALL: [Target; 3] = [Target::Cpu0, Target::Cpu1, Target::Hw];

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            Target::Cpu0 => "cpu0",
            Target::Cpu1 => "cpu1",
            Target::Hw => "hw",
        }
    }

    /// Relative silicon/BOM cost of instantiating this target at all.
    pub fn cost(self) -> f64 {
        match self {
            Target::Cpu0 => 1.0,
            Target::Cpu1 => 1.0,
            Target::Hw => 2.5,
        }
    }
}

/// One explored design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Per-process targets, in
    /// [`STAGE_NAMES`](scperf_workloads::vocoder::pipeline::STAGE_NAMES)
    /// order.
    pub mapping: [Target; 5],
    /// Simulated end-to-end time for the workload.
    pub latency: Time,
    /// Cost proxy ([`platform_cost`]).
    pub cost: f64,
    /// Decoded-output checksum, for validating that every evaluation —
    /// live or replayed from the cache — produced the same data.
    pub checksum: i32,
}

impl DesignPoint {
    /// Renders the mapping compactly, e.g. `cpu0/cpu0/hw/cpu1/cpu0`.
    pub fn mapping_label(&self) -> String {
        self.mapping
            .iter()
            .map(|t| t.label())
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// The platform cost proxy: the summed [`Target::cost`] of every
/// *distinct* resource the mapping instantiates. Each resource is priced
/// once per platform instance — mapping all five processes onto the
/// accelerator costs one accelerator (2.5), not five.
pub fn platform_cost(mapping: &[Target; 5]) -> f64 {
    let mut cost = 0.0;
    for t in Target::ALL {
        if mapping.contains(&t) {
            cost += t.cost();
        }
    }
    cost
}

/// All 3⁵ = 243 mappings, in deterministic lexicographic
/// ([`Target::ALL`]) order. Index `i` of the returned vector is the
/// canonical *point index* used for deterministic result collection.
pub fn all_mappings() -> Vec<[Target; 5]> {
    let mut mappings = Vec::with_capacity(243);
    for a in Target::ALL {
        for b in Target::ALL {
            for c in Target::ALL {
                for d in Target::ALL {
                    for e in Target::ALL {
                        mappings.push([a, b, c, d, e]);
                    }
                }
            }
        }
    }
    mappings
}

/// Builds the explored platform — two RISC processors sharing `table`
/// and one accelerator — and returns it with the resource ids in
/// [`Target::ALL`] order.
pub fn build_platform(table: &CostTable) -> (Platform, [ResourceId; 3]) {
    let mut platform = Platform::new();
    let cpu0 = platform.sequential("cpu0", CLOCK, table.clone(), RTOS_CYCLES);
    let cpu1 = platform.sequential("cpu1", CLOCK, table.clone(), RTOS_CYCLES);
    let hw = platform.parallel("hw", CLOCK, CostTable::asic_hw(), HW_K);
    (platform, [cpu0, cpu1, hw])
}

/// Resolves a mapping to concrete resource ids on `ids` (in
/// [`Target::ALL`] order).
pub fn resolve_mapping(mapping: [Target; 5], ids: [ResourceId; 3]) -> VocoderMapping {
    let pick = |t: Target| ids[t as usize];
    VocoderMapping {
        lsp: pick(mapping[0]),
        lpc_int: pick(mapping[1]),
        acb: pick(mapping[2]),
        icb: pick(mapping[3]),
        post: pick(mapping[4]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mappings_are_exhaustive_and_ordered() {
        let all = all_mappings();
        assert_eq!(all.len(), 243);
        assert_eq!(all[0], [Target::Cpu0; 5]);
        assert_eq!(all[242], [Target::Hw; 5]);
        // Lexicographic: sorted and free of duplicates.
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn platform_cost_prices_each_resource_once() {
        // Regression: a resource used by many processes is still one
        // physical instance — its cost must not scale with the number of
        // processes mapped to it.
        assert_eq!(platform_cost(&[Target::Hw; 5]), 2.5, "one accelerator");
        assert_eq!(platform_cost(&[Target::Cpu0; 5]), 1.0, "one processor");
        assert_eq!(
            platform_cost(&[
                Target::Cpu0,
                Target::Cpu1,
                Target::Hw,
                Target::Cpu0,
                Target::Cpu1,
            ]),
            4.5,
            "all three resources instantiated once each"
        );
    }

    #[test]
    fn mapping_resolution_follows_target_order() {
        let (platform, ids) = build_platform(&CostTable::risc_sw());
        assert_eq!(platform.len(), 3);
        let vm = resolve_mapping(
            [
                Target::Cpu1,
                Target::Cpu0,
                Target::Hw,
                Target::Hw,
                Target::Cpu1,
            ],
            ids,
        );
        assert_eq!(vm.lsp, ids[1]);
        assert_eq!(vm.lpc_int, ids[0]);
        assert_eq!(vm.acb, ids[2]);
        assert_eq!(vm.icb, ids[2]);
        assert_eq!(vm.post, ids[1]);
        assert_eq!(platform.resource(ids[2]).k, HW_K);
    }
}
