//! Parallel-determinism properties of the sweep engine: worker count
//! and cache state must never change a single result bit.

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_core::CostTable;
use scperf_dse::sweep::{evaluate, sweep, SweepConfig};
use scperf_dse::{all_mappings, pareto, pareto_naive, SegmentCostCache, Target};
use scperf_kernel::Time;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random mapping subsets evaluated under jobs ∈ {1, 2, 8}, cache on
    /// and off, all produce identical point lists and Pareto frontiers.
    /// jobs = 1 without cache is the sequential oracle.
    #[test]
    fn sweep_is_deterministic_across_jobs_and_cache(
        picks in vec(0_usize..243, 6..=10),
    ) {
        let limit = *picks.iter().max().unwrap() + 1;
        let base = SweepConfig {
            table: CostTable::risc_sw(),
            nframes: 1,
            jobs: 1,
            kernel_jobs: 1,
            use_cache: false,
            limit: Some(limit.min(14)),
            legacy_charging: false,
            programs_in: None,
        };
        let oracle = sweep(&base);
        for (jobs, use_cache) in [(2, true), (8, true), (2, false)] {
            let got = sweep(&SweepConfig { jobs, use_cache, ..base.clone() });
            prop_assert_eq!(&got.points, &oracle.points,
                "points differ at jobs={} cache={}", jobs, use_cache);
            prop_assert_eq!(&got.frontier, &oracle.frontier,
                "frontier differs at jobs={} cache={}", jobs, use_cache);
        }
    }

    /// Nested parallelism: the sweep pool (`jobs`) composed with the
    /// kernel's parallel evaluate phase (`kernel_jobs`,
    /// docs/PARALLELISM.md) still reproduces the sequential oracle
    /// bit for bit.
    #[test]
    fn sweep_is_deterministic_across_kernel_jobs(
        picks in vec(0_usize..243, 4..=6),
    ) {
        let limit = *picks.iter().max().unwrap() + 1;
        let base = SweepConfig {
            table: CostTable::risc_sw(),
            nframes: 1,
            jobs: 1,
            kernel_jobs: 1,
            use_cache: false,
            limit: Some(limit.min(10)),
            legacy_charging: false,
            programs_in: None,
        };
        let oracle = sweep(&base);
        for (jobs, kernel_jobs) in [(1, 2), (1, 8), (2, 8)] {
            let got = sweep(&SweepConfig { jobs, kernel_jobs, ..base.clone() });
            prop_assert_eq!(&got.points, &oracle.points,
                "points differ at jobs={} kernel_jobs={}", jobs, kernel_jobs);
            prop_assert_eq!(&got.frontier, &oracle.frontier,
                "frontier differs at jobs={} kernel_jobs={}", jobs, kernel_jobs);
        }
    }

    /// Individual points: replayed-from-cache evaluation is bit-identical
    /// to live evaluation for arbitrary mappings.
    #[test]
    fn cached_points_are_bit_identical(indices in vec(0_usize..243, 3..=5)) {
        let mappings = all_mappings();
        let table = CostTable::risc_sw();
        let cache = SegmentCostCache::new();
        for &i in &indices {
            let live = evaluate(&table, mappings[i], 1, None);
            let first = evaluate(&table, mappings[i], 1, Some(&cache));
            let replayed = evaluate(&table, mappings[i], 1, Some(&cache));
            prop_assert_eq!(&first, &live);
            prop_assert_eq!(&replayed, &live);
        }
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "repeat evaluations must hit the cache");
    }

    /// The pruned Pareto sweep matches the naive O(n²) oracle on random
    /// synthetic point clouds.
    #[test]
    fn pareto_sweep_matches_naive_oracle(
        coords in vec((0_u64..12, 0_u32..6), 0..40),
    ) {
        let points: Vec<_> = coords
            .iter()
            .map(|&(lat, cost)| scperf_dse::DesignPoint {
                mapping: [Target::Cpu0; 5],
                latency: Time::ns(lat),
                cost: cost as f64 / 2.0,
                checksum: 0,
            })
            .collect();
        prop_assert_eq!(pareto(&points), pareto_naive(&points));
    }
}

/// The full 243-point sweep, parallel + cached vs sequential oracle.
/// Expensive in debug builds, so ignored by default; CI and the verify
/// harness run it release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "full 243-point sweep; run with --release -- --ignored"]
fn full_sweep_matches_sequential_oracle() {
    let base = SweepConfig {
        table: CostTable::risc_sw(),
        nframes: 1,
        jobs: 1,
        kernel_jobs: 1,
        use_cache: false,
        limit: None,
        legacy_charging: false,
        programs_in: None,
    };
    let oracle = sweep(&base);
    assert_eq!(oracle.points.len(), 243);
    let parallel = sweep(&SweepConfig {
        jobs: 8,
        use_cache: true,
        ..base.clone()
    });
    assert_eq!(parallel.points, oracle.points);
    assert_eq!(parallel.frontier, oracle.frontier);
    let stats = parallel.cache.hit_rate();
    assert!(
        stats > 0.9,
        "243 points × 5 stages should mostly hit: {stats}"
    );
    // The jobs=8 run of the release determinism gate: the same full
    // sweep with every point's *kernel* also evaluating in parallel
    // (docs/PARALLELISM.md) must still match the oracle bit for bit.
    let kernel_parallel = sweep(&SweepConfig {
        jobs: 8,
        kernel_jobs: 8,
        use_cache: true,
        ..base
    });
    assert_eq!(kernel_parallel.points, oracle.points);
    assert_eq!(kernel_parallel.frontier, oracle.frontier);
}
