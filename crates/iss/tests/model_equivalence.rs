//! Property tests: the functional and pipelined timing models are
//! *architecturally* equivalent — same final registers/memory, same
//! retired-instruction and taken-branch counts — on randomized programs,
//! while the pipelined model never reports fewer cycles than instructions.

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_iss::{Instr, Machine, Program, Reg, Target};

/// Strategy: a random straight-line program over registers r8..r15 with a
/// final `Halt`. Loads/stores hit a private scratch region; divisors are
/// biased away from zero by construction.
fn arb_program(max_len: usize) -> impl Strategy<Value = Vec<Instr>> {
    let reg = (8_u8..16).prop_map(Reg);
    let instr = (0_u8..12, reg.clone(), reg.clone(), reg, -100_i32..100).prop_map(
        |(kind, d, s, t, imm)| match kind {
            0 => Instr::Add(d, s, t),
            1 => Instr::Sub(d, s, t),
            2 => Instr::Mul(d, s, t),
            3 => Instr::And(d, s, t),
            4 => Instr::Or(d, s, t),
            5 => Instr::Xor(d, s, t),
            6 => Instr::Slt(d, s, t),
            7 => Instr::Addi(d, s, imm),
            8 => Instr::Li(d, imm),
            9 => Instr::Slli(d, s, (imm.unsigned_abs() % 31) as u8),
            10 => Instr::Lw(d, Reg::ZERO, 256 + 4 * (imm.unsigned_abs() % 32) as i32),
            _ => Instr::Sw(s, Reg::ZERO, 256 + 4 * (imm.unsigned_abs() % 32) as i32),
        },
    );
    vec(instr, 1..max_len).prop_map(|mut code| {
        code.push(Instr::Halt);
        code
    })
}

fn run_both(code: Vec<Instr>) -> (Machine, Machine, scperf_iss::RunStats, scperf_iss::RunStats) {
    let p = Program { code, data: vec![] };
    let mut m1 = Machine::new(4096);
    m1.load(&p);
    let s1 = m1.run(1_000_000).expect("functional run");
    let mut m2 = Machine::new(4096);
    m2.load(&p);
    let s2 = m2.run_pipelined(10_000_000).expect("pipelined run");
    (m1, m2, s1, s2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn architectural_state_matches(code in arb_program(60)) {
        let (m1, m2, s1, s2) = run_both(code);
        for r in 0..32 {
            prop_assert_eq!(m1.reg(Reg(r)), m2.reg(Reg(r)), "register r{}", r);
        }
        for w in 0..32 {
            let addr = 256 + 4 * w;
            prop_assert_eq!(m1.read_word(addr), m2.read_word(addr), "mem {}", addr);
        }
        prop_assert_eq!(s1.instructions, s2.instructions);
        prop_assert_eq!(s1.branches_taken, s2.branches_taken);
    }

    #[test]
    fn pipeline_cycles_bound_below_by_instructions(code in arb_program(60)) {
        let (_, _, _, s2) = run_both(code);
        prop_assert!(s2.cycles >= s2.instructions);
        // And bounded above by a generous per-instruction worst case
        // (div-free programs; Mul occupies EX for 3 cycles, plus the
        // pipeline fill).
        prop_assert!(s2.cycles <= 4 * s2.instructions + 10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized loop programs also agree (exercising branch paths).
    #[test]
    fn loops_agree_between_models(n in 1_i32..60, step in 1_i32..5) {
        let code = vec![
            Instr::Li(Reg(10), n),
            Instr::Li(Reg(11), 0),
            // 2: acc += i; i -= step; if i > 0 goto 2
            Instr::Add(Reg(11), Reg(11), Reg(10)),
            Instr::Li(Reg(12), step),
            Instr::Sub(Reg(10), Reg(10), Reg(12)),
            Instr::Blt(Reg::ZERO, Reg(10), Target(2)),
            Instr::Halt,
        ];
        let (m1, m2, s1, s2) = run_both(code);
        prop_assert_eq!(m1.reg(Reg(11)), m2.reg(Reg(11)));
        prop_assert_eq!(s1.instructions, s2.instructions);
        // Taken branches cost strictly more cycles on the pipeline.
        if s2.branches_taken > 0 {
            prop_assert!(s2.cycles > s2.instructions);
        }
    }
}

#[test]
fn random_minic_arithmetic_agrees() {
    // A deterministic pseudo-random arithmetic expression compiled with
    // minic, executed on both models, and cross-checked against the
    // equivalent Rust computation.
    let src = "int result;\n\
               int main() {\n\
                 int a = 17; int b = -9; int c = 5; int acc = 0; int i;\n\
                 for (i = 0; i < 37; i = i + 1) {\n\
                   acc = acc + (a * b - c) / (i + 1) + ((a ^ i) & 255);\n\
                   a = a + 3; b = b - 2; c = (c * 7) % 113;\n\
                 }\n\
                 result = acc;\n\
                 return 0;\n\
               }";
    let expected = {
        let (mut a, mut b, mut c, mut acc) = (17_i32, -9_i32, 5_i32, 0_i32);
        for i in 0..37 {
            acc = acc
                .wrapping_add((a.wrapping_mul(b) - c) / (i + 1))
                .wrapping_add((a ^ i) & 255);
            a += 3;
            b -= 2;
            c = (c * 7) % 113;
        }
        acc
    };
    let compiled = scperf_iss::minic::compile(src).unwrap();
    for pipelined in [false, true] {
        let mut m = Machine::new(1 << 20);
        m.load(&compiled.program);
        if pipelined {
            m.run_pipelined(10_000_000).unwrap();
        } else {
            m.run(10_000_000).unwrap();
        }
        assert_eq!(m.read_word(compiled.global("result")), expected);
    }
}
