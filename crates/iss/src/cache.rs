//! A direct-mapped cache model for instruction and data accesses.
//!
//! The paper (§1) notes that cache effects are "a traditional problem in SW
//! execution time estimation" and that "some error percentage is
//! unavoidable". The reference ISS therefore carries an optional cache
//! model, letting the experiments quantify exactly that unavoidable error
//! (the estimation library has no cache awareness — by design).

/// Configuration of one direct-mapped cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cache lines (must be a power of two).
    pub lines: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u64,
}

impl CacheConfig {
    /// A small L1-like default: 256 lines × 16 B = 4 KiB, 10-cycle miss.
    pub fn small() -> CacheConfig {
        CacheConfig {
            lines: 256,
            line_bytes: 16,
            miss_penalty: 10,
        }
    }
}

/// A direct-mapped cache with tag storage only (contents are irrelevant to
/// timing).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<Option<u32>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `line_bytes` is not a non-zero power of two.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.lines.is_power_of_two() && cfg.line_bytes.is_power_of_two(),
            "cache geometry must be powers of two"
        );
        Cache {
            cfg,
            tags: vec![None; cfg.lines],
            hits: 0,
            misses: 0,
        }
    }

    /// Performs one access; returns the extra cycles (0 on hit,
    /// `miss_penalty` on miss).
    #[inline]
    pub fn access(&mut self, addr: u32) -> u64 {
        let line_addr = addr as usize / self.cfg.line_bytes;
        let index = line_addr & (self.cfg.lines - 1);
        let tag = (line_addr / self.cfg.lines) as u32;
        if self.tags[index] == Some(tag) {
            self.hits += 1;
            0
        } else {
            self.tags[index] = Some(tag);
            self.misses += 1;
            self.cfg.miss_penalty
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 1.0 when no accesses have occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            lines: 4,
            line_bytes: 16,
            miss_penalty: 10,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), 10);
        assert_eq!(c.access(0x104), 0); // same line
        assert_eq!(c.access(0x10f), 0);
        assert_eq!(c.access(0x110), 10); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = tiny();
        // 4 lines × 16 B = 64 B: addresses 0 and 64 conflict on index 0.
        assert_eq!(c.access(0), 10);
        assert_eq!(c.access(64), 10);
        assert_eq!(c.access(0), 10); // evicted
    }

    #[test]
    fn empty_cache_reports_full_hit_rate() {
        assert_eq!(tiny().hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_rejected() {
        let _ = Cache::new(CacheConfig {
            lines: 3,
            line_bytes: 16,
            miss_penalty: 1,
        });
    }
}
