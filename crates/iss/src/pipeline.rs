//! Cycle-stepped five-stage pipeline timing model.
//!
//! [`Machine::run`](crate::Machine::run) charges a per-instruction cost and
//! is fast — a functional simulator with cost annotation. The paper's
//! reference, however, was "an OpenRISC *architectural* simulator modified
//! to supply cycle accurate estimations": a model that steps the
//! micro-architecture cycle by cycle. [`Machine::run_pipelined`] is that
//! model: a scalar in-order five-stage pipeline (IF, ID, EX, MEM, WB) with
//!
//! * full forwarding, so the only data hazard is the **load-use** stall
//!   (one bubble),
//! * multi-cycle execute for multiply/divide (structural stall),
//! * branches resolved in EX — taken branches flush two fetch slots;
//!   unconditional jumps resolve in ID and flush one,
//! * instruction- and data-cache stalls when the caches are enabled.
//!
//! Architectural state changes are applied in program order when an
//! instruction enters EX (wrong-path instructions are never fetched, so no
//! squash logic is needed); the pipeline machinery models *time* only.

use crate::cache::Cache;
use crate::isa::{Instr, Reg};
use crate::machine::{IssError, Machine, RunStats};

/// Per-class execute-stage occupancies and penalties of the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// EX cycles for a multiply.
    pub mul_ex_cycles: u64,
    /// EX cycles for a divide/remainder.
    pub div_ex_cycles: u64,
    /// Fetch slots flushed by a taken branch (resolved in EX).
    pub branch_flush: u64,
    /// Fetch slots flushed by an unconditional jump (resolved in ID).
    pub jump_flush: u64,
    /// Bubbles inserted between a load and an immediately dependent
    /// consumer.
    pub load_use_stall: u64,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            mul_ex_cycles: 3,
            div_ex_cycles: 33,
            branch_flush: 2,
            jump_flush: 1,
            load_use_stall: 1,
        }
    }
}

/// What occupies a pipeline stage.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    instr: Instr,
    /// Remaining cycles in the current stage (0 = ready to advance).
    remaining: u64,
    /// Destination register (for load-use detection), if any.
    dest: Option<Reg>,
    /// `true` for loads (load-use hazard source).
    is_load: bool,
    /// Effective byte address of a memory instruction, captured at
    /// dispatch (register values may change afterwards).
    mem_addr: Option<u32>,
}

fn dest_of(instr: &Instr) -> Option<Reg> {
    use Instr::*;
    match *instr {
        Add(d, ..)
        | Sub(d, ..)
        | Mul(d, ..)
        | Div(d, ..)
        | Rem(d, ..)
        | And(d, ..)
        | Or(d, ..)
        | Xor(d, ..)
        | Sll(d, ..)
        | Srl(d, ..)
        | Sra(d, ..)
        | Slt(d, ..)
        | Seq(d, ..)
        | Addi(d, ..)
        | Andi(d, ..)
        | Ori(d, ..)
        | Xori(d, ..)
        | Slli(d, ..)
        | Srli(d, ..)
        | Srai(d, ..)
        | Slti(d, ..)
        | Li(d, ..)
        | Lw(d, ..)
        | Lb(d, ..)
        | Lbu(d, ..) => Some(d),
        _ => None,
    }
}

fn sources_of(instr: &Instr) -> [Option<Reg>; 2] {
    use Instr::*;
    match *instr {
        Add(_, s, t)
        | Sub(_, s, t)
        | Mul(_, s, t)
        | Div(_, s, t)
        | Rem(_, s, t)
        | And(_, s, t)
        | Or(_, s, t)
        | Xor(_, s, t)
        | Sll(_, s, t)
        | Srl(_, s, t)
        | Sra(_, s, t)
        | Slt(_, s, t)
        | Seq(_, s, t) => [Some(s), Some(t)],
        Addi(_, s, _)
        | Andi(_, s, _)
        | Ori(_, s, _)
        | Xori(_, s, _)
        | Slli(_, s, _)
        | Srli(_, s, _)
        | Srai(_, s, _)
        | Slti(_, s, _)
        | Lw(_, s, _)
        | Lb(_, s, _)
        | Lbu(_, s, _) => [Some(s), None],
        Sw(t, b, _) | Sb(t, b, _) => [Some(t), Some(b)],
        Beq(s, t, _) | Bne(s, t, _) | Blt(s, t, _) | Bge(s, t, _) => [Some(s), Some(t)],
        Jalr(s) => [Some(s), None],
        Li(..) | J(_) | Jal(_) | Halt => [None, None],
    }
}

impl Machine {
    /// Runs the loaded program on the cycle-stepped pipeline model until
    /// `Halt` retires. Returns statistics whose `cycles` field counts
    /// *pipeline cycles* (including every stall and flush).
    ///
    /// # Errors
    ///
    /// The same error conditions as [`Machine::run`], plus
    /// [`IssError::StepLimit`] when `max_cycles` elapses first.
    pub fn run_pipelined(&mut self, max_cycles: u64) -> Result<RunStats, IssError> {
        self.run_pipelined_with(max_cycles, PipelineConfig::default())
    }

    /// [`Machine::run_pipelined`] with an explicit pipeline configuration.
    ///
    /// # Errors
    ///
    /// See [`Machine::run_pipelined`].
    pub fn run_pipelined_with(
        &mut self,
        max_cycles: u64,
        cfg: PipelineConfig,
    ) -> Result<RunStats, IssError> {
        let mut stats = RunStats::default();
        // Stage latches, youngest first: [IF/ID, ID/EX, EX/MEM, MEM/WB].
        let mut if_id: Option<InFlight> = None;
        let mut id_ex: Option<InFlight> = None;
        let mut ex_mem: Option<InFlight> = None;
        let mut mem_wb: Option<InFlight> = None;
        // The IF stage's own state: cycles until the current fetch
        // completes (icache miss or post-flush refill).
        let mut fetch_stall: u64 = 0;
        let mut halted_retired = false;
        let mut halt_seen = false; // stop fetching past Halt

        let mut icache = self.take_icache();
        let mut dcache = self.take_dcache();

        while !halted_retired {
            if stats.cycles >= max_cycles {
                self.put_caches(icache, dcache);
                return Err(IssError::StepLimit { limit: max_cycles });
            }
            stats.cycles += 1;

            // ---- WB: retire.
            if let Some(fl) = mem_wb.take() {
                if matches!(fl.instr, Instr::Halt) {
                    halted_retired = true;
                }
                stats.instructions += 1;
            }

            // ---- MEM: perform the (timing-only) cache access.
            if let Some(mut fl) = ex_mem.take() {
                if fl.remaining > 0 {
                    fl.remaining -= 1;
                    ex_mem = Some(fl);
                } else {
                    mem_wb = Some(fl);
                }
            }

            // ---- EX.
            if ex_mem.is_none() {
                if let Some(mut fl) = id_ex.take() {
                    if fl.remaining > 0 {
                        fl.remaining -= 1;
                        id_ex = Some(fl);
                    } else {
                        // Memory timing is charged in MEM.
                        let mem_cycles = match (&mut dcache, fl.mem_addr) {
                            (Some(c), Some(addr)) => c.access(addr),
                            _ => 0,
                        };
                        fl.remaining = mem_cycles;
                        ex_mem = Some(fl);
                    }
                }
            }

            // ---- ID: dispatch to EX, applying architectural effects.
            if id_ex.is_none() {
                if let Some(fl) = if_id {
                    // Load-use hazard: consumer in ID, load in EX/MEM not
                    // yet past MEM.
                    let load_hazard = [&ex_mem].iter().filter_map(|s| s.as_ref()).any(|older| {
                        older.is_load
                            && older.dest.is_some_and(|d| {
                                sources_of(&fl.instr).iter().flatten().any(|&s| s == d)
                            })
                    });
                    if !load_hazard {
                        if_id = None;
                        // Capture the memory address before the effect can
                        // overwrite the base register (e.g. `lw r4, 0(r4)`).
                        let mem_addr = self.effective_address(&fl.instr);
                        // Execute architectural effect now (in order).
                        let pc_before = self.pc();
                        let mut sub = RunStats::default();
                        if let Err(e) = self.step(&mut sub) {
                            self.put_caches(icache, dcache);
                            return Err(e);
                        }
                        stats.branches_taken += sub.branches_taken;
                        let taken_or_jump = self.pc() != pc_before + 1;
                        let ex_cycles = match fl.instr {
                            Instr::Mul(..) => cfg.mul_ex_cycles,
                            Instr::Div(..) | Instr::Rem(..) => cfg.div_ex_cycles,
                            _ => 1,
                        };
                        id_ex = Some(InFlight {
                            remaining: ex_cycles - 1,
                            mem_addr,
                            ..fl
                        });
                        // Control flow: flush the fetch stream.
                        #[allow(clippy::collapsible_match)]
                        match fl.instr {
                            Instr::J(_) | Instr::Jal(_) | Instr::Jalr(_) => {
                                fetch_stall = fetch_stall.max(cfg.jump_flush);
                                halt_seen = false;
                            }
                            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Bge(..) => {
                                if taken_or_jump {
                                    fetch_stall = fetch_stall.max(cfg.branch_flush);
                                    halt_seen = false;
                                }
                            }
                            _ => {}
                        }
                    } else {
                        // Bubble: ID holds, EX gets nothing.
                        let _ = cfg.load_use_stall; // modelled by the held cycle(s)
                    }
                }
            }

            // ---- IF: fetch the next (correct-path) instruction.
            if if_id.is_none() && !halt_seen {
                if fetch_stall > 0 {
                    fetch_stall -= 1;
                } else {
                    let pc = self.pc();
                    let Some(&instr) = self.code_at(pc) else {
                        self.put_caches(icache, dcache);
                        return Err(IssError::PcOutOfRange { pc });
                    };
                    let icache_extra = icache.as_mut().map_or(0, |c| c.access(pc * 4));
                    if icache_extra > 0 {
                        fetch_stall = icache_extra - 1; // this cycle counts
                    } else {
                        if_id = Some(InFlight {
                            instr,
                            remaining: 0,
                            dest: dest_of(&instr),
                            is_load: matches!(
                                instr,
                                Instr::Lw(..) | Instr::Lb(..) | Instr::Lbu(..)
                            ),
                            mem_addr: None,
                        });
                        if matches!(instr, Instr::Halt) {
                            halt_seen = true;
                        }
                    }
                }
            }
        }
        if let Some(c) = &icache {
            stats.icache_misses = c.misses();
        }
        if let Some(c) = &dcache {
            stats.dcache_misses = c.misses();
        }
        self.put_caches(icache, dcache);
        Ok(stats)
    }
}

// Internal accessors the pipeline model needs, kept out of the public API.
impl Machine {
    pub(crate) fn take_icache(&mut self) -> Option<Cache> {
        self.icache_mut().take()
    }

    pub(crate) fn take_dcache(&mut self) -> Option<Cache> {
        self.dcache_mut().take()
    }

    pub(crate) fn put_caches(&mut self, ic: Option<Cache>, dc: Option<Cache>) {
        *self.icache_mut() = ic;
        *self.dcache_mut() = dc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::isa::{Program, Target};

    fn pipelined(code: Vec<Instr>) -> (Machine, RunStats) {
        let mut m = Machine::new(4096);
        m.load(&Program { code, data: vec![] });
        let stats = m.run_pipelined(1_000_000).expect("runs");
        (m, stats)
    }

    #[test]
    fn straight_line_code_approaches_cpi_1() {
        let mut code = vec![Instr::Li(Reg(9), 0)];
        for _ in 0..100 {
            code.push(Instr::Addi(Reg(9), Reg(9), 1));
        }
        code.push(Instr::Halt);
        let (m, stats) = pipelined(code);
        assert_eq!(m.reg(Reg(9)), 100);
        // 102 instructions + 4 cycles of pipeline fill.
        assert_eq!(stats.instructions, 102);
        assert!(
            stats.cycles >= 102 && stats.cycles <= 110,
            "{}",
            stats.cycles
        );
    }

    #[test]
    fn results_match_functional_model() {
        // The same program must compute identical architectural state
        // under both timing models.
        let code = vec![
            Instr::Li(Reg(10), 10),
            Instr::Li(Reg(11), 0),
            Instr::Add(Reg(11), Reg(11), Reg(10)), // 2:
            Instr::Addi(Reg(10), Reg(10), -1),
            Instr::Bne(Reg(10), Reg::ZERO, Target(2)),
            Instr::Mul(Reg(12), Reg(11), Reg(11)),
            Instr::Halt,
        ];
        let (m1, s1) = pipelined(code.clone());
        let mut m2 = Machine::new(4096);
        m2.load(&Program { code, data: vec![] });
        let s2 = m2.run(1_000_000).unwrap();
        assert_eq!(m1.reg(Reg(11)), m2.reg(Reg(11)));
        assert_eq!(m1.reg(Reg(12)), 55 * 55);
        assert_eq!(s1.instructions, s2.instructions);
        assert_eq!(s1.branches_taken, s2.branches_taken);
    }

    #[test]
    fn taken_branches_cost_flush_cycles() {
        // Loop of 50 taken branches vs equivalent straight-line adds.
        let mut loop_code = vec![Instr::Li(Reg(9), 50)];
        loop_code.push(Instr::Addi(Reg(9), Reg(9), -1)); // 1:
        loop_code.push(Instr::Bne(Reg(9), Reg::ZERO, Target(1)));
        loop_code.push(Instr::Halt);
        let (_, looped) = pipelined(loop_code);
        // Each taken branch adds ~branch_flush cycles of refetch.
        let expected_min = looped.instructions + 49 * 2;
        assert!(
            looped.cycles >= expected_min,
            "{} < {expected_min}",
            looped.cycles
        );
    }

    #[test]
    fn load_use_inserts_a_bubble() {
        let dependent = vec![
            Instr::Sw(Reg::ZERO, Reg::ZERO, 64),
            Instr::Lw(Reg(9), Reg::ZERO, 64),
            Instr::Addi(Reg(10), Reg(9), 1), // immediately uses the load
            Instr::Halt,
        ];
        let independent = vec![
            Instr::Sw(Reg::ZERO, Reg::ZERO, 64),
            Instr::Lw(Reg(9), Reg::ZERO, 64),
            Instr::Addi(Reg(10), Reg(11), 1), // no dependence
            Instr::Halt,
        ];
        let (_, dep) = pipelined(dependent);
        let (_, indep) = pipelined(independent);
        assert!(
            dep.cycles > indep.cycles,
            "{} <= {}",
            dep.cycles,
            indep.cycles
        );
    }

    #[test]
    fn multicycle_divide_stalls() {
        let with_div = vec![
            Instr::Li(Reg(9), 100),
            Instr::Li(Reg(10), 7),
            Instr::Div(Reg(11), Reg(9), Reg(10)),
            Instr::Halt,
        ];
        let with_add = vec![
            Instr::Li(Reg(9), 100),
            Instr::Li(Reg(10), 7),
            Instr::Add(Reg(11), Reg(9), Reg(10)),
            Instr::Halt,
        ];
        let (m, div) = pipelined(with_div);
        let (_, add) = pipelined(with_add);
        assert_eq!(m.reg(Reg(11)), 14);
        assert!(div.cycles >= add.cycles + 30);
    }

    #[test]
    fn caches_add_pipeline_stalls() {
        let code: Vec<Instr> = (0..64)
            .map(|i| Instr::Lw(Reg(9), Reg::ZERO, 64 * i))
            .chain([Instr::Halt])
            .collect();
        let (_, fast) = pipelined(code.clone());
        let mut m = Machine::new(1 << 16);
        m.enable_icache(CacheConfig::small());
        m.enable_dcache(CacheConfig::small());
        m.load(&Program { code, data: vec![] });
        let slow = m.run_pipelined(1_000_000).unwrap();
        assert!(slow.dcache_misses >= 60);
        assert!(slow.cycles > fast.cycles);
    }

    #[test]
    fn minic_program_agrees_across_models() {
        let compiled = crate::minic::compile(
            "int result;\n\
             int main() {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < 50; i = i + 1) acc = acc + i * 3;\n\
               result = acc;\n\
               return 0;\n\
             }",
        )
        .unwrap();
        let mut m1 = Machine::new(1 << 20);
        m1.load(&compiled.program);
        m1.run(10_000_000).unwrap();
        let mut m2 = Machine::new(1 << 20);
        m2.load(&compiled.program);
        m2.run_pipelined(10_000_000).unwrap();
        assert_eq!(
            m1.read_word(compiled.global("result")),
            m2.read_word(compiled.global("result"))
        );
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut m = Machine::new(64);
        m.load(&Program {
            code: vec![Instr::J(Target(0))],
            data: vec![],
        });
        assert_eq!(
            m.run_pipelined(100),
            Err(IssError::StepLimit { limit: 100 })
        );
    }
}
