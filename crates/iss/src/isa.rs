//! The instruction set of the reference processor.
//!
//! A 32-register, 32-bit in-order RISC in the OpenRISC/RISC-V mould — the
//! stand-in for the paper's "OpenRISC architectural simulator modified to
//! supply cycle accurate estimations". The ISA is deliberately small: it is
//! the *target* of the `minic` compiler and the *subject* of the
//! cycle-accurate interpreter, nothing more.

use std::fmt;

/// A register index (`r0`–`r31`). `r0` always reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address (written by `Jal`/`Jalr`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Frame pointer.
    pub const FP: Reg = Reg(3);
    /// Accumulator / first argument / return value.
    pub const ACC: Reg = Reg(4);
    /// Secondary scratch.
    pub const TMP: Reg = Reg(5);
    /// Tertiary scratch (used by compound code sequences).
    pub const TMP2: Reg = Reg(6);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A resolved branch/jump target: an instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target(pub u32);

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// One machine instruction.
///
/// Three-operand ALU ops write `rd = rs op rt`; immediates are sign-extended
/// 32-bit values (the interpreter does not model encoding width, but the
/// cycle model charges an extra cycle for immediates outside ±32 KiB, the
/// cost of the `lui`+`ori` pair a real encoding would need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    // --- ALU register-register ---
    /// `rd = rs + rt`
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt`
    Sub(Reg, Reg, Reg),
    /// `rd = rs * rt` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `rd = rs / rt` (traps on zero divisor)
    Div(Reg, Reg, Reg),
    /// `rd = rs % rt` (traps on zero divisor)
    Rem(Reg, Reg, Reg),
    /// `rd = rs & rt`
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`
    Xor(Reg, Reg, Reg),
    /// `rd = rs << (rt & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = (rs as u32) >> (rt & 31)`
    Srl(Reg, Reg, Reg),
    /// `rd = rs >> (rt & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = (rs < rt) as i32` (signed)
    Slt(Reg, Reg, Reg),
    /// `rd = (rs == rt) as i32`
    Seq(Reg, Reg, Reg),
    // --- ALU immediate ---
    /// `rd = rs + imm`
    Addi(Reg, Reg, i32),
    /// `rd = rs & imm`
    Andi(Reg, Reg, i32),
    /// `rd = rs | imm`
    Ori(Reg, Reg, i32),
    /// `rd = rs ^ imm`
    Xori(Reg, Reg, i32),
    /// `rd = rs << imm`
    Slli(Reg, Reg, u8),
    /// `rd = (rs as u32) >> imm`
    Srli(Reg, Reg, u8),
    /// `rd = rs >> imm` (arithmetic)
    Srai(Reg, Reg, u8),
    /// `rd = (rs < imm) as i32` (signed)
    Slti(Reg, Reg, i32),
    /// `rd = imm` (pseudo `li`; costs 2 cycles for wide immediates)
    Li(Reg, i32),
    // --- memory ---
    /// `rd = mem32[rs + off]`
    Lw(Reg, Reg, i32),
    /// `mem32[rs + off] = rt` — operands: (rt, base, off)
    Sw(Reg, Reg, i32),
    /// `rd = sext(mem8[rs + off])`
    Lb(Reg, Reg, i32),
    /// `rd = zext(mem8[rs + off])`
    Lbu(Reg, Reg, i32),
    /// `mem8[rs + off] = rt & 0xff` — operands: (rt, base, off)
    Sb(Reg, Reg, i32),
    // --- control ---
    /// Branch to target if `rs == rt`.
    Beq(Reg, Reg, Target),
    /// Branch to target if `rs != rt`.
    Bne(Reg, Reg, Target),
    /// Branch to target if `rs < rt` (signed).
    Blt(Reg, Reg, Target),
    /// Branch to target if `rs >= rt` (signed).
    Bge(Reg, Reg, Target),
    /// Unconditional jump.
    J(Target),
    /// Call: `ra = pc + 1; pc = target`.
    Jal(Target),
    /// Indirect jump (return): `pc = rs`.
    Jalr(Reg),
    /// Stop execution.
    Halt,
}

impl Instr {
    /// `true` for loads and stores (used by the data-cache model).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Lw(..) | Instr::Sw(..) | Instr::Lb(..) | Instr::Lbu(..) | Instr::Sb(..)
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add(d, s, t) => write!(f, "add  {d}, {s}, {t}"),
            Sub(d, s, t) => write!(f, "sub  {d}, {s}, {t}"),
            Mul(d, s, t) => write!(f, "mul  {d}, {s}, {t}"),
            Div(d, s, t) => write!(f, "div  {d}, {s}, {t}"),
            Rem(d, s, t) => write!(f, "rem  {d}, {s}, {t}"),
            And(d, s, t) => write!(f, "and  {d}, {s}, {t}"),
            Or(d, s, t) => write!(f, "or   {d}, {s}, {t}"),
            Xor(d, s, t) => write!(f, "xor  {d}, {s}, {t}"),
            Sll(d, s, t) => write!(f, "sll  {d}, {s}, {t}"),
            Srl(d, s, t) => write!(f, "srl  {d}, {s}, {t}"),
            Sra(d, s, t) => write!(f, "sra  {d}, {s}, {t}"),
            Slt(d, s, t) => write!(f, "slt  {d}, {s}, {t}"),
            Seq(d, s, t) => write!(f, "seq  {d}, {s}, {t}"),
            Addi(d, s, i) => write!(f, "addi {d}, {s}, {i}"),
            Andi(d, s, i) => write!(f, "andi {d}, {s}, {i}"),
            Ori(d, s, i) => write!(f, "ori  {d}, {s}, {i}"),
            Xori(d, s, i) => write!(f, "xori {d}, {s}, {i}"),
            Slli(d, s, i) => write!(f, "slli {d}, {s}, {i}"),
            Srli(d, s, i) => write!(f, "srli {d}, {s}, {i}"),
            Srai(d, s, i) => write!(f, "srai {d}, {s}, {i}"),
            Slti(d, s, i) => write!(f, "slti {d}, {s}, {i}"),
            Li(d, i) => write!(f, "li   {d}, {i}"),
            Lw(d, b, o) => write!(f, "lw   {d}, {o}({b})"),
            Sw(t, b, o) => write!(f, "sw   {t}, {o}({b})"),
            Lb(d, b, o) => write!(f, "lb   {d}, {o}({b})"),
            Lbu(d, b, o) => write!(f, "lbu  {d}, {o}({b})"),
            Sb(t, b, o) => write!(f, "sb   {t}, {o}({b})"),
            Beq(s, t, l) => write!(f, "beq  {s}, {t}, {l}"),
            Bne(s, t, l) => write!(f, "bne  {s}, {t}, {l}"),
            Blt(s, t, l) => write!(f, "blt  {s}, {t}, {l}"),
            Bge(s, t, l) => write!(f, "bge  {s}, {t}, {l}"),
            J(l) => write!(f, "j    {l}"),
            Jal(l) => write!(f, "jal  {l}"),
            Jalr(s) => write!(f, "jalr {s}"),
            Halt => write!(f, "halt"),
        }
    }
}

/// A complete executable program: instructions plus initial data segments.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction stream; execution starts at index 0.
    pub code: Vec<Instr>,
    /// `(address, bytes)` pairs copied into memory before execution.
    pub data: Vec<(u32, Vec<u8>)>,
}

impl Program {
    /// Disassembles the program as readable text.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, ins) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{i:5}: {ins}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_display() {
        assert_eq!(Reg::ZERO.to_string(), "r0");
        assert_eq!(Reg::ACC.to_string(), "r4");
    }

    #[test]
    fn instruction_display_is_readable() {
        assert_eq!(
            Instr::Add(Reg::ACC, Reg::TMP, Reg::ZERO).to_string(),
            "add  r4, r5, r0"
        );
        assert_eq!(
            Instr::Lw(Reg(7), Reg::SP, -4).to_string(),
            "lw   r7, -4(r2)"
        );
        assert_eq!(
            Instr::Beq(Reg(1), Reg(2), Target(9)).to_string(),
            "beq  r1, r2, @9"
        );
    }

    #[test]
    fn memory_classification() {
        assert!(Instr::Lw(Reg(1), Reg(2), 0).is_memory());
        assert!(Instr::Sb(Reg(1), Reg(2), 0).is_memory());
        assert!(!Instr::Add(Reg(1), Reg(2), Reg(3)).is_memory());
    }

    #[test]
    fn disassembly_lists_all_instructions() {
        let p = Program {
            code: vec![Instr::Li(Reg::ACC, 7), Instr::Halt],
            data: vec![],
        };
        let d = p.disassemble();
        assert!(d.contains("0: li   r4, 7"));
        assert!(d.contains("1: halt"));
    }
}
