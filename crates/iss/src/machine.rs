//! The cycle-accurate interpreter.

use std::fmt;

use crate::cache::{Cache, CacheConfig};
use crate::isa::{Instr, Program, Reg};

/// Per-class instruction latencies, in cycles.
///
/// The defaults model a scalar in-order RISC of the OpenRISC class: single-
/// cycle ALU, 3-cycle multiply, iterative 33-cycle divide, 2-cycle loads,
/// a taken-branch penalty, and 2-cycle jumps/calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleModel {
    /// Simple ALU operations (add, logic, shifts, compares).
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
    /// Loads (cache hit).
    pub load: u64,
    /// Stores (cache hit).
    pub store: u64,
    /// Conditional branch, not taken.
    pub branch: u64,
    /// Extra cycles when a branch is taken (pipeline refill).
    pub branch_taken_extra: u64,
    /// Unconditional jumps, calls and returns.
    pub jump: u64,
    /// Extra cycles for materializing a wide immediate (outside ±32 KiB).
    pub wide_imm_extra: u64,
}

impl Default for CycleModel {
    fn default() -> CycleModel {
        CycleModel {
            alu: 1,
            mul: 3,
            div: 33,
            load: 2,
            store: 2,
            branch: 1,
            branch_taken_extra: 2,
            jump: 2,
            wide_imm_extra: 1,
        }
    }
}

/// Errors raised by program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssError {
    /// Division or remainder by zero at the given instruction index.
    DivideByZero {
        /// Instruction index.
        pc: u32,
    },
    /// A memory access fell outside the configured memory.
    MemoryFault {
        /// Instruction index.
        pc: u32,
        /// Faulting byte address.
        addr: u32,
    },
    /// The program counter left the code region without `Halt`.
    PcOutOfRange {
        /// The invalid program counter.
        pc: u32,
    },
    /// The step limit was exceeded (runaway program).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for IssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssError::DivideByZero { pc } => write!(f, "divide by zero at pc {pc}"),
            IssError::MemoryFault { pc, addr } => {
                write!(f, "memory fault at pc {pc}, address {addr:#x}")
            }
            IssError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            IssError::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for IssError {}

/// Execution statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total cycles, including cache penalties.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Taken branches.
    pub branches_taken: u64,
    /// Instruction-cache misses (0 when the cache is disabled).
    pub icache_misses: u64,
    /// Data-cache misses (0 when the cache is disabled).
    pub dcache_misses: u64,
}

impl RunStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// The reference processor: registers, memory, caches and the cycle model.
///
/// # Examples
///
/// ```
/// use scperf_iss::{Instr, Machine, Program, Reg};
///
/// let program = Program {
///     code: vec![
///         Instr::Li(Reg::ACC, 6),
///         Instr::Li(Reg::TMP, 7),
///         Instr::Mul(Reg::ACC, Reg::ACC, Reg::TMP),
///         Instr::Halt,
///     ],
///     data: vec![],
/// };
/// let mut m = Machine::new(64 * 1024);
/// m.load(&program);
/// let stats = m.run(1_000)?;
/// assert_eq!(m.reg(Reg::ACC), 42);
/// assert!(stats.cycles >= stats.instructions);
/// # Ok::<(), scperf_iss::IssError>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    regs: [i32; 32],
    mem: Vec<u8>,
    code: Vec<Instr>,
    pc: u32,
    model: CycleModel,
    icache: Option<Cache>,
    dcache: Option<Cache>,
    halted: bool,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of zeroed memory and the default
    /// cycle model, caches disabled. The stack pointer starts at the top of
    /// memory.
    pub fn new(mem_bytes: usize) -> Machine {
        let mut m = Machine {
            regs: [0; 32],
            mem: vec![0; mem_bytes],
            code: Vec::new(),
            pc: 0,
            model: CycleModel::default(),
            icache: None,
            dcache: None,
            halted: false,
        };
        m.regs[Reg::SP.0 as usize] = mem_bytes as i32;
        m
    }

    /// Replaces the cycle model.
    pub fn set_cycle_model(&mut self, model: CycleModel) {
        self.model = model;
    }

    /// Enables the instruction cache.
    pub fn enable_icache(&mut self, cfg: CacheConfig) {
        self.icache = Some(Cache::new(cfg));
    }

    /// Enables the data cache.
    pub fn enable_dcache(&mut self, cfg: CacheConfig) {
        self.dcache = Some(Cache::new(cfg));
    }

    /// Loads a program: installs the code and copies the data segments.
    ///
    /// # Panics
    ///
    /// Panics if a data segment exceeds the memory size.
    pub fn load(&mut self, program: &Program) {
        self.code = program.code.clone();
        for (addr, bytes) in &program.data {
            let a = *addr as usize;
            self.mem[a..a + bytes.len()].copy_from_slice(bytes);
        }
        self.pc = 0;
        self.halted = false;
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> i32 {
        self.regs[r.0 as usize]
    }

    /// Writes a register (`r0` writes are ignored).
    pub fn set_reg(&mut self, r: Reg, v: i32) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Reads a 32-bit little-endian word from memory.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn read_word(&self, addr: u32) -> i32 {
        let a = addr as usize;
        i32::from_le_bytes(self.mem[a..a + 4].try_into().expect("4 bytes"))
    }

    /// Writes a 32-bit little-endian word to memory.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn write_word(&mut self, addr: u32, v: i32) {
        let a = addr as usize;
        self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads `len` bytes of memory.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// Runs until `Halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns an [`IssError`] on divide-by-zero, memory faults, a wild
    /// program counter, or when the step limit is exceeded.
    pub fn run(&mut self, max_steps: u64) -> Result<RunStats, IssError> {
        let mut stats = RunStats::default();
        while !self.halted {
            if stats.instructions >= max_steps {
                return Err(IssError::StepLimit { limit: max_steps });
            }
            self.step(&mut stats)?;
        }
        if let Some(c) = &self.icache {
            stats.icache_misses = c.misses();
        }
        if let Some(c) = &self.dcache {
            stats.dcache_misses = c.misses();
        }
        Ok(stats)
    }

    fn mem_check(&self, pc: u32, addr: i64, len: i64) -> Result<u32, IssError> {
        if addr < 0 || (addr + len) as usize > self.mem.len() {
            Err(IssError::MemoryFault {
                pc,
                addr: addr as u32,
            })
        } else {
            Ok(addr as u32)
        }
    }

    #[inline]
    fn imm_cost(&self, imm: i32) -> u64 {
        if (-32768..=32767).contains(&imm) {
            0
        } else {
            self.model.wide_imm_extra
        }
    }

    /// Applies one instruction's architectural effect and charges the
    /// per-instruction cost model into `stats` (the functional timing
    /// model; the pipeline model reuses the effects and ignores the cost).
    pub(crate) fn step(&mut self, stats: &mut RunStats) -> Result<(), IssError> {
        let pc = self.pc;
        let Some(&ins) = self.code.get(pc as usize) else {
            return Err(IssError::PcOutOfRange { pc });
        };
        if let Some(ic) = &mut self.icache {
            stats.cycles += ic.access(pc * 4);
        }
        let m = self.model;
        let mut next = pc + 1;
        use Instr::*;
        let cost = match ins {
            Add(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_add(self.reg(t)));
                m.alu
            }
            Sub(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_sub(self.reg(t)));
                m.alu
            }
            Mul(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_mul(self.reg(t)));
                m.mul
            }
            Div(d, s, t) => {
                let div = self.reg(t);
                if div == 0 {
                    return Err(IssError::DivideByZero { pc });
                }
                self.set_reg(d, self.reg(s).wrapping_div(div));
                m.div
            }
            Rem(d, s, t) => {
                let div = self.reg(t);
                if div == 0 {
                    return Err(IssError::DivideByZero { pc });
                }
                self.set_reg(d, self.reg(s).wrapping_rem(div));
                m.div
            }
            And(d, s, t) => {
                self.set_reg(d, self.reg(s) & self.reg(t));
                m.alu
            }
            Or(d, s, t) => {
                self.set_reg(d, self.reg(s) | self.reg(t));
                m.alu
            }
            Xor(d, s, t) => {
                self.set_reg(d, self.reg(s) ^ self.reg(t));
                m.alu
            }
            Sll(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_shl(self.reg(t) as u32 & 31));
                m.alu
            }
            Srl(d, s, t) => {
                self.set_reg(
                    d,
                    ((self.reg(s) as u32) >> (self.reg(t) as u32 & 31)) as i32,
                );
                m.alu
            }
            Sra(d, s, t) => {
                self.set_reg(d, self.reg(s) >> (self.reg(t) as u32 & 31));
                m.alu
            }
            Slt(d, s, t) => {
                self.set_reg(d, (self.reg(s) < self.reg(t)) as i32);
                m.alu
            }
            Seq(d, s, t) => {
                self.set_reg(d, (self.reg(s) == self.reg(t)) as i32);
                m.alu
            }
            Addi(d, s, i) => {
                self.set_reg(d, self.reg(s).wrapping_add(i));
                m.alu + self.imm_cost(i)
            }
            Andi(d, s, i) => {
                self.set_reg(d, self.reg(s) & i);
                m.alu + self.imm_cost(i)
            }
            Ori(d, s, i) => {
                self.set_reg(d, self.reg(s) | i);
                m.alu + self.imm_cost(i)
            }
            Xori(d, s, i) => {
                self.set_reg(d, self.reg(s) ^ i);
                m.alu + self.imm_cost(i)
            }
            Slli(d, s, i) => {
                self.set_reg(d, self.reg(s).wrapping_shl(i as u32));
                m.alu
            }
            Srli(d, s, i) => {
                self.set_reg(d, ((self.reg(s) as u32) >> i) as i32);
                m.alu
            }
            Srai(d, s, i) => {
                self.set_reg(d, self.reg(s) >> i);
                m.alu
            }
            Slti(d, s, i) => {
                self.set_reg(d, (self.reg(s) < i) as i32);
                m.alu + self.imm_cost(i)
            }
            Li(d, i) => {
                self.set_reg(d, i);
                m.alu + self.imm_cost(i)
            }
            Lw(d, b, o) => {
                let addr = self.mem_check(pc, self.reg(b) as i64 + o as i64, 4)?;
                let v = self.read_word(addr);
                self.set_reg(d, v);
                let extra = self.dcache.as_mut().map_or(0, |c| c.access(addr));
                m.load + extra
            }
            Sw(t, b, o) => {
                let addr = self.mem_check(pc, self.reg(b) as i64 + o as i64, 4)?;
                self.write_word(addr, self.reg(t));
                let extra = self.dcache.as_mut().map_or(0, |c| c.access(addr));
                m.store + extra
            }
            Lb(d, b, o) => {
                let addr = self.mem_check(pc, self.reg(b) as i64 + o as i64, 1)?;
                let v = self.mem[addr as usize] as i8 as i32;
                self.set_reg(d, v);
                let extra = self.dcache.as_mut().map_or(0, |c| c.access(addr));
                m.load + extra
            }
            Lbu(d, b, o) => {
                let addr = self.mem_check(pc, self.reg(b) as i64 + o as i64, 1)?;
                let v = self.mem[addr as usize] as i32;
                self.set_reg(d, v);
                let extra = self.dcache.as_mut().map_or(0, |c| c.access(addr));
                m.load + extra
            }
            Sb(t, b, o) => {
                let addr = self.mem_check(pc, self.reg(b) as i64 + o as i64, 1)?;
                self.mem[addr as usize] = self.reg(t) as u8;
                let extra = self.dcache.as_mut().map_or(0, |c| c.access(addr));
                m.store + extra
            }
            Beq(s, t, l) => self.branch(self.reg(s) == self.reg(t), l, &mut next, stats),
            Bne(s, t, l) => self.branch(self.reg(s) != self.reg(t), l, &mut next, stats),
            Blt(s, t, l) => self.branch(self.reg(s) < self.reg(t), l, &mut next, stats),
            Bge(s, t, l) => self.branch(self.reg(s) >= self.reg(t), l, &mut next, stats),
            J(l) => {
                next = l.0;
                m.jump
            }
            Jal(l) => {
                self.set_reg(Reg::RA, (pc + 1) as i32);
                next = l.0;
                m.jump
            }
            Jalr(s) => {
                next = self.reg(s) as u32;
                m.jump
            }
            Halt => {
                self.halted = true;
                0
            }
        };
        stats.cycles += cost;
        stats.instructions += 1;
        self.pc = next;
        Ok(())
    }

    /// Current program counter (instruction index).
    pub(crate) fn pc(&self) -> u32 {
        self.pc
    }

    /// The instruction at `pc`, if in range.
    pub(crate) fn code_at(&self, pc: u32) -> Option<&Instr> {
        self.code.get(pc as usize)
    }

    /// The byte address a memory instruction will access with the current
    /// register values (timing model use; may be out of range — the
    /// functional step reports the fault).
    pub(crate) fn effective_address(&self, instr: &Instr) -> Option<u32> {
        use Instr::*;
        match *instr {
            Lw(_, b, o) | Sw(_, b, o) | Lb(_, b, o) | Lbu(_, b, o) | Sb(_, b, o) => {
                Some((self.reg(b) as i64 + o as i64) as u32)
            }
            _ => None,
        }
    }

    pub(crate) fn icache_mut(&mut self) -> &mut Option<crate::cache::Cache> {
        &mut self.icache
    }

    pub(crate) fn dcache_mut(&mut self) -> &mut Option<crate::cache::Cache> {
        &mut self.dcache
    }

    #[inline]
    fn branch(
        &self,
        taken: bool,
        l: crate::isa::Target,
        next: &mut u32,
        stats: &mut RunStats,
    ) -> u64 {
        if taken {
            *next = l.0;
            stats.branches_taken += 1;
            self.model.branch + self.model.branch_taken_extra
        } else {
            self.model.branch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Target;

    fn run_code(code: Vec<Instr>) -> (Machine, RunStats) {
        let mut m = Machine::new(4096);
        m.load(&Program { code, data: vec![] });
        let stats = m.run(100_000).expect("program runs");
        (m, stats)
    }

    #[test]
    fn alu_semantics() {
        let (m, _) = run_code(vec![
            Instr::Li(Reg(10), 10),
            Instr::Li(Reg(11), 3),
            Instr::Add(Reg(12), Reg(10), Reg(11)),
            Instr::Sub(Reg(13), Reg(10), Reg(11)),
            Instr::Mul(Reg(14), Reg(10), Reg(11)),
            Instr::Div(Reg(15), Reg(10), Reg(11)),
            Instr::Rem(Reg(16), Reg(10), Reg(11)),
            Instr::Slt(Reg(17), Reg(11), Reg(10)),
            Instr::Seq(Reg(18), Reg(11), Reg(11)),
            Instr::Sll(Reg(19), Reg(10), Reg(11)),
            Instr::Sra(Reg(20), Reg(10), Reg(11)),
            Instr::Halt,
        ]);
        assert_eq!(m.reg(Reg(12)), 13);
        assert_eq!(m.reg(Reg(13)), 7);
        assert_eq!(m.reg(Reg(14)), 30);
        assert_eq!(m.reg(Reg(15)), 3);
        assert_eq!(m.reg(Reg(16)), 1);
        assert_eq!(m.reg(Reg(17)), 1);
        assert_eq!(m.reg(Reg(18)), 1);
        assert_eq!(m.reg(Reg(19)), 80);
        assert_eq!(m.reg(Reg(20)), 1);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (m, _) = run_code(vec![Instr::Li(Reg::ZERO, 42), Instr::Halt]);
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn memory_round_trip_and_bytes() {
        let (m, _) = run_code(vec![
            Instr::Li(Reg(10), -123456),
            Instr::Sw(Reg(10), Reg::ZERO, 100),
            Instr::Lw(Reg(11), Reg::ZERO, 100),
            Instr::Li(Reg(12), 0x1ff),
            Instr::Sb(Reg(12), Reg::ZERO, 200),
            Instr::Lbu(Reg(13), Reg::ZERO, 200),
            Instr::Lb(Reg(14), Reg::ZERO, 200),
            Instr::Halt,
        ]);
        assert_eq!(m.reg(Reg(11)), -123456);
        assert_eq!(m.reg(Reg(13)), 0xff);
        assert_eq!(m.reg(Reg(14)), -1);
    }

    #[test]
    fn loop_and_branch_cycles() {
        // A 10-iteration count-down loop.
        let code = vec![
            Instr::Li(Reg(10), 10),
            Instr::Addi(Reg(10), Reg(10), -1), // 1:
            Instr::Bne(Reg(10), Reg::ZERO, Target(1)),
            Instr::Halt,
        ];
        let (m, stats) = run_code(code);
        assert_eq!(m.reg(Reg(10)), 0);
        assert_eq!(stats.branches_taken, 9);
        // li(1) + 10*(addi 1 + branch 1) + 9*taken_extra(2) = 39
        assert_eq!(stats.cycles, 1 + 10 * 2 + 9 * 2);
        assert_eq!(stats.instructions, 1 + 20 + 1); // + halt
        assert!(stats.cpi() > 1.0);
    }

    #[test]
    fn call_and_return() {
        // main: jal f; halt   f: li acc, 9; jalr ra
        let code = vec![
            Instr::Jal(Target(2)),
            Instr::Halt,
            Instr::Li(Reg::ACC, 9),
            Instr::Jalr(Reg::RA),
        ];
        let (m, _) = run_code(code);
        assert_eq!(m.reg(Reg::ACC), 9);
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let mut m = Machine::new(1024);
        m.load(&Program {
            code: vec![Instr::Div(Reg(10), Reg(10), Reg::ZERO), Instr::Halt],
            data: vec![],
        });
        assert_eq!(m.run(100), Err(IssError::DivideByZero { pc: 0 }));
    }

    #[test]
    fn memory_fault_detected() {
        let mut m = Machine::new(64);
        m.load(&Program {
            code: vec![Instr::Lw(Reg(10), Reg::ZERO, 1000), Instr::Halt],
            data: vec![],
        });
        assert!(matches!(m.run(100), Err(IssError::MemoryFault { .. })));
    }

    #[test]
    fn step_limit_detected() {
        let mut m = Machine::new(64);
        m.load(&Program {
            code: vec![Instr::J(Target(0))],
            data: vec![],
        });
        assert_eq!(m.run(50), Err(IssError::StepLimit { limit: 50 }));
    }

    #[test]
    fn pc_out_of_range_detected() {
        let mut m = Machine::new(64);
        m.load(&Program {
            code: vec![Instr::Addi(Reg(9), Reg::ZERO, 1)],
            data: vec![],
        });
        assert_eq!(m.run(100), Err(IssError::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn wide_immediates_cost_extra() {
        let (_, narrow) = run_code(vec![Instr::Li(Reg(9), 100), Instr::Halt]);
        let (_, wide) = run_code(vec![Instr::Li(Reg(9), 1_000_000), Instr::Halt]);
        assert_eq!(wide.cycles, narrow.cycles + 1);
    }

    #[test]
    fn data_segments_are_loaded() {
        let mut m = Machine::new(1024);
        m.load(&Program {
            code: vec![Instr::Lw(Reg(9), Reg::ZERO, 512), Instr::Halt],
            data: vec![(512, 77_i32.to_le_bytes().to_vec())],
        });
        m.run(10).unwrap();
        assert_eq!(m.reg(Reg(9)), 77);
        assert_eq!(m.read_bytes(512, 4), 77_i32.to_le_bytes());
    }

    #[test]
    fn caches_add_miss_penalties() {
        let code = vec![
            Instr::Lw(Reg(9), Reg::ZERO, 0),
            Instr::Lw(Reg(9), Reg::ZERO, 0),
            Instr::Halt,
        ];
        let mut m = Machine::new(1024);
        m.enable_dcache(CacheConfig::small());
        m.enable_icache(CacheConfig::small());
        m.load(&Program {
            code: code.clone(),
            data: vec![],
        });
        let with_cache = m.run(100).unwrap();
        let mut m2 = Machine::new(1024);
        m2.load(&Program { code, data: vec![] });
        let without = m2.run(100).unwrap();
        // One dcache miss (second access hits) and one icache miss (both
        // instructions share a line, halt too).
        assert_eq!(with_cache.dcache_misses, 1);
        assert!(with_cache.icache_misses >= 1);
        assert!(with_cache.cycles > without.cycles);
    }
}
