//! A small assembler layer: label management over the raw instruction
//! stream. Used directly by hand-written kernels and as the backend of the
//! `minic` compiler.

use std::collections::HashMap;

use crate::isa::{Instr, Program, Target};

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Program`] with symbolic labels.
///
/// # Examples
///
/// ```
/// use scperf_iss::{Instr, Machine, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.new_label();
/// b.emit(Instr::Li(Reg::ACC, 0));
/// b.emit(Instr::Li(Reg::TMP, 5));
/// let top = b.bind_here();
/// b.emit(Instr::Add(Reg::ACC, Reg::ACC, Reg::TMP));
/// b.emit(Instr::Addi(Reg::TMP, Reg::TMP, -1));
/// b.beq(Reg::TMP, Reg::ZERO, done);
/// b.j(top);
/// b.bind(done);
/// b.emit(Instr::Halt);
///
/// let mut m = Machine::new(1024);
/// m.load(&b.finish());
/// m.run(1_000)?;
/// assert_eq!(m.reg(Reg::ACC), 5 + 4 + 3 + 2 + 1);
/// # Ok::<(), scperf_iss::IssError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Instr>,
    data: Vec<(u32, Vec<u8>)>,
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs to patch at finish.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a label for later binding.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len() as u32);
    }

    /// Declares and binds a label at the current position.
    pub fn bind_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// The index the next instruction will occupy.
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Appends an instruction with no label operand.
    pub fn emit(&mut self, ins: Instr) {
        self.code.push(ins);
    }

    /// `beq rs, rt, label`
    pub fn beq(&mut self, rs: crate::Reg, rt: crate::Reg, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Beq(rs, rt, Target(u32::MAX)));
    }

    /// `bne rs, rt, label`
    pub fn bne(&mut self, rs: crate::Reg, rt: crate::Reg, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Bne(rs, rt, Target(u32::MAX)));
    }

    /// `blt rs, rt, label`
    pub fn blt(&mut self, rs: crate::Reg, rt: crate::Reg, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Blt(rs, rt, Target(u32::MAX)));
    }

    /// `bge rs, rt, label`
    pub fn bge(&mut self, rs: crate::Reg, rt: crate::Reg, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Bge(rs, rt, Target(u32::MAX)));
    }

    /// `j label`
    pub fn j(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::J(Target(u32::MAX)));
    }

    /// `jal label`
    pub fn jal(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Jal(Target(u32::MAX)));
    }

    /// Adds an initialized data segment.
    pub fn data(&mut self, addr: u32, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        let resolve: HashMap<usize, u32> = self
            .fixups
            .iter()
            .map(|&(at, l)| {
                let target = self.labels[l.0].expect("label referenced but never bound");
                (at, target)
            })
            .collect();
        for (&at, &target) in &resolve {
            let t = Target(target);
            self.code[at] = match self.code[at] {
                Instr::Beq(a, b, _) => Instr::Beq(a, b, t),
                Instr::Bne(a, b, _) => Instr::Bne(a, b, t),
                Instr::Blt(a, b, _) => Instr::Blt(a, b, t),
                Instr::Bge(a, b, _) => Instr::Bge(a, b, t),
                Instr::J(_) => Instr::J(t),
                Instr::Jal(_) => Instr::Jal(t),
                other => other,
            };
        }
        Program {
            code: self.code,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use crate::machine::Machine;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.emit(Instr::Li(Reg(10), 3));
        let top = b.bind_here();
        b.emit(Instr::Addi(Reg(10), Reg(10), -1));
        b.beq(Reg(10), Reg::ZERO, end); // forward
        b.j(top); // backward
        b.bind(end);
        b.emit(Instr::Halt);
        let p = b.finish();
        let mut m = Machine::new(256);
        m.load(&p);
        m.run(1000).unwrap();
        assert_eq!(m.reg(Reg(10)), 0);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.j(l);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_segments_flow_through() {
        let mut b = ProgramBuilder::new();
        b.data(64, vec![1, 2, 3]);
        b.emit(Instr::Halt);
        let p = b.finish();
        assert_eq!(p.data, vec![(64, vec![1, 2, 3])]);
    }
}
