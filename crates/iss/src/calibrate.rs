//! Cost-table calibration by least squares.
//!
//! §5 of the paper: "Library weights were obtained analyzing assembler code
//! from several functions specifically developed for this purpose and
//! taking into account microprocessor architectural characteristics." This
//! module automates that step: given probe kernels with known source-level
//! operation counts (rows) and their measured ISS cycle counts (targets),
//! it fits per-operation cycle costs `x` minimizing `‖A·x − b‖₂`, with a
//! non-negativity clean-up pass (negative fitted costs are clamped to zero
//! and the remaining support re-fitted).

/// A calibration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No probe rows were supplied.
    Empty,
    /// Row lengths disagree, or targets don't match the row count.
    ShapeMismatch,
    /// The normal equations are singular even after regularization.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Empty => write!(f, "no calibration probes supplied"),
            FitError::ShapeMismatch => write!(f, "probe matrix shape mismatch"),
            FitError::Singular => write!(f, "singular calibration system"),
        }
    }
}

impl std::error::Error for FitError {}

/// The result of a calibration fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Fit {
    /// Fitted per-operation costs (cycles), `cols` entries, all ≥ 0.
    pub costs: Vec<f64>,
    /// Coefficient of determination over the probe set.
    pub r_squared: f64,
    /// Per-probe relative errors `|Ax − b| / b`.
    pub residuals: Vec<f64>,
}

/// Fits non-negative per-operation costs from probe observations.
///
/// `rows[i]` holds probe `i`'s operation counts; `cycles[i]` its measured
/// ISS cycle count. Operations never exercised by any probe get cost zero.
///
/// # Errors
///
/// Returns [`FitError`] on empty/ragged input or a singular system.
///
/// # Examples
///
/// ```
/// use scperf_iss::calibrate::fit;
///
/// // Two ops; probes: 10 of each → 30 cycles, 10 of op0 → 10 cycles.
/// let rows = vec![vec![10.0, 10.0], vec![10.0, 0.0], vec![0.0, 10.0]];
/// let cycles = vec![30.0, 10.0, 20.0];
/// let f = fit(&rows, &cycles)?;
/// assert!((f.costs[0] - 1.0).abs() < 1e-9);
/// assert!((f.costs[1] - 2.0).abs() < 1e-9);
/// assert!(f.r_squared > 0.999);
/// # Ok::<(), scperf_iss::calibrate::FitError>(())
/// ```
pub fn fit(rows: &[Vec<f64>], cycles: &[f64]) -> Result<Fit, FitError> {
    if rows.is_empty() {
        return Err(FitError::Empty);
    }
    let cols = rows[0].len();
    if cycles.len() != rows.len() || rows.iter().any(|r| r.len() != cols) {
        return Err(FitError::ShapeMismatch);
    }
    // Active-set style NNLS-lite: solve unconstrained, clamp negatives to
    // zero, drop them from the support, repeat.
    let mut active: Vec<bool> = (0..cols)
        .map(|j| rows.iter().any(|r| r[j] != 0.0))
        .collect();
    loop {
        let support: Vec<usize> = (0..cols).filter(|&j| active[j]).collect();
        if support.is_empty() {
            let costs = vec![0.0; cols];
            let (r2, residuals) = goodness(rows, cycles, &costs);
            return Ok(Fit {
                costs,
                r_squared: r2,
                residuals,
            });
        }
        let sol = solve_normal_equations(rows, cycles, &support)?;
        let negatives: Vec<usize> = support
            .iter()
            .zip(&sol)
            .filter(|(_, &v)| v < -1e-9)
            .map(|(&j, _)| j)
            .collect();
        if negatives.is_empty() {
            let mut costs = vec![0.0; cols];
            for (&j, &v) in support.iter().zip(&sol) {
                costs[j] = v.max(0.0);
            }
            let (r2, residuals) = goodness(rows, cycles, &costs);
            return Ok(Fit {
                costs,
                r_squared: r2,
                residuals,
            });
        }
        for j in negatives {
            active[j] = false;
        }
    }
}

/// Solves `(AᵀA + λI) x = Aᵀ b` restricted to `support`, with a tiny ridge
/// `λ` for numerical robustness.
fn solve_normal_equations(
    rows: &[Vec<f64>],
    b: &[f64],
    support: &[usize],
) -> Result<Vec<f64>, FitError> {
    let n = support.len();
    let mut ata = vec![vec![0.0_f64; n]; n];
    let mut atb = vec![0.0_f64; n];
    for (row, &bv) in rows.iter().zip(b) {
        for (i, &ji) in support.iter().enumerate() {
            let ri = row[ji];
            if ri == 0.0 {
                continue;
            }
            atb[i] += ri * bv;
            for (k, &jk) in support.iter().enumerate() {
                ata[i][k] += ri * row[jk];
            }
        }
    }
    let ridge = 1e-12
        * ata
            .iter()
            .enumerate()
            .map(|(i, r)| r[i])
            .fold(0.0_f64, f64::max)
            .max(1.0);
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += ridge;
    }
    gaussian_elimination(ata, atb)
}

/// Solves `M x = y` by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // two rows of `m` are updated in lock-step
fn gaussian_elimination(mut m: Vec<Vec<f64>>, mut y: Vec<f64>) -> Result<Vec<f64>, FitError> {
    let n = y.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))
            .expect("non-empty range");
        if m[pivot][col].abs() < 1e-30 {
            return Err(FitError::Singular);
        }
        m.swap(col, pivot);
        y.swap(col, pivot);
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row][k] -= factor * m[col][k];
            }
            y[row] -= factor * y[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = y[col];
        for (k, &xk) in x.iter().enumerate().take(n).skip(col + 1) {
            acc -= m[col][k] * xk;
        }
        x[col] = acc / m[col][col];
    }
    Ok(x)
}

fn goodness(rows: &[Vec<f64>], b: &[f64], costs: &[f64]) -> (f64, Vec<f64>) {
    let predict = |row: &Vec<f64>| -> f64 { row.iter().zip(costs).map(|(r, c)| r * c).sum() };
    let mean = b.iter().sum::<f64>() / b.len() as f64;
    let ss_tot: f64 = b.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = rows
        .iter()
        .zip(b)
        .map(|(row, &v)| (v - predict(row)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    let residuals = rows
        .iter()
        .zip(b)
        .map(|(row, &v)| {
            if v == 0.0 {
                predict(row).abs()
            } else {
                (v - predict(row)).abs() / v
            }
        })
        .collect();
    (r2, residuals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_recovers_costs() {
        let rows = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        let true_costs = [2.0, 3.0, 33.0];
        let cycles: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(true_costs).map(|(a, c)| a * c).sum())
            .collect();
        let f = fit(&rows, &cycles).unwrap();
        for (got, want) in f.costs.iter().zip(true_costs) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert!(f.r_squared > 0.999999);
        assert!(f.residuals.iter().all(|&r| r < 1e-6));
    }

    #[test]
    fn noisy_system_fits_approximately() {
        // costs 1 and 5 with ±2% noise; columns deliberately non-collinear.
        let rows: Vec<Vec<f64>> = (1..=10)
            .map(|i| vec![(i * 10) as f64, ((i * i) % 7 + 1) as f64])
            .collect();
        let cycles: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let noise = 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
                (r[0] * 1.0 + r[1] * 5.0) * noise
            })
            .collect();
        let f = fit(&rows, &cycles).unwrap();
        assert!((f.costs[0] - 1.0).abs() < 0.3);
        assert!((f.costs[1] - 5.0).abs() < 1.0);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn unused_columns_get_zero_cost() {
        let rows = vec![vec![2.0, 0.0], vec![4.0, 0.0]];
        let cycles = vec![6.0, 12.0];
        let f = fit(&rows, &cycles).unwrap();
        assert!((f.costs[0] - 3.0).abs() < 1e-6);
        assert_eq!(f.costs[1], 0.0);
    }

    #[test]
    fn negative_solutions_are_clamped() {
        // Two collinear-ish probes that would push column 1 negative.
        let rows = vec![vec![10.0, 1.0], vec![20.0, 2.0], vec![10.0, 0.0]];
        let cycles = vec![10.0, 20.0, 11.0];
        let f = fit(&rows, &cycles).unwrap();
        assert!(f.costs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn shape_errors_detected() {
        assert_eq!(fit(&[], &[]), Err(FitError::Empty));
        assert_eq!(
            fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]),
            Err(FitError::ShapeMismatch)
        );
        assert_eq!(fit(&[vec![1.0]], &[1.0, 2.0]), Err(FitError::ShapeMismatch));
    }

    #[test]
    fn all_zero_matrix_yields_zero_costs() {
        let f = fit(&[vec![0.0, 0.0]], &[5.0]).unwrap();
        assert_eq!(f.costs, vec![0.0, 0.0]);
    }
}
