//! Abstract syntax of `minic`.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (logical; evaluates both operands — see crate docs)
    LAnd,
    /// `||` (logical; evaluates both operands — see crate docs)
    LOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// Scalar variable reference.
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ … }`
    Block(Vec<Stmt>),
    /// `int x;` / `int x = e;`
    DeclScalar(String, Option<Expr>),
    /// `int a[N];`
    DeclArray(String, usize),
    /// `if (c) s else s`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) s`
    While(Expr, Box<Stmt>),
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// `x = e;`
    Assign(String, Expr),
    /// `a[i] = e;`
    AssignIndex(String, Expr, Expr),
    /// Bare expression (usually a call).
    ExprStmt(Expr),
}

/// A function definition (`int name(int p, …) { … }`).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The function name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Global {
    /// `int g;` / `int g = 7;`
    Scalar(String, i32),
    /// `int a[N];` / `int a[N] = {…};` (missing initializers are zero)
    Array(String, usize, Vec<i32>),
}

impl Global {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            Global::Scalar(n, _) => n,
            Global::Array(n, _, _) => n,
        }
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Global variables, in declaration order.
    pub globals: Vec<Global>,
    /// Functions, in declaration order. Execution starts at `main`.
    pub functions: Vec<Function>,
}
