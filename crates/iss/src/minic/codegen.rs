//! Code generation: `minic` AST → ISS machine code.
//!
//! The generator is deliberately a classic *non-optimizing* compiler
//! (accumulator + expression stack, everything through memory), like the
//! `-O0` output the paper's ISS executed: realistic instruction mixes with
//! loads/stores around every operation.

use std::collections::HashMap;

use super::ast::{BinOp, Expr, Function, Global, Stmt, UnOp, Unit};
use super::CompileError;
use crate::asm::{Label, ProgramBuilder};
use crate::isa::{Instr, Program, Reg};

/// Base address of the globals segment.
pub const GLOBALS_BASE: u32 = 4096;

const ACC: Reg = Reg::ACC;
const TMP: Reg = Reg::TMP;
const TMP2: Reg = Reg::TMP2;
const SP: Reg = Reg::SP;
const FP: Reg = Reg::FP;
const RA: Reg = Reg::RA;
const ZERO: Reg = Reg::ZERO;

/// A compiled translation unit.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The executable program (entry stub calls `main`, then halts).
    pub program: Program,
    /// Byte addresses of the global variables.
    pub globals: HashMap<String, u32>,
}

impl Compiled {
    /// The address of global `name`.
    ///
    /// # Panics
    ///
    /// Panics if no such global exists.
    pub fn global(&self, name: &str) -> u32 {
        *self
            .globals
            .get(name)
            .unwrap_or_else(|| panic!("no global named '{name}'"))
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    /// fp-relative offset of a scalar local.
    Local(i32),
    /// fp-relative offset of the *base* of a local array.
    LocalArray(i32),
    /// Parameter index.
    Param(usize),
    /// Absolute address of a scalar global.
    Global(u32),
    /// Absolute address of a global array base.
    GlobalArray(u32),
}

struct FuncCtx {
    slots: HashMap<String, Slot>,
    frame_words: usize,
    epilogue: Label,
}

pub(crate) struct CodeGen {
    b: ProgramBuilder,
    funcs: HashMap<String, (Label, usize)>, // label, arity
    globals: HashMap<String, Slot>,
    global_addrs: HashMap<String, u32>,
}

impl CodeGen {
    pub(crate) fn compile(unit: &Unit) -> Result<Compiled, CompileError> {
        let mut cg = CodeGen {
            b: ProgramBuilder::new(),
            funcs: HashMap::new(),
            globals: HashMap::new(),
            global_addrs: HashMap::new(),
        };
        cg.layout_globals(unit)?;
        // Entry stub.
        let mut main_label = None;
        for f in &unit.functions {
            if cg.funcs.contains_key(&f.name) {
                return Err(CompileError::new(
                    f.line,
                    format!("duplicate function '{}'", f.name),
                ));
            }
            let l = cg.b.new_label();
            cg.funcs.insert(f.name.clone(), (l, f.params.len()));
            if f.name == "main" {
                main_label = Some(l);
            }
        }
        let main_label =
            main_label.ok_or_else(|| CompileError::new(0, "no 'main' function defined"))?;
        cg.b.jal(main_label);
        cg.b.emit(Instr::Halt);
        for f in &unit.functions {
            cg.function(f)?;
        }
        Ok(Compiled {
            program: cg.b.finish(),
            globals: cg.global_addrs,
        })
    }

    fn layout_globals(&mut self, unit: &Unit) -> Result<(), CompileError> {
        let mut addr = GLOBALS_BASE;
        for g in &unit.globals {
            if self.globals.contains_key(g.name()) {
                return Err(CompileError::new(
                    0,
                    format!("duplicate global '{}'", g.name()),
                ));
            }
            match g {
                Global::Scalar(name, init) => {
                    self.globals.insert(name.clone(), Slot::Global(addr));
                    self.global_addrs.insert(name.clone(), addr);
                    if *init != 0 {
                        self.b.data(addr, init.to_le_bytes().to_vec());
                    }
                    addr += 4;
                }
                Global::Array(name, n, init) => {
                    self.globals.insert(name.clone(), Slot::GlobalArray(addr));
                    self.global_addrs.insert(name.clone(), addr);
                    if !init.is_empty() {
                        let bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
                        self.b.data(addr, bytes);
                    }
                    addr += 4 * *n as u32;
                }
            }
        }
        Ok(())
    }

    fn function(&mut self, f: &Function) -> Result<(), CompileError> {
        let (label, _) = self.funcs[&f.name];
        self.b.bind(label);
        // Collect all local declarations (function-level scoping).
        let mut slots: HashMap<String, Slot> = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            if slots.insert(p.clone(), Slot::Param(i)).is_some() {
                return Err(CompileError::new(
                    f.line,
                    format!("duplicate parameter '{p}'"),
                ));
            }
        }
        let mut next_word = 0_usize;
        collect_locals(&f.body, &mut slots, &mut next_word, f.line)?;
        let ctx = FuncCtx {
            slots,
            frame_words: next_word,
            epilogue: self.b.new_label(),
        };
        // Prologue.
        self.push(RA);
        self.push(FP);
        self.b.emit(Instr::Addi(FP, SP, 0));
        if ctx.frame_words > 0 {
            self.b
                .emit(Instr::Addi(SP, SP, -4 * ctx.frame_words as i32));
        }
        for s in &f.body {
            self.stmt(s, &ctx)?;
        }
        // Implicit `return 0`.
        self.b.emit(Instr::Li(ACC, 0));
        self.b.bind(ctx.epilogue);
        self.b.emit(Instr::Addi(SP, FP, 0));
        self.pop(FP);
        self.pop(RA);
        self.b.emit(Instr::Jalr(RA));
        Ok(())
    }

    fn push(&mut self, r: Reg) {
        self.b.emit(Instr::Addi(SP, SP, -4));
        self.b.emit(Instr::Sw(r, SP, 0));
    }

    fn pop(&mut self, r: Reg) {
        self.b.emit(Instr::Lw(r, SP, 0));
        self.b.emit(Instr::Addi(SP, SP, 4));
    }

    fn stmt(&mut self, s: &Stmt, ctx: &FuncCtx) -> Result<(), CompileError> {
        match s {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s, ctx)?;
                }
                Ok(())
            }
            Stmt::DeclScalar(name, init) => {
                if let Some(e) = init {
                    self.expr(e, ctx)?;
                    self.store_scalar(name, ctx)?;
                }
                Ok(())
            }
            Stmt::DeclArray(..) => Ok(()), // space reserved in the frame
            Stmt::Assign(name, e) => {
                self.expr(e, ctx)?;
                self.store_scalar(name, ctx)
            }
            Stmt::AssignIndex(name, idx, value) => {
                self.expr(idx, ctx)?;
                self.push(ACC);
                self.expr(value, ctx)?;
                self.pop(TMP); // index
                self.b.emit(Instr::Slli(TMP, TMP, 2));
                self.array_base(name, ctx, TMP2)?;
                self.b.emit(Instr::Add(TMP, TMP, TMP2));
                self.b.emit(Instr::Sw(ACC, TMP, 0));
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                self.expr(cond, ctx)?;
                let else_l = self.b.new_label();
                self.b.beq(ACC, ZERO, else_l);
                self.stmt(then, ctx)?;
                match els {
                    Some(e) => {
                        let end = self.b.new_label();
                        self.b.j(end);
                        self.b.bind(else_l);
                        self.stmt(e, ctx)?;
                        self.b.bind(end);
                    }
                    None => self.b.bind(else_l),
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let top = self.b.bind_here();
                self.expr(cond, ctx)?;
                let end = self.b.new_label();
                self.b.beq(ACC, ZERO, end);
                self.stmt(body, ctx)?;
                self.b.j(top);
                self.b.bind(end);
                Ok(())
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e, ctx)?,
                    None => self.b.emit(Instr::Li(ACC, 0)),
                }
                self.b.j(ctx.epilogue);
                Ok(())
            }
            Stmt::ExprStmt(e) => self.expr(e, ctx),
        }
    }

    fn resolve<'a>(&'a self, name: &str, ctx: &'a FuncCtx) -> Option<&'a Slot> {
        ctx.slots.get(name).or_else(|| self.globals.get(name))
    }

    fn store_scalar(&mut self, name: &str, ctx: &FuncCtx) -> Result<(), CompileError> {
        match self.resolve(name, ctx) {
            Some(Slot::Local(off)) => {
                let off = *off;
                self.b.emit(Instr::Sw(ACC, FP, off));
                Ok(())
            }
            Some(Slot::Param(i)) => {
                let off = 8 + 4 * *i as i32;
                self.b.emit(Instr::Sw(ACC, FP, off));
                Ok(())
            }
            Some(Slot::Global(addr)) => {
                let addr = *addr as i32;
                self.b.emit(Instr::Sw(ACC, ZERO, addr));
                Ok(())
            }
            Some(Slot::LocalArray(_)) | Some(Slot::GlobalArray(_)) => Err(CompileError::new(
                0,
                format!("cannot assign to array '{name}'"),
            )),
            None => Err(CompileError::new(0, format!("undefined variable '{name}'"))),
        }
    }

    /// Emits code leaving the base address of array (or pointer) `name` in
    /// `dst`.
    fn array_base(&mut self, name: &str, ctx: &FuncCtx, dst: Reg) -> Result<(), CompileError> {
        match self.resolve(name, ctx) {
            Some(Slot::LocalArray(off)) => {
                let off = *off;
                self.b.emit(Instr::Addi(dst, FP, off));
                Ok(())
            }
            Some(Slot::GlobalArray(addr)) => {
                let addr = *addr as i32;
                self.b.emit(Instr::Li(dst, addr));
                Ok(())
            }
            // A scalar holding a pointer (array passed as argument).
            Some(Slot::Local(off)) => {
                let off = *off;
                self.b.emit(Instr::Lw(dst, FP, off));
                Ok(())
            }
            Some(Slot::Param(i)) => {
                let off = 8 + 4 * *i as i32;
                self.b.emit(Instr::Lw(dst, FP, off));
                Ok(())
            }
            Some(Slot::Global(addr)) => {
                let addr = *addr as i32;
                self.b.emit(Instr::Lw(dst, ZERO, addr));
                Ok(())
            }
            None => Err(CompileError::new(0, format!("undefined array '{name}'"))),
        }
    }

    fn expr(&mut self, e: &Expr, ctx: &FuncCtx) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => {
                self.b.emit(Instr::Li(ACC, *n));
                Ok(())
            }
            Expr::Var(name) => match self.resolve(name, ctx) {
                Some(Slot::Local(off)) => {
                    let off = *off;
                    self.b.emit(Instr::Lw(ACC, FP, off));
                    Ok(())
                }
                Some(Slot::Param(i)) => {
                    let off = 8 + 4 * *i as i32;
                    self.b.emit(Instr::Lw(ACC, FP, off));
                    Ok(())
                }
                Some(Slot::Global(addr)) => {
                    let addr = *addr as i32;
                    self.b.emit(Instr::Lw(ACC, ZERO, addr));
                    Ok(())
                }
                // Array name decays to its base address.
                Some(Slot::LocalArray(off)) => {
                    let off = *off;
                    self.b.emit(Instr::Addi(ACC, FP, off));
                    Ok(())
                }
                Some(Slot::GlobalArray(addr)) => {
                    let addr = *addr as i32;
                    self.b.emit(Instr::Li(ACC, addr));
                    Ok(())
                }
                None => Err(CompileError::new(0, format!("undefined variable '{name}'"))),
            },
            Expr::Index(name, idx) => {
                self.expr(idx, ctx)?;
                self.b.emit(Instr::Slli(ACC, ACC, 2));
                self.array_base(name, ctx, TMP2)?;
                self.b.emit(Instr::Add(ACC, ACC, TMP2));
                self.b.emit(Instr::Lw(ACC, ACC, 0));
                Ok(())
            }
            Expr::Call(name, args) => {
                let Some(&(label, arity)) = self.funcs.get(name) else {
                    return Err(CompileError::new(0, format!("undefined function '{name}'")));
                };
                if arity != args.len() {
                    return Err(CompileError::new(
                        0,
                        format!("function '{name}' takes {arity} args, got {}", args.len()),
                    ));
                }
                for a in args.iter().rev() {
                    self.expr(a, ctx)?;
                    self.push(ACC);
                }
                self.b.jal(label);
                if !args.is_empty() {
                    self.b.emit(Instr::Addi(SP, SP, 4 * args.len() as i32));
                }
                Ok(())
            }
            Expr::Unary(op, e) => {
                self.expr(e, ctx)?;
                match op {
                    UnOp::Neg => self.b.emit(Instr::Sub(ACC, ZERO, ACC)),
                    UnOp::Not => self.b.emit(Instr::Seq(ACC, ACC, ZERO)),
                    UnOp::BitNot => self.b.emit(Instr::Xori(ACC, ACC, -1)),
                }
                Ok(())
            }
            Expr::Binary(op, lhs, rhs) => {
                self.expr(lhs, ctx)?;
                self.push(ACC);
                self.expr(rhs, ctx)?;
                self.pop(TMP); // TMP = lhs, ACC = rhs
                use Instr::*;
                match op {
                    BinOp::Add => self.b.emit(Add(ACC, TMP, ACC)),
                    BinOp::Sub => self.b.emit(Sub(ACC, TMP, ACC)),
                    BinOp::Mul => self.b.emit(Mul(ACC, TMP, ACC)),
                    BinOp::Div => self.b.emit(Div(ACC, TMP, ACC)),
                    BinOp::Rem => self.b.emit(Rem(ACC, TMP, ACC)),
                    BinOp::BitAnd => self.b.emit(And(ACC, TMP, ACC)),
                    BinOp::BitOr => self.b.emit(Or(ACC, TMP, ACC)),
                    BinOp::BitXor => self.b.emit(Xor(ACC, TMP, ACC)),
                    BinOp::Shl => self.b.emit(Sll(ACC, TMP, ACC)),
                    BinOp::Shr => self.b.emit(Sra(ACC, TMP, ACC)),
                    BinOp::Lt => self.b.emit(Slt(ACC, TMP, ACC)),
                    BinOp::Gt => self.b.emit(Slt(ACC, ACC, TMP)),
                    BinOp::Le => {
                        self.b.emit(Slt(ACC, ACC, TMP));
                        self.b.emit(Xori(ACC, ACC, 1));
                    }
                    BinOp::Ge => {
                        self.b.emit(Slt(ACC, TMP, ACC));
                        self.b.emit(Xori(ACC, ACC, 1));
                    }
                    BinOp::Eq => self.b.emit(Seq(ACC, TMP, ACC)),
                    BinOp::Ne => {
                        self.b.emit(Seq(ACC, TMP, ACC));
                        self.b.emit(Xori(ACC, ACC, 1));
                    }
                    BinOp::LAnd => {
                        self.b.emit(Seq(TMP, TMP, ZERO));
                        self.b.emit(Xori(TMP, TMP, 1));
                        self.b.emit(Seq(ACC, ACC, ZERO));
                        self.b.emit(Xori(ACC, ACC, 1));
                        self.b.emit(And(ACC, TMP, ACC));
                    }
                    BinOp::LOr => {
                        self.b.emit(Or(ACC, TMP, ACC));
                        self.b.emit(Seq(ACC, ACC, ZERO));
                        self.b.emit(Xori(ACC, ACC, 1));
                    }
                }
                Ok(())
            }
        }
    }
}

fn collect_locals(
    stmts: &[Stmt],
    slots: &mut HashMap<String, Slot>,
    next_word: &mut usize,
    line: u32,
) -> Result<(), CompileError> {
    for s in stmts {
        match s {
            Stmt::DeclScalar(name, _) => {
                *next_word += 1;
                let off = -4 * *next_word as i32;
                if slots.insert(name.clone(), Slot::Local(off)).is_some() {
                    return Err(CompileError::new(
                        line,
                        format!("duplicate local '{name}' (minic has function-level scope)"),
                    ));
                }
            }
            Stmt::DeclArray(name, n) => {
                *next_word += n;
                let off = -4 * *next_word as i32;
                if slots.insert(name.clone(), Slot::LocalArray(off)).is_some() {
                    return Err(CompileError::new(
                        line,
                        format!("duplicate local '{name}' (minic has function-level scope)"),
                    ));
                }
            }
            Stmt::Block(inner) => collect_locals(inner, slots, next_word, line)?,
            Stmt::If(_, t, e) => {
                collect_locals(std::slice::from_ref(t), slots, next_word, line)?;
                if let Some(e) = e {
                    collect_locals(std::slice::from_ref(e), slots, next_word, line)?;
                }
            }
            Stmt::While(_, b) => collect_locals(std::slice::from_ref(b), slots, next_word, line)?,
            _ => {}
        }
    }
    Ok(())
}
