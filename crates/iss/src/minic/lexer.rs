//! Tokenizer for the `minic` language.

use std::fmt;

use super::CompileError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// `int`
    KwInt,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Num(i32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `!`
    Bang,
    /// `~`
    Tilde,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Num(n) => write!(f, "number {n}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token plus its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1_u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text
                    .parse()
                    .map_err(|_| CompileError::new(line, format!("bad number '{text}'")))?;
                if n > i64::from(i32::MAX) {
                    return Err(CompileError::new(
                        line,
                        format!("number '{text}' overflows int"),
                    ));
                }
                out.push(Spanned {
                    tok: Tok::Num(n as i32),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "int" => Tok::KwInt,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    _ => Tok::Ident(word.to_owned()),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ';' => (Tok::Semi, 1),
                        ',' => (Tok::Comma, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '&' => (Tok::Amp, 1),
                        '|' => (Tok::Pipe, 1),
                        '^' => (Tok::Caret, 1),
                        '!' => (Tok::Bang, 1),
                        '~' => (Tok::Tilde, 1),
                        _ => {
                            return Err(CompileError::new(
                                line,
                                format!("unexpected character '{c}'"),
                            ))
                        }
                    },
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        assert_eq!(
            toks("int foo if2 return"),
            vec![
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::Ident("if2".into()),
                Tok::KwReturn
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            toks("x = 42 << 2 >= 3;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(42),
                Tok::Shl,
                Tok::Num(2),
                Tok::Ge,
                Tok::Num(3),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let spanned = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 3);
    }

    #[test]
    fn bad_character_reports_line() {
        let err = lex("a\n@").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains('@'));
    }

    #[test]
    fn overflowing_number_rejected() {
        assert!(lex("99999999999").is_err());
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(lex("/* nope").is_err());
    }
}
