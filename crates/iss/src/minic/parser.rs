//! Recursive-descent parser for `minic`.

use super::ast::{BinOp, Expr, Function, Global, Stmt, UnOp, Unit};
use super::lexer::{Spanned, Tok};
use super::CompileError;

pub(crate) struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(toks: Vec<Spanned>) -> Parser {
        Parser { toks, pos: 0 }
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {t}, found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |p| p.to_string())
            )))
        }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(CompileError::new(
                line,
                format!(
                    "expected identifier, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
            )),
        }
    }

    fn num(&mut self) -> Result<i32, CompileError> {
        // Allow a leading minus in constant initializers.
        let neg = self.eat(&Tok::Minus);
        let line = self.line();
        match self.bump() {
            Some(Tok::Num(n)) => Ok(if neg { n.wrapping_neg() } else { n }),
            other => Err(CompileError::new(
                line,
                format!(
                    "expected number, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
            )),
        }
    }

    pub(crate) fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while self.peek().is_some() {
            self.expect(&Tok::KwInt)?;
            let name = self.ident()?;
            if self.peek() == Some(&Tok::LParen) {
                unit.functions.push(self.function(name)?);
            } else {
                unit.globals.push(self.global(name)?);
            }
        }
        Ok(unit)
    }

    fn global(&mut self, name: String) -> Result<Global, CompileError> {
        if self.eat(&Tok::LBracket) {
            let n = self.num()?;
            if n <= 0 {
                return Err(self.err("array size must be positive"));
            }
            self.expect(&Tok::RBracket)?;
            let mut init = Vec::new();
            if self.eat(&Tok::Assign) {
                self.expect(&Tok::LBrace)?;
                loop {
                    init.push(self.num()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace)?;
                if init.len() > n as usize {
                    return Err(self.err("too many initializers"));
                }
            }
            self.expect(&Tok::Semi)?;
            Ok(Global::Array(name, n as usize, init))
        } else {
            let v = if self.eat(&Tok::Assign) {
                self.num()?
            } else {
                0
            };
            self.expect(&Tok::Semi)?;
            Ok(Global::Scalar(name, v))
        }
    }

    fn function(&mut self, name: String) -> Result<Function, CompileError> {
        let line = self.line();
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                self.expect(&Tok::KwInt)?;
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            body.push(self.stmt()?);
        }
        Ok(Function {
            name,
            params,
            body,
            line,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            Some(Tok::LBrace) => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Some(Tok::KwInt) => {
                self.bump();
                let name = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let n = self.num()?;
                    if n <= 0 {
                        return Err(self.err("array size must be positive"));
                    }
                    self.expect(&Tok::RBracket)?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::DeclArray(name, n as usize))
                } else {
                    let init = if self.eat(&Tok::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::DeclScalar(name, init))
                }
            }
            Some(Tok::KwIf) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(Tok::KwWhile) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Some(Tok::KwFor) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.simple_stmt()?)
                };
                self.expect(&Tok::Semi)?;
                let cond = if self.peek() == Some(&Tok::Semi) {
                    Expr::Num(1)
                } else {
                    self.expr()?
                };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(self.simple_stmt()?)
                };
                self.expect(&Tok::RParen)?;
                let body = self.stmt()?;
                // Desugar: { init; while (cond) { body; step; } }
                let mut inner = vec![body];
                if let Some(s) = step {
                    inner.push(s);
                }
                let mut outer = Vec::new();
                if let Some(s) = init {
                    outer.push(s);
                }
                outer.push(Stmt::While(cond, Box::new(Stmt::Block(inner))));
                Ok(Stmt::Block(outer))
            }
            Some(Tok::KwReturn) => {
                self.bump();
                let e = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment or bare expression (no trailing semicolon).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        // Lookahead: ident '=' …, ident '[' … ']' '=' …, else expression.
        if let (Some(Tok::Ident(_)), Some(next)) = (self.peek(), self.peek2()) {
            match next {
                Tok::Assign => {
                    let name = self.ident()?;
                    self.bump(); // '='
                    return Ok(Stmt::Assign(name, self.expr()?));
                }
                Tok::LBracket => {
                    // Could be `a[i] = e` or the expression `a[i]`.
                    let save = self.pos;
                    let name = self.ident()?;
                    self.bump(); // '['
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    if self.eat(&Tok::Assign) {
                        return Ok(Stmt::AssignIndex(name, idx, self.expr()?));
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        Ok(Stmt::ExprStmt(self.expr()?))
    }

    pub(crate) fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek().and_then(bin_op) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Tok::Bang) => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Tok::Tilde) => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(Expr::Call(name, args))
                }
                Some(Tok::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr::Index(name, Box::new(idx)))
                }
                _ => Ok(Expr::Var(name)),
            },
            other => Err(CompileError::new(
                line,
                format!(
                    "expected expression, found {}",
                    other.map_or("end of input".to_owned(), |t| t.to_string())
                ),
            )),
        }
    }
}

/// Operator → (AST op, precedence). Higher binds tighter.
fn bin_op(tok: &Tok) -> Option<(BinOp, u8)> {
    Some(match tok {
        Tok::OrOr => (BinOp::LOr, 1),
        Tok::AndAnd => (BinOp::LAnd, 2),
        Tok::Pipe => (BinOp::BitOr, 3),
        Tok::Caret => (BinOp::BitXor, 4),
        Tok::Amp => (BinOp::BitAnd, 5),
        Tok::EqEq => (BinOp::Eq, 6),
        Tok::Ne => (BinOp::Ne, 6),
        Tok::Lt => (BinOp::Lt, 7),
        Tok::Le => (BinOp::Le, 7),
        Tok::Gt => (BinOp::Gt, 7),
        Tok::Ge => (BinOp::Ge, 7),
        Tok::Shl => (BinOp::Shl, 8),
        Tok::Shr => (BinOp::Shr, 8),
        Tok::Plus => (BinOp::Add, 9),
        Tok::Minus => (BinOp::Sub, 9),
        Tok::Star => (BinOp::Mul, 10),
        Tok::Slash => (BinOp::Div, 10),
        Tok::Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse(src: &str) -> Unit {
        Parser::new(lex(src).unwrap()).unit().unwrap()
    }

    fn parse_expr(src: &str) -> Expr {
        Parser::new(lex(src).unwrap()).expr().unwrap()
    }

    #[test]
    fn precedence_is_c_like() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = parse_expr("1 + 2 * 3");
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // a < b == c parses as (a < b) == c
        let e = parse_expr("a < b == c");
        assert!(matches!(e, Expr::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn unary_binds_tightest() {
        let e = parse_expr("-a * b");
        match e {
            Expr::Binary(BinOp::Mul, lhs, _) => {
                assert!(matches!(*lhs, Expr::Unary(UnOp::Neg, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_unit_parses() {
        let u = parse(
            "int g = 3;\n\
             int a[4] = {1, 2, 3, 4};\n\
             int add(int x, int y) { return x + y; }\n\
             int main() {\n\
               int i;\n\
               int acc = 0;\n\
               for (i = 0; i < 4; i = i + 1) { acc = acc + a[i]; }\n\
               if (acc > 5) { g = acc; } else g = 0;\n\
               while (g > 0) g = g - 1;\n\
               return add(acc, g);\n\
             }",
        );
        assert_eq!(u.globals.len(), 2);
        assert_eq!(u.functions.len(), 2);
        assert_eq!(u.functions[1].name, "main");
    }

    #[test]
    fn for_desugars_to_while() {
        let u = parse("int main() { int i; for (i = 0; i < 3; i = i + 1) {} return i; }");
        let body = &u.functions[0].body;
        // DeclScalar, Block[Assign, While], Return
        assert!(matches!(&body[1], Stmt::Block(inner)
            if matches!(inner.as_slice(), [Stmt::Assign(..), Stmt::While(..)])));
    }

    #[test]
    fn array_store_vs_expression_disambiguation() {
        let u = parse("int a[2]; int main() { a[0] = 1; return a[0]; }");
        assert!(matches!(&u.functions[0].body[0], Stmt::AssignIndex(..)));
    }

    #[test]
    fn negative_global_initializer() {
        let u = parse("int g = -7; int main() { return g; }");
        assert_eq!(u.globals[0], Global::Scalar("g".into(), -7));
    }

    #[test]
    fn error_reports_line() {
        let toks = lex("int main() {\n  return 1 +;\n}").unwrap();
        let err = Parser::new(toks).unit().unwrap_err();
        assert_eq!(err.line, 2);
    }
}
