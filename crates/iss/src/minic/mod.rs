//! `minic`: a small C-like language compiled to the reference ISA.
//!
//! The paper's Table 1 compares the estimation library against an ISS
//! running *compiled* benchmark code. To make that comparison honest, this
//! module provides a real (if small) compiler so every benchmark's ISS
//! variant is generated from source with realistic `-O0`-style instruction
//! mixes, rather than hand-tuned assembly.
//!
//! # Language
//!
//! * One type: `int` (32-bit, wrapping).
//! * Globals (with optional scalar / `{…}` array initializers), functions,
//!   parameters, local scalars and arrays (function-level scope).
//! * `if`/`else`, `while`, `for`, `return`; expressions with C precedence.
//! * Arrays decay to pointers when passed as arguments; `p[i]` works on
//!   such pointer parameters.
//! * **Divergence from C:** `&&` and `||` evaluate *both* operands (no
//!   short-circuit). Benchmarks avoid relying on short-circuit behaviour.
//!
//! # Examples
//!
//! ```
//! use scperf_iss::minic;
//! use scperf_iss::Machine;
//!
//! let compiled = minic::compile(
//!     "int result;\n\
//!      int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
//!      int main() { result = fib(10); return 0; }",
//! )?;
//! let mut m = Machine::new(1 << 20);
//! m.load(&compiled.program);
//! m.run(10_000_000).expect("runs to completion");
//! assert_eq!(m.read_word(compiled.global("result")), 55);
//! # Ok::<(), scperf_iss::minic::CompileError>(())
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

use std::fmt;

pub use ast::{BinOp, Expr, Function, Global, Stmt, UnOp, Unit};
pub use codegen::{Compiled, GLOBALS_BASE};

/// A compilation diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 when not attributable).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Parses `src` into an AST.
///
/// # Errors
///
/// Returns a [`CompileError`] with the offending line on lexical or
/// syntactic errors.
pub fn parse(src: &str) -> Result<Unit, CompileError> {
    let toks = lexer::lex(src)?;
    parser::Parser::new(toks).unit()
}

/// Compiles `src` to an executable [`Compiled`] program.
///
/// # Errors
///
/// Returns a [`CompileError`] on parse errors, undefined or duplicate
/// symbols, or arity mismatches.
pub fn compile(src: &str) -> Result<Compiled, CompileError> {
    let unit = parse(src)?;
    codegen::CodeGen::compile(&unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    /// Compiles and runs `src`, returning the machine for inspection.
    fn run(src: &str) -> (Machine, Compiled) {
        let compiled = compile(src).expect("compiles");
        let mut m = Machine::new(1 << 20);
        m.load(&compiled.program);
        m.run(200_000_000).expect("runs");
        (m, compiled)
    }

    fn result_of(src: &str) -> i32 {
        let (m, c) = run(src);
        m.read_word(c.global("result"))
    }

    #[test]
    fn arithmetic_and_precedence() {
        let r = result_of("int result; int main() { result = 2 + 3 * 4 - 10 / 2; return 0; }");
        assert_eq!(r, 9);
    }

    #[test]
    #[allow(clippy::identity_op)]
    fn comparisons_and_logic() {
        let r = result_of(
            "int result;\n\
             int main() {\n\
               result = (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (4 == 4) + (4 != 4)\n\
                      + (1 && 0) + (1 || 0) + !5 + !0;\n\
               return 0;\n\
             }",
        );
        assert_eq!(r, 1 + 1 + 1 + 0 + 1 + 0 + 0 + 1 + 0 + 1);
    }

    #[test]
    fn bitwise_ops() {
        let r = result_of(
            "int result; int main() { result = ((12 & 10) | (1 ^ 3)) + (1 << 4) + (-8 >> 1) + ~0; return 0; }",
        );
        assert_eq!(r, ((12 & 10) | (1 ^ 3)) + (1 << 4) + (-8 >> 1) + !0);
    }

    #[test]
    fn while_and_for_loops() {
        let r = result_of(
            "int result;\n\
             int main() {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < 10; i = i + 1) acc = acc + i;\n\
               while (acc > 40) acc = acc - 1;\n\
               result = acc;\n\
               return 0;\n\
             }",
        );
        assert_eq!(r, 40);
    }

    #[test]
    fn recursion_fib() {
        let r = result_of(
            "int result;\n\
             int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
             int main() { result = fib(12); return 0; }",
        );
        assert_eq!(r, 144);
    }

    #[test]
    #[allow(clippy::identity_op)]
    fn global_arrays_with_initializers() {
        let r = result_of(
            "int a[5] = {5, 4, 3, 2, 1};\n\
             int result;\n\
             int main() {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < 5; i = i + 1) acc = acc + a[i] * i;\n\
               result = acc;\n\
               return 0;\n\
             }",
        );
        assert_eq!(r, 0 + 4 + 6 + 6 + 4);
    }

    #[test]
    #[allow(clippy::identity_op)]
    fn local_arrays() {
        let r = result_of(
            "int result;\n\
             int main() {\n\
               int a[4];\n\
               int i;\n\
               for (i = 0; i < 4; i = i + 1) a[i] = i * i;\n\
               result = a[0] + a[1] + a[2] + a[3];\n\
               return 0;\n\
             }",
        );
        assert_eq!(r, 0 + 1 + 4 + 9);
    }

    #[test]
    fn arrays_decay_to_pointers_in_calls() {
        let r = result_of(
            "int data[4] = {3, 1, 4, 1};\n\
             int result;\n\
             int sum(int p, int n) {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < n; i = i + 1) acc = acc + p[i];\n\
               return acc;\n\
             }\n\
             int main() { result = sum(data, 4); return 0; }",
        );
        assert_eq!(r, 9);
    }

    #[test]
    fn local_array_passed_by_pointer_is_mutable() {
        let r = result_of(
            "int result;\n\
             int fill(int p, int n) {\n\
               int i;\n\
               for (i = 0; i < n; i = i + 1) p[i] = i + 1;\n\
               return 0;\n\
             }\n\
             int main() {\n\
               int buf[3];\n\
               fill(buf, 3);\n\
               result = buf[0] * 100 + buf[1] * 10 + buf[2];\n\
               return 0;\n\
             }",
        );
        assert_eq!(r, 123);
    }

    #[test]
    fn nested_calls_preserve_frames() {
        let r = result_of(
            "int result;\n\
             int add3(int a, int b, int c) { return a + b + c; }\n\
             int twice(int x) { return add3(x, x, 0); }\n\
             int main() { result = add3(twice(1), twice(2), twice(3)); return 0; }",
        );
        assert_eq!(r, 12);
    }

    #[test]
    fn globals_persist_across_calls() {
        let r = result_of(
            "int counter;\n\
             int result;\n\
             int tick() { counter = counter + 1; return counter; }\n\
             int main() { tick(); tick(); tick(); result = counter; return 0; }",
        );
        assert_eq!(r, 3);
    }

    #[test]
    fn undefined_symbols_are_errors() {
        assert!(compile("int main() { return nope; }").is_err());
        assert!(compile("int main() { return f(1); }").is_err());
        assert!(compile("int f(int a) { return a; } int main() { return f(1, 2); }").is_err());
    }

    #[test]
    fn missing_main_is_an_error() {
        let err = compile("int f() { return 1; }").unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn duplicate_symbols_are_errors() {
        assert!(compile("int g; int g; int main() { return 0; }").is_err());
        assert!(
            compile("int f() { return 0; } int f() { return 1; } int main() { return 0; }")
                .is_err()
        );
        assert!(compile("int main() { int x; int x; return 0; }").is_err());
    }

    #[test]
    fn modulo_and_division_semantics() {
        let r = result_of(
            "int result; int main() { result = (17 % 5) * 100 + (-17 / 5) * -1; return 0; }",
        );
        // C semantics: trunc toward zero.
        assert_eq!(r, 2 * 100 + 3);
    }

    #[test]
    fn deep_expression_stack() {
        let r = result_of(
            "int result; int main() { result = ((((1+2)*(3+4))+((5+6)*(7+8)))*((1+1)*(2+2))); return 0; }",
        );
        assert_eq!(
            r,
            ((1 + 2) * (3 + 4) + (5 + 6) * (7 + 8)) * ((1 + 1) * (2 + 2))
        );
    }
}
