//! # scperf-iss — a cycle-accurate reference instruction-set simulator
//!
//! The paper validates its estimation library against "an OpenRISC
//! architectural simulator modified to supply cycle accurate estimations"
//! (§5, Table 1). This crate is that substrate, rebuilt from scratch:
//!
//! * a 32-register in-order RISC **ISA** ([`Instr`], [`Program`]),
//! * a **cycle-accurate interpreter** ([`Machine`]) with a configurable
//!   [`CycleModel`] and optional direct-mapped I/D [`cache`]s,
//! * a label-resolving **assembler layer** ([`ProgramBuilder`]),
//! * the **`minic` compiler** ([`minic`]) — a small C-like language whose
//!   non-optimizing code generator produces realistic `-O0` instruction
//!   mixes, so every benchmark's ISS variant is compiled, not hand-tuned,
//! * **least-squares calibration** ([`calibrate`]) fitting per-operation
//!   cost tables from probe-kernel cycle measurements — the automated
//!   version of the paper's manual "analyzing assembler code from several
//!   functions" step.
//!
//! # Examples
//!
//! ```
//! use scperf_iss::{minic, Machine};
//!
//! let compiled = minic::compile(
//!     "int result;\n\
//!      int main() {\n\
//!        int i; int acc = 0;\n\
//!        for (i = 1; i <= 100; i = i + 1) acc = acc + i;\n\
//!        result = acc;\n\
//!        return 0;\n\
//!      }",
//! )?;
//! let mut m = Machine::new(1 << 20);
//! m.load(&compiled.program);
//! let stats = m.run(1_000_000).expect("terminates");
//! assert_eq!(m.read_word(compiled.global("result")), 5050);
//! println!("{} instructions, {} cycles, CPI {:.2}",
//!          stats.instructions, stats.cycles, stats.cpi());
//! # Ok::<(), scperf_iss::minic::CompileError>(())
//! ```

#![warn(missing_docs)]

mod asm;
pub mod cache;
pub mod calibrate;
mod isa;
mod machine;
pub mod minic;
mod pipeline;

pub use asm::{Label, ProgramBuilder};
pub use cache::{Cache, CacheConfig};
pub use isa::{Instr, Program, Reg, Target};
pub use machine::{CycleModel, IssError, Machine, RunStats};
pub use pipeline::PipelineConfig;
