//! Chrome `trace_event` JSON export (Perfetto / `chrome://tracing`).
//!
//! Builds the JSON Array Format of the Trace Event spec: complete
//! (`"X"`), instant (`"i"`), counter (`"C"`) and thread-metadata
//! (`"M"`) events. One simulated process (or resource) maps to one
//! `tid` track; timestamps are microseconds of *simulated* time, so
//! Perfetto's timeline shows sim time directly.
//!
//! ```
//! use scperf_obs::chrome::ChromeTrace;
//! let mut t = ChromeTrace::new();
//! t.thread_name(1, "producer");
//! t.complete(1, "segment", 0.0, 2.5);
//! t.instant(1, "fifo.write", 2.5);
//! let json = t.to_json();
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

use crate::event::TraceTable;
use crate::json::JsonWriter;
use crate::value::Payload;

/// An argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Integer argument.
    Int(i64),
    /// Float argument.
    Num(f64),
    /// String argument.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        i64::try_from(v)
            .map(ArgValue::Int)
            .unwrap_or(ArgValue::Num(v as f64))
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::Num(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One Chrome trace event.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    ph: char,
    name: String,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: Option<f64>,
    args: Vec<(String, ArgValue)>,
}

impl ChromeEvent {
    /// Attaches an argument (shown in Perfetto's detail pane).
    pub fn arg(&mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> &mut ChromeEvent {
        self.args.push((key.into(), value.into()));
        self
    }
}

/// A Chrome `trace_event` document under construction.
///
/// Every event carries a `pid` (Perfetto process group). Events added
/// through the builder methods use the trace's current default pid
/// (see [`ChromeTrace::set_pid`]), so two traces built with different
/// pids keep their tracks apart after a [`ChromeTrace::merge`].
#[derive(Debug, Clone)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    pid: u64,
}

impl Default for ChromeTrace {
    fn default() -> ChromeTrace {
        ChromeTrace {
            events: Vec::new(),
            pid: 1,
        }
    }
}

impl ChromeTrace {
    /// An empty trace (default pid 1).
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    fn push(&mut self, ev: ChromeEvent) -> &mut ChromeEvent {
        self.events.push(ev);
        self.events.last_mut().expect("just pushed")
    }

    /// Sets the process group (`pid`) for subsequently added events.
    /// Use distinct pids for traces that will be merged, so their `tid`
    /// tracks cannot collide.
    pub fn set_pid(&mut self, pid: u64) {
        self.pid = pid;
    }

    /// Names the current process group (metadata event).
    pub fn process_name(&mut self, name: impl Into<String>) {
        self.push(ChromeEvent {
            ph: 'M',
            name: "process_name".into(),
            pid: self.pid,
            tid: 0,
            ts_us: 0.0,
            dur_us: None,
            args: vec![("name".into(), ArgValue::Str(name.into()))],
        });
    }

    /// Names the track `tid` (metadata event).
    pub fn thread_name(&mut self, tid: u64, name: impl Into<String>) {
        self.push(ChromeEvent {
            ph: 'M',
            name: "thread_name".into(),
            pid: self.pid,
            tid,
            ts_us: 0.0,
            dur_us: None,
            args: vec![("name".into(), ArgValue::Str(name.into()))],
        });
    }

    /// Adds a complete (`"X"`) span on track `tid`.
    pub fn complete(
        &mut self,
        tid: u64,
        name: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
    ) -> &mut ChromeEvent {
        self.push(ChromeEvent {
            ph: 'X',
            name: name.into(),
            pid: self.pid,
            tid,
            ts_us,
            dur_us: Some(dur_us),
            args: Vec::new(),
        })
    }

    /// Adds an instant (`"i"`) event on track `tid`.
    pub fn instant(&mut self, tid: u64, name: impl Into<String>, ts_us: f64) -> &mut ChromeEvent {
        self.push(ChromeEvent {
            ph: 'i',
            name: name.into(),
            pid: self.pid,
            tid,
            ts_us,
            dur_us: None,
            args: Vec::new(),
        })
    }

    /// Adds a counter (`"C"`) sample; Perfetto plots each counter name
    /// as its own chart.
    pub fn counter(&mut self, name: impl Into<String>, ts_us: f64, value: f64) -> &mut ChromeEvent {
        let name = name.into();
        let mut ev = ChromeEvent {
            ph: 'C',
            name: name.clone(),
            pid: self.pid,
            tid: 0,
            ts_us,
            dur_us: None,
            args: Vec::new(),
        };
        ev.args.push((name, ArgValue::Num(value)));
        self.push(ev)
    }

    /// Adds one counter (`"C"`) sample per metric in `metrics` at
    /// `ts_us`, so `kernel.*`/`est.*`/`serve.*` utilization shows up as
    /// counter tracks next to the span events in `chrome://tracing`.
    /// Counter order follows the snapshot's sorted names.
    pub fn counters_from_metrics(&mut self, ts_us: f64, metrics: &crate::metrics::MetricsSnapshot) {
        for (name, value) in metrics.iter() {
            let v = match value {
                crate::metrics::MetricValue::Counter(c) => *c as f64,
                crate::metrics::MetricValue::Gauge(g) => *g,
            };
            if v.is_finite() {
                self.counter(name, ts_us, v);
            }
        }
    }

    /// Appends all events of `other`.
    pub fn merge(&mut self, other: ChromeTrace) {
        self.events.extend(other.events);
    }

    /// Number of events (including metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builds a trace from a kernel [`TraceTable`]: one track per
    /// process (tid = pid + 1) plus a `kernel` track (tid 0) for
    /// process-less events such as signal updates; every trace event
    /// becomes an instant with its channel and value as arguments.
    pub fn from_table(table: &TraceTable) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.process_name("simulation (kernel trace)");
        t.thread_name(0, "kernel");
        for (pid, name) in table.process_names.iter().enumerate() {
            t.thread_name(pid as u64 + 1, name.clone());
        }
        for ev in &table.events {
            let tid = if ev.pid == crate::event::NO_PROCESS {
                0
            } else {
                ev.pid as u64 + 1
            };
            let ts_us = ev.time_ps as f64 / 1e6;
            let name = table.resolve(ev.label);
            let out = t.instant(tid, name, ts_us);
            out.arg("delta", ev.delta as i64);
            let chan = table.resolve(ev.chan);
            if !chan.is_empty() {
                out.arg("chan", chan);
            }
            match &ev.payload {
                Payload::Empty => {}
                p => match (p.as_i64(), p.as_f64()) {
                    (Some(i), _) => {
                        out.arg("value", i);
                    }
                    (None, Some(f)) => {
                        out.arg("value", f);
                    }
                    _ => {
                        out.arg("value", p.to_string());
                    }
                },
            }
        }
        t
    }

    /// Renders the document (`{"traceEvents": [...]}`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("traceEvents");
        w.begin_array();
        for ev in &self.events {
            w.begin_object();
            w.key("name");
            w.value_str(&ev.name);
            w.key("ph");
            w.value_str(&ev.ph.to_string());
            w.key("pid");
            w.value_u64(ev.pid);
            w.key("tid");
            w.value_u64(ev.tid);
            w.key("ts");
            w.value_f64(ev.ts_us);
            if let Some(dur) = ev.dur_us {
                w.key("dur");
                w.value_f64(dur);
            }
            if ev.ph == 'i' {
                // Instant scope: thread.
                w.key("s");
                w.value_str("t");
            }
            if !ev.args.is_empty() {
                w.key("args");
                w.begin_object();
                for (k, v) in &ev.args {
                    w.key(k);
                    match v {
                        ArgValue::Int(i) => w.value_i64(*i),
                        ArgValue::Num(n) => w.value_f64(*n),
                        ArgValue::Str(s) => w.value_str(s),
                    }
                }
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.key("displayTimeUnit");
        w.value_str("ns");
        w.end_object();
        w.finish()
    }

    /// Writes the document to a file.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, NO_PROCESS};
    use crate::intern::{Interner, Sym};

    #[test]
    fn json_shape_is_valid() {
        let mut t = ChromeTrace::new();
        t.thread_name(1, "p\"0");
        t.complete(1, "seg", 1.0, 2.0).arg("cycles", 42_i64);
        t.instant(1, "evt", 3.0);
        t.counter("depth", 0.5, 2.0);
        let json = t.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ns\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2.0"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("p\\\"0"));
        // Balanced brackets (cheap structural sanity check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn counters_from_metrics_plot_every_entry() {
        let mut m = crate::metrics::MetricsSnapshot::new();
        m.set_counter("kernel.delta_cycles", 12);
        m.set_gauge("est.res.cpu0.busy_ns", 340.5);
        m.set_gauge("skipped", f64::NAN);
        let mut t = ChromeTrace::new();
        t.counters_from_metrics(5.0, &m);
        assert_eq!(t.len(), 2, "the NaN gauge is dropped");
        let json = t.to_json();
        assert!(json.contains("\"name\":\"kernel.delta_cycles\""));
        assert!(json.contains("\"est.res.cpu0.busy_ns\":340.5"));
        assert!(json.contains("\"ts\":5.0"));
        assert!(!json.contains("skipped"));
    }

    #[test]
    fn from_table_assigns_tracks() {
        let mut interner = Interner::new();
        let label = interner.intern("fifo.write");
        let upd = interner.intern("signal.update");
        let chan = interner.intern("speech_in");
        let table = TraceTable {
            events: vec![
                TraceEvent {
                    time_ps: 2_000_000,
                    delta: 1,
                    pid: 0,
                    label,
                    chan,
                    payload: Payload::Int(7),
                },
                TraceEvent {
                    time_ps: 3_000_000,
                    delta: 2,
                    pid: NO_PROCESS,
                    label: upd,
                    chan: Sym::NONE,
                    payload: Payload::Bool(true),
                },
            ],
            strings: interner.snapshot(),
            process_names: vec!["producer".into()],
            dropped: 0,
        };
        let t = ChromeTrace::from_table(&table);
        let json = t.to_json();
        // Track names for both the kernel and the process.
        assert!(json.contains("\"name\":\"kernel\""));
        assert!(json.contains("\"name\":\"producer\""));
        // The fifo write lands on tid 1 at ts 2µs with its value.
        assert!(json.contains("\"name\":\"fifo.write\""));
        assert!(json.contains("\"ts\":2.0"));
        assert!(json.contains("\"chan\":\"speech_in\""));
        assert!(json.contains("\"value\":7"));
        // The kernel-level update lands on tid 0.
        assert!(json.contains("\"name\":\"signal.update\""));
    }
}
