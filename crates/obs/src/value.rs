//! Compact trace payloads.
//!
//! [`Payload::capture`] turns a value into a payload without going
//! through `format!` for the common numeric cases: primitives are
//! stored inline (zero heap traffic), everything else falls back to its
//! `Debug` rendering, inlined up to 22 bytes before spilling to one
//! heap allocation. Rendering a payload with `Display` reproduces the
//! legacy `format!("{value:?}")` text exactly, so the old string-based
//! trace API can be materialized as a view.

use std::any::Any;
use std::fmt;

/// The value carried by a [`crate::TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No value (pure occurrence).
    Empty,
    /// Signed integer (i8..=i64, also u8..=u32 which fit losslessly).
    Int(i64),
    /// Unsigned integer too large for `Int`.
    UInt(u64),
    /// 32-bit float (kept separate so `Debug` fidelity is preserved).
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Anything else, pre-rendered via `Debug`. Short strings are
    /// stored inline.
    Text(CompactStr),
}

impl Payload {
    /// Captures `value` as compactly as possible. Primitive numerics
    /// and booleans are stored without allocating; other types are
    /// rendered through their `Debug` impl (matching the legacy
    /// `format!("{value:?}")` trace text).
    pub fn capture<T: fmt::Debug + 'static>(value: &T) -> Payload {
        let any = value as &dyn Any;
        if let Some(v) = any.downcast_ref::<i32>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<u32>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<i64>() {
            Payload::Int(*v)
        } else if let Some(v) = any.downcast_ref::<u64>() {
            if let Ok(i) = i64::try_from(*v) {
                Payload::Int(i)
            } else {
                Payload::UInt(*v)
            }
        } else if let Some(v) = any.downcast_ref::<usize>() {
            Payload::UInt(*v as u64)
        } else if let Some(v) = any.downcast_ref::<isize>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<i16>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<u16>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<i8>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<u8>() {
            Payload::Int(*v as i64)
        } else if let Some(v) = any.downcast_ref::<bool>() {
            Payload::Bool(*v)
        } else if let Some(v) = any.downcast_ref::<f32>() {
            Payload::F32(*v)
        } else if let Some(v) = any.downcast_ref::<f64>() {
            Payload::F64(*v)
        } else {
            Payload::Text(CompactStr::from_debug(value))
        }
    }

    /// Raw text payload (no `Debug` quoting) — for user-emitted trace
    /// details.
    pub fn text(s: &str) -> Payload {
        Payload::Text(CompactStr::from(s))
    }

    /// The payload as a float, when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Payload::Int(v) => Some(*v as f64),
            Payload::UInt(v) => Some(*v as f64),
            Payload::F32(v) => Some(*v as f64),
            Payload::F64(v) => Some(*v),
            Payload::Bool(v) => Some(*v as u8 as f64),
            _ => None,
        }
    }

    /// The payload as a signed integer, when it is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Payload::Int(v) => Some(*v),
            Payload::UInt(v) => i64::try_from(*v).ok(),
            Payload::Bool(v) => Some(*v as i64),
            _ => None,
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Empty => Ok(()),
            Payload::Int(v) => write!(f, "{v}"),
            Payload::UInt(v) => write!(f, "{v}"),
            // Debug formatting keeps "1.0" (vs Display's "1") so the
            // legacy `{:?}` trace text round-trips.
            Payload::F32(v) => write!(f, "{v:?}"),
            Payload::F64(v) => write!(f, "{v:?}"),
            Payload::Bool(v) => write!(f, "{v}"),
            Payload::Text(s) => f.write_str(s.as_str()),
        }
    }
}

const INLINE_CAP: usize = 22;

/// A string inlined up to 22 bytes, spilling to a single boxed `str`
/// beyond that.
#[derive(Clone)]
pub enum CompactStr {
    /// Stored in place.
    Inline {
        /// Number of meaningful bytes in `buf`.
        len: u8,
        /// UTF-8 bytes.
        buf: [u8; INLINE_CAP],
    },
    /// Spilled to the heap.
    Heap(Box<str>),
}

impl CompactStr {
    /// Renders `value`'s `Debug` form, inline when short.
    pub fn from_debug<T: fmt::Debug + ?Sized>(value: &T) -> CompactStr {
        let mut w = CompactWriter::new();
        let _ = fmt::write(&mut w, format_args!("{value:?}"));
        w.finish()
    }

    /// The text.
    pub fn as_str(&self) -> &str {
        match self {
            CompactStr::Inline { len, buf } => {
                std::str::from_utf8(&buf[..*len as usize]).expect("inline bytes are utf-8")
            }
            CompactStr::Heap(s) => s,
        }
    }
}

impl From<&str> for CompactStr {
    fn from(s: &str) -> CompactStr {
        if s.len() <= INLINE_CAP {
            let mut buf = [0_u8; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            CompactStr::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            CompactStr::Heap(s.into())
        }
    }
}

impl PartialEq for CompactStr {
    fn eq(&self, other: &CompactStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Debug for CompactStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for CompactStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `fmt::Write` target that stays on the stack until it overflows.
struct CompactWriter {
    buf: [u8; INLINE_CAP],
    len: usize,
    spill: Option<String>,
}

impl CompactWriter {
    fn new() -> CompactWriter {
        CompactWriter {
            buf: [0; INLINE_CAP],
            len: 0,
            spill: None,
        }
    }

    fn finish(self) -> CompactStr {
        match self.spill {
            Some(s) => CompactStr::Heap(s.into_boxed_str()),
            None => CompactStr::Inline {
                len: self.len as u8,
                buf: self.buf,
            },
        }
    }
}

impl fmt::Write for CompactWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        if let Some(spill) = &mut self.spill {
            spill.push_str(s);
            return Ok(());
        }
        if self.len + s.len() <= INLINE_CAP {
            self.buf[self.len..self.len + s.len()].copy_from_slice(s.as_bytes());
            self.len += s.len();
        } else {
            let mut spill = String::with_capacity(self.len + s.len());
            spill.push_str(std::str::from_utf8(&self.buf[..self.len]).expect("utf-8"));
            spill.push_str(s);
            self.spill = Some(spill);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_captures_are_inline() {
        assert_eq!(Payload::capture(&42_i32), Payload::Int(42));
        assert_eq!(Payload::capture(&42_u32), Payload::Int(42));
        assert_eq!(Payload::capture(&-7_i64), Payload::Int(-7));
        assert_eq!(Payload::capture(&u64::MAX), Payload::UInt(u64::MAX));
        assert_eq!(Payload::capture(&true), Payload::Bool(true));
        assert_eq!(Payload::capture(&1.5_f32), Payload::F32(1.5));
        assert_eq!(Payload::capture(&2.5_f64), Payload::F64(2.5));
    }

    #[test]
    fn display_matches_legacy_debug_format() {
        // The old trace path did format!("{v:?}").
        assert_eq!(Payload::capture(&9_u32).to_string(), format!("{:?}", 9_u32));
        assert_eq!(Payload::capture(&true).to_string(), format!("{:?}", true));
        assert_eq!(
            Payload::capture(&1.0_f64).to_string(),
            format!("{:?}", 1.0_f64)
        );
        assert_eq!(
            Payload::capture(&0.25_f32).to_string(),
            format!("{:?}", 0.25_f32)
        );
        let s = String::from("hello");
        assert_eq!(Payload::capture(&s).to_string(), format!("{s:?}"));
        let tup = (1, 2);
        assert_eq!(Payload::capture(&tup).to_string(), format!("{tup:?}"));
    }

    #[test]
    fn long_debug_text_spills_to_heap() {
        let long = "x".repeat(100);
        let p = Payload::capture(&long);
        assert_eq!(p.to_string(), format!("{long:?}"));
        match p {
            Payload::Text(CompactStr::Heap(_)) => {}
            other => panic!("expected heap text, got {other:?}"),
        }
    }

    #[test]
    fn short_debug_text_stays_inline() {
        let v = vec![1_u8, 2];
        match Payload::capture(&v) {
            Payload::Text(CompactStr::Inline { .. }) => {}
            other => panic!("expected inline text, got {other:?}"),
        }
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Payload::Int(-3).as_i64(), Some(-3));
        assert_eq!(Payload::Bool(true).as_i64(), Some(1));
        assert_eq!(Payload::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Payload::text("x").as_f64(), None);
    }
}
