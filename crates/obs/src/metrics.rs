//! Metrics: named counters and gauges snapshotable at any sim time.
//!
//! Producers (the kernel, the estimator) keep their counters wherever
//! is cheapest — plain fields under an existing lock, atomics in a
//! channel — and materialize a [`MetricsSnapshot`] on demand. The
//! snapshot is an ordered name → value map, renderable as text or JSON
//! (`BENCH_obs.json`).

use std::collections::BTreeMap;
use std::fmt;

use crate::json::JsonWriter;

/// A snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
}

/// An ordered collection of named metrics, e.g.
/// `kernel.delta_cycles`, `channel.speech_in.writes`,
/// `estimator.segments_closed`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Sets a counter.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries
            .insert(name.into(), MetricValue::Counter(value));
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.insert(name.into(), MetricValue::Gauge(value));
    }

    /// Reads a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Reads a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Absorbs all entries of `other`. On name clashes, counters
    /// **sum** (saturating) and gauges are **last-write-wins** — the
    /// semantics a multi-worker fold needs: per-worker event counts
    /// accumulate, while point-in-time measurements keep the most
    /// recent observation. A counter/gauge kind clash is resolved
    /// last-write-wins (the entry from `other` replaces the old one).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for (name, value) in other.entries {
            match (self.entries.get_mut(&name), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    *a = a.saturating_add(b);
                }
                (slot, value) => match slot {
                    Some(v) => *v = value,
                    None => {
                        self.entries.insert(name, value);
                    }
                },
            }
        }
    }

    /// Renders the snapshot as a JSON object (`{"name": value, ...}`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes the snapshot as an object into an ongoing JSON document.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (name, value) in &self.entries {
            w.key(name);
            match value {
                MetricValue::Counter(v) => w.value_u64(*v),
                MetricValue::Gauge(v) => w.value_f64(*v),
            }
        }
        w.end_object();
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.entries.keys().map(String::len).max().unwrap_or(0);
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => writeln!(f, "{name:<width$}  {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "{name:<width$}  {v:.3}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_read_back() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("kernel.delta_cycles", 12);
        m.set_gauge("kernel.ready_peak", 3.0);
        assert_eq!(m.counter("kernel.delta_cycles"), Some(12));
        assert_eq!(m.gauge("kernel.ready_peak"), Some(3.0));
        assert_eq!(m.counter("missing"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn json_round_trip_shape() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("b.count", 2);
        m.set_gauge("a.value", 1.5);
        // BTreeMap ordering makes the output deterministic.
        assert_eq!(m.to_json(), "{\"a.value\":1.5,\"b.count\":2}");
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("x", 1);
        let mut b = MetricsSnapshot::new();
        b.set_counter("x", 9);
        b.set_counter("y", 2);
        a.merge(b);
        assert_eq!(a.counter("x"), Some(10));
        assert_eq!(a.counter("y"), Some(2));
    }

    #[test]
    fn merge_overwrites_gauges_last_write_wins() {
        let mut a = MetricsSnapshot::new();
        a.set_gauge("g", 1.0);
        let mut b = MetricsSnapshot::new();
        b.set_gauge("g", 7.5);
        a.merge(b);
        assert_eq!(a.gauge("g"), Some(7.5));
    }

    #[test]
    fn merge_kind_clash_takes_the_newer_entry() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("m", 3);
        let mut b = MetricsSnapshot::new();
        b.set_gauge("m", 0.5);
        a.merge(b);
        assert_eq!(a.counter("m"), None);
        assert_eq!(a.gauge("m"), Some(0.5));
    }

    #[test]
    fn merge_is_associative_over_counters() {
        let snap = |v: u64| {
            let mut m = MetricsSnapshot::new();
            m.set_counter("worker.completed", v);
            m.set_gauge("worker.depth", v as f64);
            m
        };
        let mut left = snap(1);
        left.merge(snap(2));
        left.merge(snap(4));
        let mut right_inner = snap(2);
        right_inner.merge(snap(4));
        let mut right = snap(1);
        right.merge(right_inner);
        assert_eq!(left, right);
        assert_eq!(left.counter("worker.completed"), Some(7));
        assert_eq!(left.gauge("worker.depth"), Some(4.0));
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("x", u64::MAX - 1);
        let mut b = MetricsSnapshot::new();
        b.set_counter("x", 5);
        a.merge(b);
        assert_eq!(a.counter("x"), Some(u64::MAX));
    }

    #[test]
    fn display_lists_all_entries() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("kernel.context_switches", 7);
        m.set_gauge("estimator.cycles", 42.5);
        let text = m.to_string();
        assert!(text.contains("kernel.context_switches"));
        assert!(text.contains("7"));
        assert!(text.contains("42.500"));
    }
}
