//! String interning: the trace hot path stores 4-byte [`Sym`] handles
//! instead of cloning `String`s per record.

use std::collections::HashMap;
use std::sync::Arc;

/// An interned string handle. Cheap to copy and compare; resolved back
/// to text through the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Sentinel for "no string" (e.g. an event with no channel).
    pub const NONE: Sym = Sym(u32::MAX);

    /// Whether this is the [`Sym::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == Sym::NONE
    }

    /// The raw index (meaningful only to the owning interner).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A deduplicating string table. Interning the same text twice returns
/// the same [`Sym`]; resolution is an array index.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    index: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Returns the symbol for `text`, interning it on first sight.
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(&id) = self.index.get(text) {
            return Sym(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        assert!(id != u32::MAX, "interner full");
        let owned: Arc<str> = Arc::from(text);
        self.strings.push(Arc::clone(&owned));
        self.index.insert(owned, id);
        Sym(id)
    }

    /// Resolves a symbol; [`Sym::NONE`] and unknown symbols resolve to
    /// the empty string.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings
            .get(sym.0 as usize)
            .map(|s| s.as_ref())
            .unwrap_or("")
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// An owned copy of the string table, indexed by symbol. Used when
    /// detaching a [`crate::TraceTable`] from the live simulation.
    pub fn snapshot(&self) -> Vec<String> {
        self.strings.iter().map(|s| s.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("fifo.write");
        let b = i.intern("fifo.read");
        let a2 = i.intern("fifo.write");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "fifo.write");
        assert_eq!(i.resolve(b), "fifo.read");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn none_resolves_to_empty() {
        let i = Interner::new();
        assert_eq!(i.resolve(Sym::NONE), "");
        assert!(Sym::NONE.is_none());
    }

    #[test]
    fn snapshot_matches_indices() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let snap = i.snapshot();
        assert_eq!(snap[a.index() as usize], "x");
        assert_eq!(snap[b.index() as usize], "y");
    }
}
