//! # scperf-obs — unified low-overhead observability
//!
//! The paper's core promise (§4) is *visibility*: per-process and
//! per-resource execution times "generated automatically" from an
//! unmodified description. This crate is the workspace's observability
//! substrate, designed so that visibility never distorts what it
//! measures:
//!
//! * **Structured tracing** ([`TraceEvent`], [`Interner`]) — the hot
//!   path records interned symbol ids and a compact [`Payload`] into a
//!   preallocated segment/ring buffer ([`MemorySink`]) behind the
//!   pluggable [`TraceSink`] trait. No `String` per field; numeric
//!   payloads never touch the heap.
//! * **Metrics** ([`MetricsSnapshot`]) — counters and gauges for kernel
//!   and estimator internals (delta cycles, context switches, channel
//!   access counts, segments closed, …), snapshotable at any sim time.
//! * **Profiling** ([`profile`], [`span!`]) — host-time span guards
//!   answering "where does wall-clock go" (scheduling vs. estimation
//!   vs. channel ops), the Figure-4 overhead question for our own
//!   kernel.
//! * **Latency distributions** ([`stats`], [`histogram`]) — exact
//!   sample bags for short runs and the bounded, mergeable
//!   [`LogHistogram`] (fixed ~11 KB footprint, <1% relative quantile
//!   error) for long-running services.
//! * **Exporters** ([`chrome`], [`json`], [`prom`]) — Chrome
//!   `trace_event` JSON loadable in Perfetto / `chrome://tracing` with
//!   one track per process or resource, metric counter tracks, a tiny
//!   JSON writer for machine-readable metric dumps (`BENCH_obs.json`),
//!   and Prometheus text exposition for live telemetry.
//!
//! The crate is dependency-free and usable by every layer of the
//! workspace (kernel, estimator, benches).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod event;
pub mod histogram;
mod intern;
pub mod json;
mod metrics;
pub mod profile;
pub mod prom;
mod sink;
pub mod stats;
mod value;

pub use event::{TraceEvent, TraceTable, NO_PROCESS};
pub use histogram::LogHistogram;
pub use intern::{Interner, Sym};
pub use metrics::{MetricValue, MetricsSnapshot};
pub use sink::{MemorySink, TraceSink};
pub use stats::{LatencySamples, LatencySummary};
pub use value::Payload;
