//! # scperf-obs — unified low-overhead observability
//!
//! The paper's core promise (§4) is *visibility*: per-process and
//! per-resource execution times "generated automatically" from an
//! unmodified description. This crate is the workspace's observability
//! substrate, designed so that visibility never distorts what it
//! measures:
//!
//! * **Structured tracing** ([`TraceEvent`], [`Interner`]) — the hot
//!   path records interned symbol ids and a compact [`Payload`] into a
//!   preallocated segment/ring buffer ([`MemorySink`]) behind the
//!   pluggable [`TraceSink`] trait. No `String` per field; numeric
//!   payloads never touch the heap.
//! * **Metrics** ([`MetricsSnapshot`]) — counters and gauges for kernel
//!   and estimator internals (delta cycles, context switches, channel
//!   access counts, segments closed, …), snapshotable at any sim time.
//! * **Profiling** ([`profile`], [`span!`]) — host-time span guards
//!   answering "where does wall-clock go" (scheduling vs. estimation
//!   vs. channel ops), the Figure-4 overhead question for our own
//!   kernel.
//! * **Exporters** ([`chrome`], [`json`]) — Chrome `trace_event` JSON
//!   loadable in Perfetto / `chrome://tracing` with one track per
//!   process or resource, plus a tiny JSON writer for machine-readable
//!   metric dumps (`BENCH_obs.json`).
//!
//! The crate is dependency-free and usable by every layer of the
//! workspace (kernel, estimator, benches).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod event;
mod intern;
pub mod json;
mod metrics;
pub mod profile;
mod sink;
pub mod stats;
mod value;

pub use event::{TraceEvent, TraceTable, NO_PROCESS};
pub use intern::{Interner, Sym};
pub use metrics::{MetricValue, MetricsSnapshot};
pub use sink::{MemorySink, TraceSink};
pub use stats::{LatencySamples, LatencySummary};
pub use value::Payload;
