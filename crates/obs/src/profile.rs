//! Host-time profiling spans.
//!
//! A [`span`] guard measures the wall-clock time between its creation
//! and drop and accumulates it into a process-global table keyed by the
//! span name. Disabled (the default), a span is one relaxed atomic
//! load — cheap enough to leave in the kernel's scheduler phases.
//!
//! Hot paths use [`span`] with a `&'static str` (no allocation);
//! dynamically named tracks — e.g. one span per design-space-exploration
//! worker — use [`span_dyn`] with an owned `String`. Because the table
//! is process-global, spans from concurrent simulations aggregate by
//! name; give concurrent tracks distinct names when they must stay
//! apart.
//!
//! ```
//! scperf_obs::profile::reset();
//! scperf_obs::profile::set_enabled(true);
//! {
//!     let _g = scperf_obs::profile::span("phase.example");
//!     // ... work ...
//! }
//! let report = scperf_obs::profile::report();
//! assert_eq!(report[0].0, "phase.example");
//! assert_eq!(report[0].1.count, 1);
//! scperf_obs::profile::set_enabled(false);
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<HashMap<Cow<'static, str>, SpanStats>> {
    static TABLE: OnceLock<Mutex<HashMap<Cow<'static, str>, SpanStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Globally enables or disables span measurement.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span measurement is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Accumulated host-time statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Total wall-clock time spent inside the span.
    pub total: Duration,
    /// Number of completed span instances.
    pub count: u64,
}

/// RAII guard measuring one span instance. Create via [`span`] (static
/// name) or [`span_dyn`] (owned name).
#[derive(Debug)]
pub struct SpanGuard {
    name: Option<Cow<'static, str>>,
    start: Option<Instant>,
}

/// Starts a span named `name`. When profiling is disabled this is a
/// single atomic load and the guard does nothing on drop.
pub fn span(name: &'static str) -> SpanGuard {
    span_dyn(Cow::Borrowed(name))
}

/// Starts a span with a dynamically built name (e.g. `dse.worker.3`).
/// Allocates only when profiling is enabled and the name is owned;
/// prefer [`span`] on hot paths with fixed names.
pub fn span_dyn(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if enabled() {
        SpanGuard {
            name: Some(name.into()),
            start: Some(Instant::now()),
        }
    } else {
        SpanGuard {
            name: None,
            start: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(start), Some(name)) = (self.start, self.name.take()) {
            let elapsed = start.elapsed();
            let mut table = table().lock().unwrap_or_else(PoisonError::into_inner);
            let stats = table.entry(name).or_default();
            stats.total += elapsed;
            stats.count += 1;
        }
    }
}

/// The accumulated spans, sorted by total time descending.
pub fn report() -> Vec<(String, SpanStats)> {
    let table = table().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<_> = table
        .iter()
        .map(|(k, &v)| (k.clone().into_owned(), v))
        .collect();
    out.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
    out
}

/// Clears all accumulated spans.
pub fn reset() {
    table()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Opens a profiling span for the rest of the enclosing scope:
/// `span!("kernel.evaluate");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _scperf_obs_span_guard = $crate::profile::span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serialize profile tests: they share the global table.
    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock_tests();
        reset();
        set_enabled(false);
        {
            crate::span!("never");
        }
        assert!(report().iter().all(|(n, _)| *n != "never"));
    }

    #[test]
    fn enabled_spans_accumulate() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _s = span("unit.work");
            std::hint::black_box(0_u64);
        }
        set_enabled(false);
        let report = report();
        let entry = report.iter().find(|(n, _)| *n == "unit.work").unwrap();
        assert_eq!(entry.1.count, 3);
        reset();
    }

    #[test]
    fn dyn_spans_aggregate_by_owned_name() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        for worker in 0..2 {
            for _ in 0..2 {
                let _s = span_dyn(format!("unit.worker.{worker}"));
                std::hint::black_box(0_u64);
            }
        }
        set_enabled(false);
        let report = report();
        for worker in 0..2 {
            let name = format!("unit.worker.{worker}");
            let entry = report.iter().find(|(n, _)| *n == name).unwrap();
            assert_eq!(entry.1.count, 2);
        }
        reset();
    }

    #[test]
    fn report_sorts_by_total_desc() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _a = span("fast");
        }
        {
            let _b = span("slow");
            std::thread::sleep(Duration::from_millis(2));
        }
        set_enabled(false);
        let report = report();
        let slow_pos = report.iter().position(|(n, _)| *n == "slow").unwrap();
        let fast_pos = report.iter().position(|(n, _)| *n == "fast").unwrap();
        assert!(slow_pos < fast_pos);
        reset();
    }
}
