//! Host-time profiling spans.
//!
//! A [`span`] guard measures the wall-clock time between its creation
//! and drop and accumulates it into a process-global table keyed by a
//! static name. Disabled (the default), a span is one relaxed atomic
//! load — cheap enough to leave in the kernel's scheduler phases.
//!
//! ```
//! scperf_obs::profile::reset();
//! scperf_obs::profile::set_enabled(true);
//! {
//!     let _g = scperf_obs::profile::span("phase.example");
//!     // ... work ...
//! }
//! let report = scperf_obs::profile::report();
//! assert_eq!(report[0].0, "phase.example");
//! assert_eq!(report[0].1.count, 1);
//! scperf_obs::profile::set_enabled(false);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<HashMap<&'static str, SpanStats>> {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, SpanStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Globally enables or disables span measurement.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span measurement is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Accumulated host-time statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Total wall-clock time spent inside the span.
    pub total: Duration,
    /// Number of completed span instances.
    pub count: u64,
}

/// RAII guard measuring one span instance. Create via [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a span named `name`. When profiling is disabled this is a
/// single atomic load and the guard does nothing on drop.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            let mut table = table().lock().unwrap_or_else(PoisonError::into_inner);
            let stats = table.entry(self.name).or_default();
            stats.total += elapsed;
            stats.count += 1;
        }
    }
}

/// The accumulated spans, sorted by total time descending.
pub fn report() -> Vec<(&'static str, SpanStats)> {
    let table = table().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<_> = table.iter().map(|(&k, &v)| (k, v)).collect();
    out.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));
    out
}

/// Clears all accumulated spans.
pub fn reset() {
    table()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Opens a profiling span for the rest of the enclosing scope:
/// `span!("kernel.evaluate");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _scperf_obs_span_guard = $crate::profile::span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serialize profile tests: they share the global table.
    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock_tests();
        reset();
        set_enabled(false);
        {
            crate::span!("never");
        }
        assert!(report().iter().all(|(n, _)| *n != "never"));
    }

    #[test]
    fn enabled_spans_accumulate() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _s = span("unit.work");
            std::hint::black_box(0_u64);
        }
        set_enabled(false);
        let report = report();
        let entry = report.iter().find(|(n, _)| *n == "unit.work").unwrap();
        assert_eq!(entry.1.count, 3);
        reset();
    }

    #[test]
    fn report_sorts_by_total_desc() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _a = span("fast");
        }
        {
            let _b = span("slow");
            std::thread::sleep(Duration::from_millis(2));
        }
        set_enabled(false);
        let report = report();
        let slow_pos = report.iter().position(|(n, _)| *n == "slow").unwrap();
        let fast_pos = report.iter().position(|(n, _)| *n == "fast").unwrap();
        assert!(slow_pos < fast_pos);
        reset();
    }
}
