//! Pluggable trace sinks.
//!
//! The kernel hands every [`TraceEvent`] to a boxed [`TraceSink`];
//! [`MemorySink`] is the default in-memory implementation, storing
//! events in preallocated segments with an optional ring bound so
//! long-running simulations keep only the most recent window.

use std::collections::VecDeque;

use crate::event::TraceEvent;
use crate::intern::Interner;

/// Receives trace events as they happen.
///
/// The interner is passed on every call so streaming sinks (writers,
/// aggregators) can resolve symbols without owning the table; an
/// in-memory sink can ignore it and resolve at drain time.
pub trait TraceSink: Send {
    /// Records one event. Called with the kernel lock held — must not
    /// re-enter the simulator.
    fn record(&mut self, interner: &Interner, event: &TraceEvent);

    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}

    /// Downcast hook so the kernel can drain the default sink.
    fn as_memory(&mut self) -> Option<&mut MemorySink> {
        None
    }
}

const SEGMENT_EVENTS: usize = 4096;

/// Segmented in-memory event buffer.
///
/// Events append into fixed-size preallocated segments, so recording
/// never copies old events (unlike a growing `Vec`'s realloc). With a
/// ring bound, whole oldest segments are discarded once the bound is
/// exceeded; [`MemorySink::dropped`] counts discarded events.
#[derive(Debug)]
pub struct MemorySink {
    segments: VecDeque<Vec<TraceEvent>>,
    max_events: Option<usize>,
    seg_capacity: usize,
    len: usize,
    dropped: u64,
}

impl MemorySink {
    /// Unbounded sink.
    pub fn new() -> MemorySink {
        MemorySink {
            segments: VecDeque::new(),
            max_events: None,
            seg_capacity: SEGMENT_EVENTS,
            len: 0,
            dropped: 0,
        }
    }

    /// Ring sink keeping at most `max_events` events (eviction
    /// granularity is one segment, sized at a quarter of the bound so a
    /// small bound is still honored).
    pub fn ring(max_events: usize) -> MemorySink {
        let max_events = max_events.max(1);
        MemorySink {
            max_events: Some(max_events),
            seg_capacity: (max_events / 4).clamp(16, SEGMENT_EVENTS).min(max_events),
            ..MemorySink::new()
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events discarded by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.len = 0;
        let mut out = Vec::new();
        for seg in self.segments.drain(..) {
            out.extend(seg);
        }
        out
    }
}

impl Default for MemorySink {
    fn default() -> MemorySink {
        MemorySink::new()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, _interner: &Interner, event: &TraceEvent) {
        let need_segment = self
            .segments
            .back()
            .map(|s| s.len() == self.seg_capacity)
            .unwrap_or(true);
        if need_segment {
            self.segments
                .push_back(Vec::with_capacity(self.seg_capacity));
        }
        self.segments
            .back_mut()
            .expect("segment present")
            .push(event.clone());
        self.len += 1;
        if let Some(max) = self.max_events {
            while self.len > max && self.segments.len() > 1 {
                let evicted = self.segments.pop_front().expect("front segment");
                self.len -= evicted.len();
                self.dropped += evicted.len() as u64;
            }
        }
    }

    fn as_memory(&mut self) -> Option<&mut MemorySink> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Sym;
    use crate::value::Payload;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            time_ps: i,
            delta: i,
            pid: 0,
            label: Sym::NONE,
            chan: Sym::NONE,
            payload: Payload::Int(i as i64),
        }
    }

    #[test]
    fn unbounded_sink_keeps_everything_in_order() {
        let mut s = MemorySink::new();
        let interner = Interner::new();
        for i in 0..10_000 {
            s.record(&interner, &ev(i));
        }
        assert_eq!(s.len(), 10_000);
        assert_eq!(s.dropped(), 0);
        let events = s.drain();
        assert_eq!(events.len(), 10_000);
        assert!(events
            .iter()
            .enumerate()
            .all(|(i, e)| e.time_ps == i as u64));
        assert!(s.is_empty());
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut s = MemorySink::ring(SEGMENT_EVENTS);
        let interner = Interner::new();
        let total = 3 * SEGMENT_EVENTS as u64 + 17;
        for i in 0..total {
            s.record(&interner, &ev(i));
        }
        assert!(s.len() <= 2 * SEGMENT_EVENTS);
        assert_eq!(s.len() as u64 + s.dropped(), total);
        let events = s.drain();
        // Newest event must survive; retained events are contiguous.
        assert_eq!(events.last().unwrap().time_ps, total - 1);
        let first = events.first().unwrap().time_ps;
        assert!(events
            .iter()
            .enumerate()
            .all(|(i, e)| e.time_ps == first + i as u64));
    }

    #[test]
    fn small_ring_bound_is_honored() {
        let mut s = MemorySink::ring(1024);
        let interner = Interner::new();
        for i in 0..20_000 {
            s.record(&interner, &ev(i));
        }
        assert!(s.len() <= 1024, "kept {} > bound", s.len());
        assert_eq!(s.len() as u64 + s.dropped(), 20_000);
        assert_eq!(s.drain().last().unwrap().time_ps, 19_999);
    }
}
