//! A bounded log-linear (HDR-style) histogram for long-running
//! aggregation.
//!
//! [`LatencySamples`](crate::stats::LatencySamples) keeps every sample
//! in a `Vec<f64>` — exact, but unbounded: a service recording one
//! sample per request grows without limit. [`LogHistogram`] trades a
//! bounded relative error for a fixed footprint:
//!
//! * values are recorded as integer ticks (the serve layer uses
//!   nanoseconds) into log-linear buckets — exact below
//!   [`LogHistogram::LINEAR_MAX`], then 64 sub-buckets per power of two;
//! * the bucket array is a fixed ~11 KB regardless of sample count;
//! * quantile estimates use the bucket midpoint, so the relative error
//!   is at most `1/128 ≈ 0.78% < 1%`;
//! * histograms merge by elementwise addition, so per-worker histograms
//!   fold into a service-wide one without losing accuracy.

use crate::stats::LatencySummary;

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per octave, bounding the
/// relative quantile error by `1 / (2 * 64) = 1/128`.
const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;
/// Octaves above the linear region. Covers ticks up to
/// `2^(6 + OCTAVES) - 1` ≈ 2.8e14 (about 3.3 days in nanoseconds);
/// larger values saturate into the last bucket.
const OCTAVES: usize = 42;
const BUCKETS: usize = SUB as usize * (OCTAVES + 1);

/// A fixed-footprint mergeable histogram of non-negative integer ticks.
///
/// ```
/// use scperf_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30, 40_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(0.0), Some(10));
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 as f64 - 20.0).abs() / 20.0 < 0.01);
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u32; BUCKETS]>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// Largest tick recorded exactly (one bucket per value below this).
    pub const LINEAR_MAX: u64 = SUB - 1;

    /// An empty histogram. The footprint is fixed at allocation:
    /// `BUCKETS` u32 slots (~11 KB) plus a few scalars.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let exp = 63 - u64::leading_zeros(value); // >= SUB_BITS
        let octave = ((exp - SUB_BITS) as usize + 1).min(OCTAVES);
        let sub = if octave == OCTAVES && exp >= SUB_BITS + OCTAVES as u32 {
            SUB - 1 // saturate past the covered range
        } else {
            (value >> (exp - SUB_BITS)) & (SUB - 1)
        };
        octave * SUB as usize + sub as usize
    }

    /// Lower edge of bucket `index`.
    fn bucket_low(index: usize) -> u64 {
        let octave = index / SUB as usize;
        let sub = (index % SUB as usize) as u64;
        if octave == 0 {
            sub
        } else {
            (SUB + sub) << (octave - 1)
        }
    }

    /// Width of bucket `index` (1 in the linear region).
    fn bucket_width(index: usize) -> u64 {
        let octave = index / SUB as usize;
        if octave == 0 {
            1
        } else {
            1 << (octave - 1)
        }
    }

    /// Records one tick value. Bucket counts saturate at `u32::MAX`;
    /// the total count keeps counting in 64 bits.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a microsecond sample as nanosecond ticks (the convention
    /// used by the serve layer). Non-finite and negative samples are
    /// ignored, mirroring [`crate::stats::LatencySamples::record_us`].
    pub fn record_us(&mut self, us: f64) {
        if us.is_finite() && us >= 0.0 {
            self.record((us * 1e3).round() as u64);
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Forgets every sample, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Adds every sample of `other` into `self` (elementwise bucket
    /// addition): merging per-worker histograms is associative and
    /// loses no accuracy beyond the bucketing itself.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`) in ticks, or
    /// `None` when empty. The estimate is the midpoint of the bucket
    /// holding the rank, clamped to the observed `[min, max]`, so the
    /// relative error is bounded by half a bucket width: `< 1/128`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c as u64;
            if seen >= rank {
                let low = Self::bucket_low(i);
                let mid = low + Self::bucket_width(i) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Smallest recorded tick, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded tick, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of the recorded ticks (the sum is kept out-of-band,
    /// unbucketed), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Summary in microseconds, interoperable with
    /// [`LatencySummary::export`] so histogram-backed series keep the
    /// metric names of the exact-sample implementation.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.count == 0 {
            return None;
        }
        let us = |ticks: u64| ticks as f64 / 1e3;
        Some(LatencySummary {
            count: self.count as usize,
            min_us: us(self.min),
            max_us: us(self.max),
            mean_us: self.mean().unwrap_or(0.0) / 1e3,
            p50_us: us(self.quantile(0.5).unwrap_or(0)),
            p90_us: us(self.quantile(0.9).unwrap_or(0)),
            p99_us: us(self.quantile(0.99).unwrap_or(0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_a_few_kilobytes() {
        // The whole point: bounded memory no matter how many samples.
        let bytes = std::mem::size_of::<LogHistogram>();
        assert!(bytes < 16 * 1024, "histogram is {bytes} bytes");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let exact = ((q * SUB as f64).ceil() as u64).clamp(1, SUB) - 1;
            assert_eq!(h.quantile(q), Some(exact), "q={q}");
        }
    }

    #[test]
    fn bucket_edges_are_contiguous_and_ordered() {
        for i in 1..BUCKETS {
            assert_eq!(
                LogHistogram::bucket_low(i),
                LogHistogram::bucket_low(i - 1) + LogHistogram::bucket_width(i - 1),
                "gap at bucket {i}"
            );
        }
        // Round trip: every bucket's low edge maps back to itself.
        for i in 0..BUCKETS {
            assert_eq!(LogHistogram::bucket_of(LogHistogram::bucket_low(i)), i);
        }
    }

    #[test]
    fn quantile_error_is_under_one_percent() {
        let mut h = LogHistogram::new();
        // Deterministic spread over five decades.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut values = Vec::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 100_000_000;
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1] as f64;
            let est = h.quantile(q).unwrap() as f64;
            let err = (est - exact).abs() / exact.max(1.0);
            assert!(err < 0.01, "q={q}: est {est} vs exact {exact} (err {err})");
        }
    }

    #[test]
    fn oversized_values_saturate_instead_of_panicking() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [3u64, 70, 900, 1_000_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [5u64, 80, 12_345] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.3, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = LogHistogram::new();
        h.record_us(42.5);
        assert_eq!(h.count(), 1);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn summary_reports_microseconds() {
        let mut h = LogHistogram::new();
        h.record_us(10.0); // 10_000 ns
        h.record_us(20.0);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 2);
        assert!((s.min_us - 10.0).abs() < 0.2);
        assert!((s.max_us - 20.0).abs() < 0.2);
        assert!((s.mean_us - 15.0).abs() < 0.2);
    }

    #[test]
    fn non_finite_and_negative_samples_are_ignored() {
        let mut h = LogHistogram::new();
        h.record_us(f64::NAN);
        h.record_us(f64::INFINITY);
        h.record_us(-1.0);
        assert!(h.is_empty());
    }
}
