//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! [`render`] turns a snapshot into the Prometheus text format
//! (version 0.0.4): one `# TYPE` line per family followed by its
//! samples. Metric names are sanitized (`.` and any other character
//! outside `[a-zA-Z0-9_:]` become `_`), counters render as `counter`
//! families and gauges as `gauge` families — except the
//! `p50_us`/`p90_us`/`p99_us` gauge triples that
//! [`LatencySummary::export`](crate::stats::LatencySummary::export)
//! writes, which fold into one `summary` family with `quantile`
//! labels:
//!
//! ```text
//! # TYPE serve_latency_us summary
//! serve_latency_us{quantile="0.5"} 104.2
//! serve_latency_us{quantile="0.9"} 181.7
//! serve_latency_us{quantile="0.99"} 240.1
//! ```
//!
//! The output is deterministic: families appear in the snapshot's
//! (sorted) name order, quantiles ascending.

use crate::metrics::{MetricValue, MetricsSnapshot};

/// Quantile-suffix → label pairs, in ascending quantile order.
const QUANTILES: [(&str, &str); 3] = [(".p50_us", "0.5"), (".p90_us", "0.9"), (".p99_us", "0.99")];

/// Rewrites a metric name into the Prometheus charset: characters
/// outside `[a-zA-Z0-9_:]` become `_`, and a leading digit is escaped
/// with `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Splits `name` into its summary base when it is one of the quantile
/// gauges written by `LatencySummary::export`.
fn quantile_base(name: &str) -> Option<&str> {
    QUANTILES
        .iter()
        .find_map(|(suffix, _)| name.strip_suffix(suffix))
}

/// Renders `metrics` as Prometheus text exposition (content type
/// `text/plain; version=0.0.4`).
pub fn render(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in metrics.iter() {
        match value {
            MetricValue::Counter(v) => {
                let san = sanitize(name);
                out.push_str(&format!("# TYPE {san} counter\n{san} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                if let Some(base) = quantile_base(name) {
                    // Emit the whole summary family at its first
                    // *present* member (usually p50); skip the later
                    // ones.
                    let first = QUANTILES
                        .iter()
                        .find(|(s, _)| metrics.gauge(&format!("{base}{s}")).is_some());
                    if first.map(|(s, _)| !name.ends_with(s)).unwrap_or(true) {
                        continue;
                    }
                    let san = format!("{}_us", sanitize(base));
                    out.push_str(&format!("# TYPE {san} summary\n"));
                    for (suffix, q) in QUANTILES {
                        let full = format!("{base}{suffix}");
                        if let Some(qv) = metrics.gauge(&full) {
                            out.push_str(&format!("{san}{{quantile=\"{q}\"}} {}\n", fmt_value(qv)));
                        }
                    }
                } else {
                    let san = sanitize(name);
                    out.push_str(&format!("# TYPE {san} gauge\n{san} {}\n", fmt_value(*v)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_rewrites_everything_prometheus_rejects() {
        assert_eq!(
            sanitize("kernel.sched.p0.wait_ns"),
            "kernel_sched_p0_wait_ns"
        );
        assert_eq!(sanitize("est.res.cpu-0.busy%"), "est_res_cpu_0_busy_");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a:b_c"), "a:b_c");
    }

    #[test]
    fn counters_and_gauges_render_with_type_lines() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("kernel.delta_cycles", 42);
        m.set_gauge("kernel.sim_time_ns", 1500.5);
        let text = render(&m);
        assert_eq!(
            text,
            "# TYPE kernel_delta_cycles counter\nkernel_delta_cycles 42\n\
             # TYPE kernel_sim_time_ns gauge\nkernel_sim_time_ns 1500.5\n"
        );
    }

    #[test]
    fn quantile_triples_fold_into_a_summary_family() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("serve.latency.count", 3);
        m.set_gauge("serve.latency.p50_us", 10.0);
        m.set_gauge("serve.latency.p90_us", 20.0);
        m.set_gauge("serve.latency.p99_us", 30.0);
        let text = render(&m);
        assert!(text.contains("# TYPE serve_latency_us summary\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.9\"} 20\n"));
        assert!(text.contains("serve_latency_us{quantile=\"0.99\"} 30\n"));
        // The triple renders exactly once, at its first member.
        assert_eq!(text.matches("summary").count(), 1);
        // The count stays its own counter family.
        assert!(text.contains("# TYPE serve_latency_count counter\n"));
    }

    #[test]
    fn special_floats_use_prometheus_spellings() {
        let mut m = MetricsSnapshot::new();
        m.set_gauge("a", f64::INFINITY);
        m.set_gauge("b", f64::NEG_INFINITY);
        m.set_gauge("c", f64::NAN);
        let text = render(&m);
        assert!(text.contains("a +Inf\n"));
        assert!(text.contains("b -Inf\n"));
        assert!(text.contains("c NaN\n"));
    }

    #[test]
    fn output_is_deterministic_and_sorted() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("z.last", 1);
        m.set_counter("a.first", 2);
        let text = render(&m);
        let a = text.find("a_first").unwrap();
        let z = text.find("z_last").unwrap();
        assert!(a < z);
        assert_eq!(render(&m), text);
    }
}
