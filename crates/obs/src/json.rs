//! A minimal JSON writer (no external deps).
//!
//! Emits compact, valid JSON with correct string escaping; used by the
//! Chrome exporter, the metrics snapshot, and the bench harness's
//! `BENCH_obs.json` emitter.

/// Escapes `s` into `out` per RFC 8259 (quotes not included).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ctx {
    Object,
    Array,
}

/// An append-only JSON document builder with automatic comma handling.
///
/// ```
/// use scperf_obs::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.value_str("vocoder");
/// w.key("frames");
/// w.value_u64(4);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"vocoder","frames":4}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<(Ctx, bool)>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn before_value(&mut self) {
        if let Some((_, has_prior)) = self.stack.last_mut() {
            if *has_prior {
                self.out.push(',');
            }
            *has_prior = true;
        }
    }

    /// Opens an object (as a value in the current context).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push((Ctx::Object, false));
    }

    /// Closes the current object.
    pub fn end_object(&mut self) {
        let popped = self.stack.pop();
        debug_assert_eq!(popped.map(|p| p.0), Some(Ctx::Object));
        self.out.push('}');
    }

    /// Opens an array (as a value in the current context).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push((Ctx::Array, false));
    }

    /// Closes the current array.
    pub fn end_array(&mut self) {
        let popped = self.stack.pop();
        debug_assert_eq!(popped.map(|p| p.0), Some(Ctx::Array));
        self.out.push(']');
    }

    /// Writes an object key. Must be followed by exactly one value.
    pub fn key(&mut self, name: &str) {
        if let Some((ctx, has_prior)) = self.stack.last_mut() {
            debug_assert_eq!(*ctx, Ctx::Object);
            if *has_prior {
                self.out.push(',');
            }
            // The upcoming value must not add its own comma.
            *has_prior = false;
        }
        self.out.push('"');
        escape_into(name, &mut self.out);
        self.out.push_str("\":");
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value (non-finite values become `null`).
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Returns the document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced JSON writer");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("list");
        w.begin_array();
        w.value_u64(1);
        w.value_str("two");
        w.begin_object();
        w.key("three");
        w.value_f64(3.5);
        w.end_object();
        w.end_array();
        w.key("flag");
        w.value_bool(false);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"list":[1,"two",{"three":3.5}],"flag":false}"#
        );
    }

    #[test]
    fn escaping() {
        let mut w = JsonWriter::new();
        w.value_str("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_are_json_safe() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.value_f64(1.0);
        w.value_f64(f64::NAN);
        w.value_f64(0.125);
        w.end_array();
        assert_eq!(w.finish(), "[1.0,null,0.125]");
    }

    #[test]
    fn negative_ints() {
        let mut w = JsonWriter::new();
        w.value_i64(-42);
        assert_eq!(w.finish(), "-42");
    }
}
