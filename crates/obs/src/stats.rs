//! Latency statistics for request-serving layers.
//!
//! [`LatencySamples`] accumulates per-request durations (in
//! microseconds) and summarizes them as the percentiles a service
//! report needs — p50/p90/p99 plus min/max/mean. The serve layer keeps
//! one instance per run and folds the summary into its
//! [`crate::MetricsSnapshot`] under a caller-chosen
//! prefix (`serve.latency.*`).

use crate::MetricsSnapshot;

/// A bag of latency samples in microseconds.
///
/// Samples are kept raw (8 bytes each) and sorted once at summary
/// time; for the request volumes a simulation service sees this is
/// both exact and cheap, with none of a histogram's bucketing error.
#[derive(Debug, Default, Clone)]
pub struct LatencySamples {
    samples: Vec<f64>,
}

impl LatencySamples {
    /// An empty bag.
    pub fn new() -> LatencySamples {
        LatencySamples::default()
    }

    /// Records one duration in microseconds. Non-finite values are
    /// ignored (they would poison every percentile).
    pub fn record_us(&mut self, us: f64) {
        if us.is_finite() {
            self.samples.push(us);
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarizes the samples; `None` when empty.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let sum: f64 = sorted.iter().sum();
        Some(LatencySummary {
            count: sorted.len(),
            min_us: sorted[0],
            max_us: *sorted.last().expect("non-empty"),
            mean_us: sum / sorted.len() as f64,
            p50_us: percentile(&sorted, 50.0),
            p90_us: percentile(&sorted, 90.0),
            p99_us: percentile(&sorted, 99.0),
        })
    }
}

/// Percentile summary of a latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min_us: f64,
    /// Largest sample.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
}

impl LatencySummary {
    /// Writes the summary into `metrics` as gauges named
    /// `<prefix>.{p50,p90,p99,mean,min,max}_us` plus a
    /// `<prefix>.count` counter.
    pub fn export(&self, metrics: &mut MetricsSnapshot, prefix: &str) {
        metrics.set_counter(format!("{prefix}.count"), self.count as u64);
        metrics.set_gauge(format!("{prefix}.min_us"), self.min_us);
        metrics.set_gauge(format!("{prefix}.max_us"), self.max_us);
        metrics.set_gauge(format!("{prefix}.mean_us"), self.mean_us);
        metrics.set_gauge(format!("{prefix}.p50_us"), self.p50_us);
        metrics.set_gauge(format!("{prefix}.p90_us"), self.p90_us);
        metrics.set_gauge(format!("{prefix}.p99_us"), self.p99_us);
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// `p` is in percent (`50.0` = median) and is clamped to `[0, 100]`.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 100.0), 40.0);
        assert_eq!(percentile(&sorted, 50.0), 25.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn summary_covers_the_distribution() {
        let mut lat = LatencySamples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            lat.record_us(v);
        }
        lat.record_us(f64::NAN); // ignored
        let s = lat.summary().expect("non-empty");
        assert_eq!(s.count, 5);
        assert_eq!(s.min_us, 1.0);
        assert_eq!(s.max_us, 5.0);
        assert_eq!(s.mean_us, 3.0);
        assert_eq!(s.p50_us, 3.0);
        assert!(s.p99_us > s.p50_us);
    }

    #[test]
    fn summary_exports_named_metrics() {
        let mut lat = LatencySamples::new();
        lat.record_us(10.0);
        lat.record_us(30.0);
        let mut m = MetricsSnapshot::new();
        lat.summary()
            .expect("non-empty")
            .export(&mut m, "serve.latency");
        assert_eq!(m.counter("serve.latency.count"), Some(2));
        assert_eq!(m.gauge("serve.latency.p50_us"), Some(20.0));
        assert_eq!(m.gauge("serve.latency.max_us"), Some(30.0));
    }

    #[test]
    fn empty_bag_has_no_summary() {
        assert!(LatencySamples::new().summary().is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut lat = LatencySamples::new();
        lat.record_us(42.0);
        let s = lat.summary().expect("one sample");
        assert_eq!(s.count, 1);
        for v in [s.min_us, s.max_us, s.mean_us, s.p50_us, s.p90_us, s.p99_us] {
            assert_eq!(v, 42.0);
        }
    }

    #[test]
    fn duplicate_samples_collapse_percentiles() {
        let mut lat = LatencySamples::new();
        for _ in 0..100 {
            lat.record_us(7.0);
        }
        let s = lat.summary().expect("non-empty");
        assert_eq!(s.count, 100);
        assert_eq!((s.p50_us, s.p90_us, s.p99_us), (7.0, 7.0, 7.0));
        assert_eq!(s.mean_us, 7.0);
    }

    #[test]
    fn signed_zeros_sort_stably() {
        // total_cmp orders -0.0 before 0.0; the summary must neither
        // panic nor produce a nonsensical ordering.
        let mut lat = LatencySamples::new();
        lat.record_us(0.0);
        lat.record_us(-0.0);
        lat.record_us(1.0);
        let s = lat.summary().expect("non-empty");
        assert_eq!(s.min_us, 0.0); // -0.0 == 0.0 numerically…
        assert!(s.min_us.is_sign_negative(), "…but -0.0 sorts first");
        assert_eq!(s.max_us, 1.0);
        assert!(s.p50_us <= s.p90_us && s.p90_us <= s.p99_us);
    }
}
