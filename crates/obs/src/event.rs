//! The compact trace event and the detached trace table.

use crate::intern::Sym;
use crate::value::Payload;

/// Pseudo process id for kernel-level events (e.g. signal updates in
/// the update phase, which no process "owns").
pub const NO_PROCESS: u32 = u32::MAX;

/// One traced occurrence, fully symbolic: ~48 bytes, no owned strings
/// for the common numeric case.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in picoseconds.
    pub time_ps: u64,
    /// Global delta-cycle counter value.
    pub delta: u64,
    /// Originating process id, or [`NO_PROCESS`].
    pub pid: u32,
    /// Record class, e.g. `"fifo.write"` (interned).
    pub label: Sym,
    /// Channel / signal the event concerns, or [`Sym::NONE`].
    pub chan: Sym,
    /// The transferred value.
    pub payload: Payload,
}

/// A trace detached from the live simulation: the raw events plus
/// owned copies of the string table and process names, so it can be
/// inspected, exported or stored after the simulator is gone.
#[derive(Debug, Clone, Default)]
pub struct TraceTable {
    /// The recorded events, in record order.
    pub events: Vec<TraceEvent>,
    /// Interned strings, indexed by [`Sym::index`].
    pub strings: Vec<String>,
    /// Process names, indexed by pid.
    pub process_names: Vec<String>,
    /// Events dropped by a bounded (ring) sink before these.
    pub dropped: u64,
}

impl TraceTable {
    /// Resolves a symbol against the snapshot ([`Sym::NONE`] → `""`).
    pub fn resolve(&self, sym: Sym) -> &str {
        self.strings
            .get(sym.index() as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// The name of the process that produced `event` (`"kernel"` for
    /// kernel-level events).
    pub fn process_name(&self, event: &TraceEvent) -> &str {
        self.process_names
            .get(event.pid as usize)
            .map(String::as_str)
            .unwrap_or("kernel")
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the table holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}
