//! Golden-file test of the Prometheus text exposition: a fixed
//! snapshot shaped like the serve `telemetry` op's output (kernel
//! scheduler accounting, estimator resource attribution, serve latency
//! summary) must render byte-for-byte as the committed golden file.

use scperf_obs::{prom, MetricsSnapshot};

fn telemetry_fixture() -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    // Kernel scheduler attribution.
    m.set_counter("kernel.delta_cycles", 1024);
    m.set_counter("kernel.sched.lsp.waits", 37);
    m.set_counter("kernel.sched.lsp.wait_ns", 91_250);
    m.set_gauge("kernel.sim_time_ns", 1_500_000.0);
    // Estimator resource attribution.
    m.set_counter("est.res.cpu0.busy_ns", 1_200_000);
    m.set_counter("est.res.cpu0.contention_ns", 300_000);
    m.set_counter("est.res.cpu0.waits", 18);
    // Serve latency summary (quantile triple + count + extremes).
    m.set_counter("serve.latency.count", 42);
    m.set_gauge("serve.latency.min_us", 80.25);
    m.set_gauge("serve.latency.max_us", 260.0);
    m.set_gauge("serve.latency.mean_us", 120.5);
    m.set_gauge("serve.latency.p50_us", 104.0);
    m.set_gauge("serve.latency.p90_us", 181.5);
    m.set_gauge("serve.latency.p99_us", 240.0);
    m
}

#[test]
fn exposition_matches_the_golden_file() {
    let rendered = prom::render(&telemetry_fixture());
    let golden = include_str!("golden/telemetry.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/telemetry.prom"
    );
}

#[test]
fn exposition_is_structurally_valid() {
    // Every non-comment line is `name[{labels}] value`; every family is
    // introduced by exactly one `# TYPE` line before its samples.
    let rendered = prom::render(&telemetry_fixture());
    let mut typed: Vec<String> = Vec::new();
    for line in rendered.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(matches!(kind, "counter" | "gauge" | "summary"), "{line}");
            assert!(!typed.contains(&family.to_string()), "duplicate {family}");
            typed.push(family.to_string());
        } else {
            let (name_part, value) = line.rsplit_once(' ').expect("sample line");
            let name = name_part.split('{').next().unwrap();
            assert!(
                typed.iter().any(|f| f == name),
                "sample {name} has no preceding # TYPE line"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "unsanitized name {name:?}"
            );
            value.parse::<f64>().expect("numeric sample value");
        }
    }
    assert!(typed.len() >= 10);
}
