//! Property tests pinning the [`LogHistogram`] contract against an
//! exact sorted oracle: the quantile estimate stays within the
//! documented <1% relative error, and merging is associative and
//! equivalent to recording into one histogram.

use proptest::collection::vec;
use proptest::prelude::*;
use scperf_obs::LogHistogram;

/// Exact q-quantile of a sorted sample set, using the same
/// nearest-rank definition as the histogram.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile estimates stay within 1% relative error of the exact
    /// sorted oracle across seven decades of tick values.
    #[test]
    fn quantiles_match_the_sorted_oracle(
        values in vec(0_u64..10_000_000_000, 1..500),
        qs in vec(0_u32..=100, 1..8),
    ) {
        let h = hist_of(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in qs {
            let q = q as f64 / 100.0;
            let exact = exact_quantile(&sorted, q) as f64;
            let est = h.quantile(q).expect("non-empty") as f64;
            let err = (est - exact).abs() / exact.max(1.0);
            prop_assert!(
                err < 0.01,
                "q={q}: estimate {est} vs exact {exact} (relative error {err})"
            );
        }
    }

    /// min/max/count/mean are exact — they are tracked out-of-band,
    /// unbucketed.
    #[test]
    fn extremes_and_mean_are_exact(values in vec(0_u64..1_000_000, 1..200)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().copied().min());
        prop_assert_eq!(h.max(), values.iter().copied().max());
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean().expect("non-empty") - mean).abs() < 1e-6);
    }

    /// Merging is associative and equivalent to recording everything
    /// into one histogram, for every quantile.
    #[test]
    fn merge_is_associative_and_lossless(
        a in vec(0_u64..100_000_000, 0..100),
        b in vec(0_u64..100_000_000, 0..100),
        c in vec(0_u64..100_000_000, 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        // a ∪ b ∪ c == one histogram over the concatenation
        let whole: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let hw = hist_of(&whole);

        prop_assert_eq!(left.count(), hw.count());
        prop_assert_eq!(right.count(), hw.count());
        prop_assert_eq!(left.min(), hw.min());
        prop_assert_eq!(left.max(), hw.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), hw.quantile(q), "q={}", q);
            prop_assert_eq!(right.quantile(q), hw.quantile(q), "q={}", q);
        }
    }
}
