//! # scperf-sync — no-poison locking primitives
//!
//! A thin wrapper over [`std::sync`] exposing the subset of the
//! `parking_lot` API the workspace uses: a [`Mutex`] whose `lock()`
//! returns the guard directly (no `Result`), a [`RwLock`] with the same
//! no-poison contract for read-mostly shared state, and a [`Condvar`]
//! that waits on a `&mut MutexGuard`. Lock poisoning is ignored: a panicking
//! holder does not prevent other threads from making progress, which is
//! the behaviour the simulation kernel's run-baton protocol relies on
//! when a process panics mid-simulation.
//!
//! The workspace builds in fully offline environments, so these
//! primitives are implemented in-tree rather than pulled from a
//! registry.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pool;

pub use pool::WorkerPool;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive. `lock()` never fails: poisoning from a
/// panicked holder is swallowed and the data is handed out as-is.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires
    /// exclusive access to the mutex itself, so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`]. The protected data is
/// reachable through [`Deref`]/[`DerefMut`].
///
/// The guard internally holds an `Option` so that [`Condvar::wait`] can
/// temporarily relinquish the underlying std guard; outside of a wait
/// the option is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard active")
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A readers-writer lock. Like [`Mutex`], lock acquisition never fails:
/// poisoning from a panicked holder is swallowed and the data is handed
/// out as-is. Intended for read-mostly shared state (e.g. memoization
/// caches shared across worker threads).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<std::sync::RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<std::sync::RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires
    /// exclusive access to the lock itself, so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// reacquiring the mutex before returning. Spurious wakeups are
    /// possible, as with [`std::sync::Condvar`].
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_still_hands_out_data() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready = false;
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
        assert!(!*pair.0.lock());
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(10);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (10, 10));
            assert!(l.try_write().is_none());
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 11);
        assert_eq!(l.into_inner(), 11);
    }

    #[test]
    fn poisoned_rwlock_still_hands_out_data() {
        let l = Arc::new(RwLock::new(3));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read(), 3);
        *l.write() += 1;
        assert_eq!(*l.read(), 4);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
