//! A long-lived worker pool for task streams.
//!
//! [`WorkerPool`] started life in `scperf-dse` as the execution
//! substrate of the serving layer; it lives here so lower layers — in
//! particular the kernel's parallel-evaluate scheduler — can share the
//! same pool implementation without inverting the crate dependency
//! graph (`dse` depends on the kernel, not the other way around).
//! `scperf_dse::pool` re-exports it, so existing users are unaffected.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    running: usize,
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    available: Condvar,
    /// Signalled when a worker finishes a job (for [`WorkerPool::wait_idle`]).
    settled: Condvar,
}

/// A long-lived pool of named worker threads draining one shared job
/// queue.
///
/// A `WorkerPool` serves an open-ended *stream* of jobs: submit
/// closures at any time, from any thread. [`WorkerPool::shutdown`] is
/// graceful: submission stops, every already-accepted job still runs
/// to completion, then the worker threads are joined.
///
/// The pool itself does not bound its queue; admission control (bounded
/// queue, reject-with-retry-after) is the caller's policy. See
/// `scperf-serve`, which layers exactly that on top.
///
/// A panicking job is caught and dropped (the worker survives); callers
/// that need to observe panics should catch them inside the job.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads named `<name>-worker-<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(name: &str, workers: usize) -> WorkerPool {
        assert!(workers > 0, "at least one worker required");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                running: 0,
                shutting_down: false,
            }),
            available: Condvar::new(),
            settled: Condvar::new(),
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Enqueues a job. Returns `false` (dropping the job) when the pool
    /// is shutting down.
    pub fn submit<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut st = self.shared.state.lock();
            if st.shutting_down {
                return false;
            }
            st.queue.push_back(Box::new(job));
        }
        self.shared.available.notify_one();
        true
    }

    /// Jobs accepted but not yet finished (queued + running).
    pub fn pending(&self) -> usize {
        let st = self.shared.state.lock();
        st.queue.len() + st.running
    }

    /// Blocks until every accepted job has finished.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock();
        while !st.queue.is_empty() || st.running > 0 {
            self.shared.settled.wait(&mut st);
        }
    }

    /// Test hook: flips the shutting-down flag without joining, so the
    /// submission-rejection path can be exercised in isolation.
    #[doc(hidden)]
    pub fn set_shutting_down(&self, value: bool) {
        let mut st = self.shared.state.lock();
        st.shutting_down = value;
    }

    /// Graceful shutdown: stops accepting jobs, lets the workers drain
    /// everything already accepted, and joins the threads.
    pub fn shutdown(mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutting_down = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return; // explicit shutdown() already ran
        }
        {
            let mut st = self.shared.state.lock();
            st.shutting_down = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .field("queued", &st.queue.len())
            .field("running", &st.running)
            .field("shutting_down", &st.shutting_down)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                shared.available.wait(&mut st);
            }
        };
        // A panicking job must not take the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(job));
        {
            let mut st = shared.state.lock();
            st.running -= 1;
        }
        shared.settled.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn worker_pool_runs_submitted_jobs() {
        let pool = WorkerPool::new("t", 2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            assert!(pool.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 20);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool = WorkerPool::new("drain", 1);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        // Graceful: every accepted job ran before the threads joined.
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let pool = WorkerPool::new("rej", 1);
        pool.set_shutting_down(true);
        assert!(!pool.submit(|| panic!("must never run")));
        // Clear the flag again so Drop's join can proceed normally.
        pool.set_shutting_down(false);
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new("panics", 1);
        pool.submit(|| panic!("boom"));
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.submit(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        pool.shutdown();
    }
}
